//! Algorithm 1 — the message scheduling algorithm.
//!
//! The relay delays its own heartbeat and sends it together with the
//! heartbeats collected from UEs in **one** cellular connection. The
//! paper adapts Nagle's algorithm (§III-C): keep buffering while
//!
//! ```text
//! k < M   &&   t − t_k < T_k   &&   t < T
//! ```
//!
//! (fewer than `M` collected, no collected heartbeat over its expiration
//! budget, relay period `T` not yet elapsed) — otherwise *send now*.
//! Turned into an event-driven rule, the buffer flushes at
//!
//! ```text
//! t_flush = min( period_start + T , min_k expires_k − margin )
//! ```
//!
//! or immediately when the `M`-th heartbeat arrives. The `margin` leaves
//! time for the cellular promotion + transfer so the heartbeat reaches
//! the server *before* its deadline rather than exactly on it.
//!
//! After a flush the relay "won't collect forwarded heartbeat messages
//! from UE(s) until the next heartbeat period" (§III-C) — modelled by
//! the [`MessageScheduler::is_collecting`] gate.

use hbr_apps::Heartbeat;
use hbr_d2d::GoIntent;
use hbr_sim::{SimDuration, SimTime, Summary};
use serde::{Deserialize, Serialize};

/// Why a batch was (or must be) flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlushReason {
    /// The buffer reached the relay capacity `M`.
    CapacityReached,
    /// A collected heartbeat is about to exceed its expiration `T_k`.
    ExpirationImminent,
    /// The relay's own heartbeat period `T` elapsed.
    PeriodElapsed,
}

impl FlushReason {
    /// Short label for metrics and event streams (`"capacity"`,
    /// `"expiration"`, `"period"`).
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::CapacityReached => "capacity",
            FlushReason::ExpirationImminent => "expiration",
            FlushReason::PeriodElapsed => "period",
        }
    }
}

/// The scheduler's verdict when a forwarded heartbeat arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleDecision {
    /// Keep buffering; a deadline event will trigger the flush.
    Pend,
    /// Flush immediately for the given reason.
    Flush(FlushReason),
    /// The relay already flushed this period and is not collecting
    /// (§III-C); the UE must use its fallback path.
    Rejected,
}

/// Algorithm 1 as a stateful, event-driven scheduler.
///
/// # Examples
///
/// ```
/// use hbr_apps::{AppProfile, Heartbeat, MessageId, MessageIdGen};
/// use hbr_core::{MessageScheduler, ScheduleDecision};
/// use hbr_sim::{DeviceId, SimDuration, SimTime};
///
/// let mut scheduler = MessageScheduler::new(
///     3,                              // capacity M
///     SimDuration::from_secs(270),    // relay period T
///     SimDuration::from_secs(5),      // delivery margin
///     SimTime::ZERO,
/// );
///
/// // Without arrivals, the flush deadline is the period end.
/// assert_eq!(scheduler.next_deadline(), SimTime::from_secs(270));
/// ```
#[derive(Debug, Clone)]
pub struct MessageScheduler {
    capacity: usize,
    period: SimDuration,
    margin: SimDuration,
    period_start: SimTime,
    collecting: bool,
    /// When `false`, the scheduler ignores per-message expirations and
    /// only flushes on capacity or the period deadline — the ablation of
    /// Algorithm 1's `t − t_k < T_k` clause.
    honor_expirations: bool,
    buffer: Vec<(SimTime, Heartbeat)>,
    /// Cached `min(expires_at)` over the buffer, so arrival handling and
    /// deadline queries are O(1) instead of rescanning the buffer.
    earliest_expiry: Option<SimTime>,
    stats: SchedulerStats,
}

/// Aggregate statistics over every flush a scheduler performed — the
/// observability a relay owner's UI (§III-D) or an operator dashboard
/// would chart.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Number of flushes so far.
    pub flushes: u64,
    /// Batch sizes (forwarded heartbeats per flush, excluding the
    /// relay's own).
    pub batch_sizes: Summary,
    /// Queueing delay from each heartbeat's arrival to its flush,
    /// seconds.
    pub queueing_delay_secs: Summary,
    /// Arrivals rejected because the relay was between flush and the
    /// next period.
    pub rejected: u64,
}

impl MessageScheduler {
    /// Creates a scheduler for a relay with capacity `M`, own heartbeat
    /// period `T`, and a delivery `margin` subtracted from every
    /// expiration deadline.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `period` is zero.
    pub fn new(capacity: usize, period: SimDuration, margin: SimDuration, start: SimTime) -> Self {
        assert!(capacity > 0, "capacity M must be positive");
        assert!(!period.is_zero(), "period T must be positive");
        MessageScheduler {
            capacity,
            period,
            margin,
            period_start: start,
            collecting: true,
            honor_expirations: true,
            buffer: Vec::new(),
            earliest_expiry: None,
            stats: SchedulerStats::default(),
        }
    }

    /// Aggregate flush statistics since construction.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Disables the expiration clause of Algorithm 1 (ablation only):
    /// the scheduler then flushes solely on capacity `M` or the period
    /// deadline `T`, and delay-sensitive messages may expire in the
    /// buffer.
    pub fn without_expiry_guard(mut self) -> Self {
        self.honor_expirations = false;
        self
    }

    /// `true` when the `t − t_k < T_k` clause is active (the default).
    pub fn honors_expirations(&self) -> bool {
        self.honor_expirations
    }

    /// The capacity `M`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The relay period `T`.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Number of heartbeats currently buffered (`k` of Table II).
    pub fn collected(&self) -> usize {
        self.buffer.len()
    }

    /// The buffered heartbeats, in arrival order — for conservation
    /// audits (the invariant checker walks these at scenario end).
    pub fn buffered(&self) -> impl Iterator<Item = &Heartbeat> {
        self.buffer.iter().map(|(_, hb)| hb)
    }

    /// `true` while the relay accepts forwarded heartbeats this period.
    pub fn is_collecting(&self) -> bool {
        self.collecting
    }

    /// The instant the current period ends (`period_start + T`).
    pub fn period_deadline(&self) -> SimTime {
        self.period_start + self.period
    }

    /// The group-owner intent the relay should advertise right now:
    /// `15 × (1 − k/M)` (§IV-C), zero when not collecting.
    pub fn go_intent(&self) -> GoIntent {
        if !self.collecting {
            return GoIntent::MIN;
        }
        GoIntent::for_relay_fill(self.collected(), self.capacity)
    }

    /// The event-driven flush instant: the earliest of the period end and
    /// every buffered expiration (margin-adjusted). This is the paper's
    /// pend condition inverted.
    pub fn next_deadline(&self) -> SimTime {
        if !self.honor_expirations {
            return self.period_deadline();
        }
        match self.earliest_expiry {
            Some(e) => {
                let fire = SimTime::ZERO
                    + e.saturating_since(SimTime::ZERO)
                        .saturating_sub(self.margin);
                fire.min(self.period_deadline())
            }
            None => self.period_deadline(),
        }
    }

    /// Handles a forwarded heartbeat arriving at `now` (Algorithm 1's
    /// per-arrival branch).
    ///
    /// Returns [`ScheduleDecision::Rejected`] when the relay already
    /// flushed this period, [`ScheduleDecision::Flush`] when this arrival
    /// fills the buffer to `M` or arrives already past its (margin-
    /// adjusted) deadline, and [`ScheduleDecision::Pend`] otherwise.
    pub fn on_arrival(&mut self, now: SimTime, hb: Heartbeat) -> ScheduleDecision {
        if !self.collecting {
            self.stats.rejected += 1;
            return ScheduleDecision::Rejected;
        }
        self.earliest_expiry = Some(match self.earliest_expiry {
            Some(e) => e.min(hb.expires_at),
            None => hb.expires_at,
        });
        self.buffer.push((now, hb));
        if self.buffer.len() >= self.capacity {
            return ScheduleDecision::Flush(FlushReason::CapacityReached);
        }
        if self.flush_due(now).is_some() {
            return ScheduleDecision::Flush(FlushReason::ExpirationImminent);
        }
        ScheduleDecision::Pend
    }

    /// [`MessageScheduler::on_arrival`] with an observation hook: the
    /// decision is reported to `hooks` before it is returned. Behaviour
    /// is otherwise identical — conformance harnesses use this to log
    /// protocol steps at event granularity.
    pub fn on_arrival_with(
        &mut self,
        now: SimTime,
        hb: Heartbeat,
        hooks: &mut dyn crate::hooks::ProtocolHooks,
    ) -> ScheduleDecision {
        let decision = self.on_arrival(now, hb);
        hooks.on_schedule_decision(now, &hb, &decision);
        decision
    }

    /// Whether a deadline-driven flush is due at `now`, and why.
    pub fn flush_due(&self, now: SimTime) -> Option<FlushReason> {
        if !self.collecting {
            return None;
        }
        if now >= self.period_deadline() {
            return Some(FlushReason::PeriodElapsed);
        }
        if !self.honor_expirations {
            return None;
        }
        match self.earliest_expiry {
            Some(e) if now + self.margin >= e => Some(FlushReason::ExpirationImminent),
            _ => None,
        }
    }

    /// Takes the buffered batch for transmission and stops collecting
    /// until [`MessageScheduler::begin_period`]. The batch is returned in
    /// arrival order. `take_batch_at` records flush statistics against
    /// the given instant; the plain [`MessageScheduler::take_batch`]
    /// records none (used for initialisation).
    pub fn take_batch_at(&mut self, now: SimTime) -> Vec<Heartbeat> {
        self.collecting = false;
        self.earliest_expiry = None;
        self.stats.flushes += 1;
        self.stats.batch_sizes.record(self.buffer.len() as f64);
        for (arrived, _) in &self.buffer {
            self.stats
                .queueing_delay_secs
                .record(now.saturating_since(*arrived).as_secs_f64());
        }
        self.buffer.drain(..).map(|(_, hb)| hb).collect()
    }

    /// Takes the buffered batch without recording flush statistics.
    pub fn take_batch(&mut self) -> Vec<Heartbeat> {
        self.collecting = false;
        self.earliest_expiry = None;
        self.buffer.drain(..).map(|(_, hb)| hb).collect()
    }

    /// Starts the next period at `start` and resumes collecting.
    ///
    /// # Panics
    ///
    /// Panics if heartbeats are still buffered (the previous batch was
    /// never taken).
    pub fn begin_period(&mut self, start: SimTime) {
        assert!(
            self.buffer.is_empty(),
            "begin_period with {} unflushed heartbeats",
            self.buffer.len()
        );
        self.period_start = start;
        self.collecting = true;
    }

    /// The paper's literal Algorithm 1 condition, exposed for tests and
    /// documentation: `true` means "pending", `false` means "send data
    /// now".
    pub fn algorithm1_pending(&self, now: SimTime) -> bool {
        let k = self.buffer.len();
        let capacity_ok = k < self.capacity;
        let expiry_ok = self
            .buffer
            .iter()
            .all(|(tk, hb)| now.saturating_since(*tk) < hb.expires_at.saturating_since(*tk));
        let period_ok = now < self.period_deadline();
        capacity_ok && expiry_ok && period_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_apps::{AppId, MessageIdGen};
    use hbr_sim::DeviceId;

    fn hb(ids: &mut MessageIdGen, created_s: u64, expires_s: u64) -> Heartbeat {
        Heartbeat {
            id: ids.next_id(),
            app: AppId::new(0),
            source: DeviceId::new(1),
            seq: 0,
            size: 74,
            created_at: SimTime::from_secs(created_s),
            expires_at: SimTime::from_secs(expires_s),
        }
    }

    fn scheduler(capacity: usize) -> MessageScheduler {
        MessageScheduler::new(
            capacity,
            SimDuration::from_secs(270),
            SimDuration::from_secs(5),
            SimTime::ZERO,
        )
    }

    #[test]
    fn pends_until_capacity() {
        let mut s = scheduler(3);
        let mut ids = MessageIdGen::new();
        assert_eq!(
            s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 900)),
            ScheduleDecision::Pend
        );
        assert_eq!(
            s.on_arrival(SimTime::from_secs(20), hb(&mut ids, 20, 900)),
            ScheduleDecision::Pend
        );
        assert_eq!(
            s.on_arrival(SimTime::from_secs(30), hb(&mut ids, 30, 900)),
            ScheduleDecision::Flush(FlushReason::CapacityReached)
        );
        assert_eq!(s.collected(), 3);
    }

    #[test]
    fn deadline_tracks_earliest_expiry_and_period() {
        let mut s = scheduler(10);
        let mut ids = MessageIdGen::new();
        assert_eq!(s.next_deadline(), SimTime::from_secs(270));
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 200));
        // Expiry 200 − margin 5 = 195 beats the period end.
        assert_eq!(s.next_deadline(), SimTime::from_secs(195));
        s.on_arrival(SimTime::from_secs(20), hb(&mut ids, 20, 150));
        assert_eq!(s.next_deadline(), SimTime::from_secs(145));
        // A late-expiring message does not move the deadline.
        s.on_arrival(SimTime::from_secs(30), hb(&mut ids, 30, 9_000));
        assert_eq!(s.next_deadline(), SimTime::from_secs(145));
    }

    #[test]
    fn flush_due_reports_reasons() {
        let mut s = scheduler(10);
        let mut ids = MessageIdGen::new();
        assert_eq!(s.flush_due(SimTime::from_secs(100)), None);
        assert_eq!(
            s.flush_due(SimTime::from_secs(270)),
            Some(FlushReason::PeriodElapsed)
        );
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 100));
        assert_eq!(
            s.flush_due(SimTime::from_secs(95)),
            Some(FlushReason::ExpirationImminent)
        );
    }

    #[test]
    fn rejects_after_flush_until_next_period() {
        let mut s = scheduler(2);
        let mut ids = MessageIdGen::new();
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 900));
        s.on_arrival(SimTime::from_secs(20), hb(&mut ids, 20, 900));
        let batch = s.take_batch();
        assert_eq!(batch.len(), 2);
        assert!(!s.is_collecting());
        assert_eq!(
            s.on_arrival(SimTime::from_secs(30), hb(&mut ids, 30, 900)),
            ScheduleDecision::Rejected
        );
        s.begin_period(SimTime::from_secs(270));
        assert!(s.is_collecting());
        assert_eq!(
            s.on_arrival(SimTime::from_secs(280), hb(&mut ids, 280, 1200)),
            ScheduleDecision::Pend
        );
        assert_eq!(s.period_deadline(), SimTime::from_secs(540));
    }

    #[test]
    fn late_arrival_flushes_immediately() {
        let mut s = scheduler(10);
        let mut ids = MessageIdGen::new();
        // Arrives with less slack than the margin.
        let decision = s.on_arrival(SimTime::from_secs(98), hb(&mut ids, 98, 100));
        assert_eq!(
            decision,
            ScheduleDecision::Flush(FlushReason::ExpirationImminent)
        );
    }

    #[test]
    fn go_intent_decays_with_fill() {
        let mut s = scheduler(5);
        let mut ids = MessageIdGen::new();
        assert_eq!(s.go_intent(), GoIntent::MAX);
        s.on_arrival(SimTime::from_secs(1), hb(&mut ids, 1, 900));
        assert!(s.go_intent() < GoIntent::MAX);
        for k in 2..=4 {
            s.on_arrival(SimTime::from_secs(k), hb(&mut ids, k, 900));
        }
        s.on_arrival(SimTime::from_secs(5), hb(&mut ids, 5, 900));
        s.take_batch();
        assert_eq!(s.go_intent(), GoIntent::MIN, "not collecting → intent 0");
    }

    #[test]
    fn algorithm1_literal_form_agrees() {
        let mut s = scheduler(3);
        let mut ids = MessageIdGen::new();
        assert!(s.algorithm1_pending(SimTime::from_secs(1)));
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 900));
        assert!(s.algorithm1_pending(SimTime::from_secs(100)));
        // Period elapsed → send now.
        assert!(!s.algorithm1_pending(SimTime::from_secs(270)));
        // Capacity reached → send now.
        s.on_arrival(SimTime::from_secs(20), hb(&mut ids, 20, 900));
        s.on_arrival(SimTime::from_secs(30), hb(&mut ids, 30, 900));
        assert!(!s.algorithm1_pending(SimTime::from_secs(31)));
    }

    #[test]
    fn without_expiry_guard_holds_to_period_end() {
        let mut s = scheduler(10).without_expiry_guard();
        assert!(!s.honors_expirations());
        let mut ids = MessageIdGen::new();
        // A message that expires at t=100 would normally force a flush at
        // 95; the ablated scheduler ignores it.
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 100));
        assert_eq!(s.next_deadline(), SimTime::from_secs(270));
        assert_eq!(s.flush_due(SimTime::from_secs(95)), None);
        assert_eq!(
            s.flush_due(SimTime::from_secs(270)),
            Some(FlushReason::PeriodElapsed)
        );
        // Capacity still applies.
        for k in 0..9u64 {
            s.on_arrival(SimTime::from_secs(20 + k), hb(&mut ids, 20 + k, 900));
        }
        assert_eq!(s.collected(), 10);
    }

    #[test]
    fn stats_track_flushes_and_rejections() {
        let mut s = scheduler(10);
        let mut ids = MessageIdGen::new();
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 900));
        s.on_arrival(SimTime::from_secs(30), hb(&mut ids, 30, 900));
        let batch = s.take_batch_at(SimTime::from_secs(50));
        assert_eq!(batch.len(), 2);
        s.on_arrival(SimTime::from_secs(60), hb(&mut ids, 60, 900));
        let stats = s.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.batch_sizes.mean(), Some(2.0));
        // Delays: 40 s and 20 s → mean 30 s.
        assert_eq!(stats.queueing_delay_secs.mean(), Some(30.0));
        // The plain take_batch records nothing.
        let mut quiet = scheduler(10);
        let _ = quiet.take_batch();
        assert_eq!(quiet.stats().flushes, 0);
    }

    #[test]
    #[should_panic(expected = "unflushed")]
    fn begin_period_with_pending_batch_panics() {
        let mut s = scheduler(3);
        let mut ids = MessageIdGen::new();
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 900));
        s.begin_period(SimTime::from_secs(270));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        MessageScheduler::new(
            0,
            SimDuration::from_secs(270),
            SimDuration::ZERO,
            SimTime::ZERO,
        );
    }
}
