//! Delivery feedback and the cellular fallback path.
//!
//! §III-A: forwarding must not raise the end-to-end failure rate, so
//! *"once the matched relay \[transmits\] the collected heartbeat messages
//! successfully, the proposed framework will notify the connected UE
//! through feedback information. In case that the UE does not receive
//! the feedback information after a certain interval, it will send the
//! heartbeat messages via cellular network."* [`FeedbackTracker`] is that
//! UE-side bookkeeping: every forwarded heartbeat is pending until either
//! the relay's `Delivered` notification arrives or its timeout expires
//! and the heartbeat is handed back for direct transmission.

use std::collections::BTreeMap;

use hbr_apps::{Heartbeat, MessageId};
use hbr_sim::{SimDuration, SimTime};

/// One forwarded heartbeat awaiting delivery confirmation.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingForward {
    /// The heartbeat that was handed to the relay.
    pub heartbeat: Heartbeat,
    /// When it was forwarded.
    pub forwarded_at: SimTime,
    /// When the UE gives up waiting and falls back to cellular.
    pub deadline: SimTime,
}

/// UE-side feedback bookkeeping.
///
/// # Examples
///
/// ```
/// use hbr_core::FeedbackTracker;
/// use hbr_sim::SimDuration;
///
/// let tracker = FeedbackTracker::new(SimDuration::from_secs(30));
/// assert_eq!(tracker.pending_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FeedbackTracker {
    timeout: SimDuration,
    pending: BTreeMap<MessageId, PendingForward>,
    confirmed: u64,
    fallbacks: u64,
}

impl FeedbackTracker {
    /// How long before a heartbeat's expiration the fallback must fire so
    /// the cellular retransmission (promotion + transfer ≈ 2.2 s plus
    /// queueing slack) still lands fresh.
    pub const RESCUE_MARGIN: SimDuration = SimDuration::from_secs(8);

    /// Creates a tracker with the given feedback timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "feedback timeout must be positive");
        FeedbackTracker {
            timeout,
            pending: BTreeMap::new(),
            confirmed: 0,
            fallbacks: 0,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Records a forward; returns the fallback deadline the caller should
    /// arm a timer for.
    ///
    /// The deadline is slack-aware: for a heartbeat whose expiration is
    /// nearer than the configured timeout, the timer fires early enough
    /// (`RESCUE_MARGIN` before the deadline) that the cellular fallback
    /// can still deliver it fresh.
    pub fn on_forward(&mut self, heartbeat: Heartbeat, now: SimTime) -> SimTime {
        let latest_useful = heartbeat
            .expires_at
            .saturating_since(SimTime::ZERO)
            .saturating_sub(Self::RESCUE_MARGIN);
        let deadline = (now + self.timeout)
            .min(SimTime::ZERO + latest_useful)
            .max(now);
        self.pending.insert(
            heartbeat.id,
            PendingForward {
                heartbeat,
                forwarded_at: now,
                deadline,
            },
        );
        deadline
    }

    /// Handles the relay's `Delivered(ids)` feedback. Returns how many of
    /// the ids were still pending (already-fallen-back ids are ignored).
    pub fn on_delivered<I: IntoIterator<Item = MessageId>>(&mut self, ids: I) -> usize {
        let mut hits = 0;
        for id in ids {
            if self.pending.remove(&id).is_some() {
                self.confirmed += 1;
                hits += 1;
            }
        }
        hits
    }

    /// Pops every pending forward whose deadline has passed at `now`;
    /// the caller must re-send each returned heartbeat over cellular.
    pub fn expire_due(&mut self, now: SimTime) -> Vec<PendingForward> {
        let due: Vec<MessageId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        let out: Vec<PendingForward> = due
            .iter()
            .filter_map(|id| self.pending.remove(id))
            .collect();
        self.fallbacks += out.len() as u64;
        out
    }

    /// Pops every pending forward whose deadline has passed at `now`
    /// *without* counting them as fallbacks — the reliable-delivery
    /// layer uses this so a timed-out forward that is successfully
    /// retried over D2D is not double-counted as a cellular fallback.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<PendingForward> {
        let due: Vec<MessageId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        due.iter()
            .filter_map(|id| self.pending.remove(id))
            .collect()
    }

    /// Removes pending forwards without counting them as confirmed *or*
    /// fallen back. Used when a relay departs and its buffered batch is
    /// re-queued to the delivery ledger: the stale feedback deadline
    /// must not survive the detach (it would later fire a duplicate
    /// cellular rescue of a heartbeat the ledger is already retrying —
    /// the same class of bug as the PR-4 stale `FlushDeadline`).
    /// Returns how many ids were actually pending.
    pub fn retract<I: IntoIterator<Item = MessageId>>(&mut self, ids: I) -> usize {
        ids.into_iter()
            .filter(|id| self.pending.remove(id).is_some())
            .count()
    }

    /// [`FeedbackTracker::on_forward`] with an observation hook: the
    /// armed deadline is reported before it is returned.
    pub fn on_forward_with(
        &mut self,
        heartbeat: Heartbeat,
        now: SimTime,
        hooks: &mut dyn crate::hooks::ProtocolHooks,
    ) -> SimTime {
        let id = heartbeat.id;
        let deadline = self.on_forward(heartbeat, now);
        hooks.on_feedback_armed(id, now, deadline);
        deadline
    }

    /// [`FeedbackTracker::on_delivered`] with an observation hook
    /// reporting how many ids were still pending.
    pub fn on_delivered_with<I: IntoIterator<Item = MessageId>>(
        &mut self,
        ids: I,
        hooks: &mut dyn crate::hooks::ProtocolHooks,
    ) -> usize {
        let hits = self.on_delivered(ids);
        hooks.on_feedback_confirmed(hits);
        hits
    }

    /// [`FeedbackTracker::retract`] with an observation hook reporting
    /// how many ids were actually pending. Retraction is idempotent:
    /// retracting an already-retracted id reports zero and changes
    /// nothing.
    pub fn retract_with<I: IntoIterator<Item = MessageId>>(
        &mut self,
        ids: I,
        hooks: &mut dyn crate::hooks::ProtocolHooks,
    ) -> usize {
        let retracted = self.retract(ids);
        hooks.on_feedback_retracted(retracted);
        retracted
    }

    /// Forwards currently awaiting feedback.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Ids of the forwards currently awaiting feedback — for
    /// conservation audits (the invariant checker walks these at
    /// scenario end).
    pub fn pending_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.pending.keys().copied()
    }

    /// Forwards confirmed by relay feedback so far.
    pub fn confirmed(&self) -> u64 {
        self.confirmed
    }

    /// Forwards that timed out into the cellular fallback so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The earliest pending deadline, if any — for event scheduling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_apps::{AppId, MessageIdGen};
    use hbr_sim::DeviceId;

    fn hb(ids: &mut MessageIdGen) -> Heartbeat {
        Heartbeat {
            id: ids.next_id(),
            app: AppId::new(0),
            source: DeviceId::new(0),
            seq: 0,
            size: 74,
            created_at: SimTime::ZERO,
            expires_at: SimTime::from_secs(810),
        }
    }

    fn tracker() -> FeedbackTracker {
        FeedbackTracker::new(SimDuration::from_secs(30))
    }

    #[test]
    fn confirmation_clears_pending() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids);
        let deadline = t.on_forward(h, SimTime::from_secs(10));
        assert_eq!(deadline, SimTime::from_secs(40));
        assert_eq!(t.pending_count(), 1);
        assert_eq!(t.on_delivered([h.id]), 1);
        assert_eq!(t.pending_count(), 0);
        assert_eq!(t.confirmed(), 1);
        assert!(t.expire_due(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn timeout_triggers_fallback() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids);
        t.on_forward(h, SimTime::from_secs(10));
        assert!(
            t.expire_due(SimTime::from_secs(39)).is_empty(),
            "not due yet"
        );
        let due = t.expire_due(SimTime::from_secs(40));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].heartbeat.id, h.id);
        assert_eq!(t.fallbacks(), 1);
        // Late feedback after fallback is ignored.
        assert_eq!(t.on_delivered([h.id]), 0);
    }

    #[test]
    fn multiple_forwards_tracked_independently() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let a = hb(&mut ids);
        let b = hb(&mut ids);
        t.on_forward(a, SimTime::from_secs(0));
        t.on_forward(b, SimTime::from_secs(20));
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(30)));
        let due = t.expire_due(SimTime::from_secs(30));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].heartbeat.id, a.id);
        assert_eq!(t.pending_count(), 1);
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(50)));
    }

    #[test]
    fn deadline_is_slack_aware() {
        let mut t = FeedbackTracker::new(SimDuration::from_secs(300));
        let mut ids = MessageIdGen::new();
        // Expires at t=120: the fallback must fire at 120 − 8 = 112, not
        // at the configured 300 s timeout.
        let tight = Heartbeat {
            expires_at: SimTime::from_secs(120),
            ..hb(&mut ids)
        };
        let deadline = t.on_forward(tight, SimTime::from_secs(10));
        assert_eq!(deadline, SimTime::from_secs(112));
        // An already-hopeless message falls back immediately, not in the
        // past.
        let hopeless = Heartbeat {
            expires_at: SimTime::from_secs(12),
            ..hb(&mut ids)
        };
        let deadline = t.on_forward(hopeless, SimTime::from_secs(10));
        assert_eq!(deadline, SimTime::from_secs(10));
    }

    #[test]
    fn take_expired_does_not_count_fallbacks() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids);
        t.on_forward(h, SimTime::from_secs(10));
        let due = t.take_expired(SimTime::from_secs(40));
        assert_eq!(due.len(), 1);
        assert_eq!(t.fallbacks(), 0, "retry path is not a fallback");
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn retract_removes_without_confirming_or_counting() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let a = hb(&mut ids);
        let b = hb(&mut ids);
        t.on_forward(a, SimTime::from_secs(0));
        t.on_forward(b, SimTime::from_secs(0));
        assert_eq!(t.retract([a.id]), 1);
        assert_eq!(t.retract([a.id]), 0, "already gone");
        assert_eq!(t.pending_count(), 1);
        assert_eq!(t.confirmed(), 0);
        assert_eq!(t.fallbacks(), 0);
        // The retracted deadline no longer fires.
        assert!(t
            .expire_due(SimTime::from_secs(30))
            .iter()
            .all(|p| p.heartbeat.id == b.id));
    }

    #[test]
    fn double_retract_is_a_noop_not_a_regression() {
        // Two RelayDeparture faults landing in the same epoch retract
        // the same batch twice; the second sweep must not disturb any
        // counter, the remaining pending set, or the armed deadlines.
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let a = hb(&mut ids);
        let b = hb(&mut ids);
        t.on_forward(a, SimTime::from_secs(0));
        t.on_forward(b, SimTime::from_secs(5));
        assert_eq!(t.retract([a.id]), 1);
        let pending_before: Vec<_> = t.pending_ids().collect();
        let deadline_before = t.next_deadline();
        assert_eq!(t.retract([a.id]), 0, "second retract must be a no-op");
        assert_eq!(t.retract([a.id, a.id]), 0, "even repeated in one sweep");
        let pending_after: Vec<_> = t.pending_ids().collect();
        assert_eq!(pending_before, pending_after);
        assert_eq!(t.next_deadline(), deadline_before);
        assert_eq!(t.confirmed(), 0);
        assert_eq!(t.fallbacks(), 0);
        // The survivor still behaves normally after the double retract.
        assert_eq!(t.on_delivered([b.id]), 1);
        assert_eq!(t.confirmed(), 1);
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn hooked_variants_match_plain_behaviour() {
        #[derive(Default)]
        struct Recorder(Vec<String>);
        impl crate::hooks::ProtocolHooks for Recorder {
            fn on_feedback_armed(&mut self, id: MessageId, now: SimTime, deadline: SimTime) {
                self.0.push(format!("armed {id} {now} {deadline}"));
            }
            fn on_feedback_confirmed(&mut self, confirmed: usize) {
                self.0.push(format!("confirmed {confirmed}"));
            }
            fn on_feedback_retracted(&mut self, retracted: usize) {
                self.0.push(format!("retracted {retracted}"));
            }
        }
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let mut rec = Recorder::default();
        let a = hb(&mut ids);
        let b = hb(&mut ids);
        let deadline = t.on_forward_with(a, SimTime::from_secs(0), &mut rec);
        assert_eq!(deadline, SimTime::from_secs(30));
        t.on_forward_with(b, SimTime::from_secs(0), &mut rec);
        assert_eq!(t.on_delivered_with([a.id], &mut rec), 1);
        assert_eq!(t.retract_with([b.id], &mut rec), 1);
        assert_eq!(t.retract_with([b.id], &mut rec), 0);
        assert_eq!(
            rec.0,
            vec![
                format!("armed {} t=0.000000s t=30.000000s", a.id),
                format!("armed {} t=0.000000s t=30.000000s", b.id),
                String::from("confirmed 1"),
                String::from("retracted 1"),
                String::from("retracted 0"),
            ]
        );
    }

    #[test]
    fn delivered_with_unknown_ids_is_safe() {
        let mut t = tracker();
        let mut ids = MessageIdGen::new();
        let never_forwarded = hb(&mut ids);
        assert_eq!(t.on_delivered([never_forwarded.id]), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        FeedbackTracker::new(SimDuration::ZERO);
    }
}
