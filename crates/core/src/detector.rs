//! The D2D Detector — discovery, pre-judgment and relay matching.
//!
//! §III-C: before establishing a (costly) D2D connection the UE makes a
//! *pre-judgment* from two signals gathered during discovery — the
//! RSSI-estimated **distance** to each candidate relay and the relay's
//! advertised **free capacity** — and picks the nearest admissible relay.
//! Short-distance matches are preferred because disconnection probability
//! and transfer energy both grow with distance (Fig. 12), and a
//! connection that dies after one or two forwards never amortises its
//! discovery + connection cost.
//!
//! The detector also performs the **energy pre-judgment** of §III-A: if
//! the predicted energy of the D2D session (establishment amortised over
//! the expected number of forwards, plus per-forward send cost) exceeds
//! sending the same heartbeats over cellular, the UE keeps the cellular
//! path. This is the "mechanism for UEs to determine when to use relay"
//! the paper lists as its second key challenge.

use hbr_d2d::{GoIntent, TechProfile};
use hbr_energy::MicroAmpHours;
use hbr_mobility::{Field, PathLoss, Position};
use hbr_sim::{DeviceId, SimRng};
use serde::{Deserialize, Serialize};

use crate::config::FrameworkConfig;

/// What a relay advertises in its discovery beacon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayAdvert {
    /// The advertising relay.
    pub device: DeviceId,
    /// Remaining collection slots this period (`M − k`).
    pub free_capacity: usize,
    /// Current group-owner intent (decays as the relay fills, §IV-C).
    pub go_intent: GoIntent,
    /// The relay's true position (used by the channel model to produce
    /// the RSSI the UE actually observes; the UE never reads this field
    /// directly).
    pub position: Position,
}

/// The detector's verdict for one heartbeat (or one matching round).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchDecision {
    /// Forward via this relay, estimated to be this far away.
    UseRelay {
        /// The chosen relay.
        relay: DeviceId,
        /// RSSI-estimated distance in metres.
        estimated_distance_m: f64,
    },
    /// No admissible relay — send directly over cellular.
    DirectCellular(NoMatchReason),
}

/// Why the detector fell back to cellular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoMatchReason {
    /// Discovery returned no beacons at all.
    NoRelaysDiscovered,
    /// Every candidate failed the distance or capacity pre-judgment.
    AllCandidatesInadmissible,
    /// The best candidate failed the energy pre-judgment.
    EnergyUnfavourable,
}

/// Matches UEs to relays using discovery-time information only.
///
/// # Examples
///
/// ```
/// use hbr_core::{D2dDetector, FrameworkConfig, MatchDecision, RelayAdvert};
/// use hbr_d2d::{GoIntent, TechProfile};
/// use hbr_mobility::{PathLoss, Position};
/// use hbr_sim::{DeviceId, SimRng};
///
/// let detector = D2dDetector::new(
///     FrameworkConfig::default(),
///     TechProfile::wifi_direct(),
///     PathLoss::indoor_wifi(),
/// );
/// let adverts = vec![RelayAdvert {
///     device: DeviceId::new(1),
///     free_capacity: 7,
///     go_intent: GoIntent::MAX,
///     position: Position::new(2.0, 0.0),
/// }];
/// let mut rng = SimRng::seed_from(3);
/// let decision = detector.match_relay(
///     Position::new(0.0, 0.0),
///     &adverts,
///     8,     // expected forwards during the session
///     581.0, // µAh per heartbeat over cellular
///     &mut rng,
/// );
/// assert!(matches!(decision, MatchDecision::UseRelay { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct D2dDetector {
    config: FrameworkConfig,
    tech: TechProfile,
    channel: PathLoss,
}

impl D2dDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`FrameworkConfig::validate`]).
    pub fn new(config: FrameworkConfig, tech: TechProfile, channel: PathLoss) -> Self {
        config.validate();
        D2dDetector {
            config,
            tech,
            channel,
        }
    }

    /// The framework configuration in force.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// Predicted UE-side energy of a D2D session from `ue_position`:
    /// establishment (discovery + connection) plus `expected_forwards`
    /// sends at the estimated distance.
    pub fn predicted_session_energy(
        &self,
        distance_m: f64,
        expected_forwards: u32,
    ) -> MicroAmpHours {
        use hbr_d2d::D2dRole;
        use hbr_sim::SimTime;
        let t0 = SimTime::ZERO;
        let establish = self.tech.discovery(t0, D2dRole::Initiator).charge()
            + self.tech.connection(t0, D2dRole::Initiator).charge();
        let per_send = self.tech.send(t0, 74, distance_m).charge();
        establish + per_send * expected_forwards as f64
    }

    /// Discovery: every device currently within this D2D technology's
    /// radio range of `ue`, nearest first (ties by id). Answered from the
    /// field's uniform-grid spatial index, so a detection sweep over a
    /// dense crowd costs O(n · local density) rather than O(n²); the
    /// caller turns the ids it cares about (live relays with capacity)
    /// into [`RelayAdvert`]s.
    pub fn discover_in_range(&self, field: &Field, ue: DeviceId) -> Vec<(DeviceId, f64)> {
        field.neighbours_within(ue, self.tech.range_m)
    }

    /// Runs one matching round: measures each advert's RSSI through the
    /// channel model, estimates distances, filters by the §III-C
    /// pre-judgment (distance threshold + free capacity + non-zero GO
    /// intent), ranks by estimated distance and finally applies the
    /// energy pre-judgment against `cellular_uah_per_heartbeat`.
    pub fn match_relay(
        &self,
        ue_position: Position,
        adverts: &[RelayAdvert],
        expected_forwards: u32,
        cellular_uah_per_heartbeat: f64,
        rng: &mut SimRng,
    ) -> MatchDecision {
        if adverts.is_empty() {
            return MatchDecision::DirectCellular(NoMatchReason::NoRelaysDiscovered);
        }

        let mut candidates: Vec<(DeviceId, f64)> = adverts
            .iter()
            .filter(|a| a.free_capacity > 0 && a.go_intent > GoIntent::MIN)
            .filter_map(|a| {
                let true_distance = ue_position.distance_to(a.position);
                if true_distance > self.tech.range_m {
                    return None; // beacon never heard
                }
                let rssi = self.channel.measure(true_distance, rng);
                let estimated = self.channel.estimate_distance(rssi);
                (estimated <= self.config.max_match_distance_m).then_some((a.device, estimated))
            })
            .collect();

        if candidates.is_empty() {
            return MatchDecision::DirectCellular(NoMatchReason::AllCandidatesInadmissible);
        }

        // total_cmp: a degenerate channel draw (NaN estimate) must never
        // panic the matcher; NaN sorts last and loses to real distances.
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let (relay, estimated_distance_m) = candidates[0];

        if self.config.energy_prejudgment {
            let predicted = self
                .predicted_session_energy(estimated_distance_m, expected_forwards)
                .as_micro_amp_hours();
            let cellular = cellular_uah_per_heartbeat * expected_forwards as f64;
            if predicted >= cellular {
                return MatchDecision::DirectCellular(NoMatchReason::EnergyUnfavourable);
            }
        }

        MatchDecision::UseRelay {
            relay,
            estimated_distance_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> D2dDetector {
        // Disable shadowing for deterministic distance estimates.
        let channel = PathLoss {
            shadowing_sigma_db: 0.0,
            ..PathLoss::indoor_wifi()
        };
        D2dDetector::new(
            FrameworkConfig::default(),
            TechProfile::wifi_direct(),
            channel,
        )
    }

    fn advert(id: u32, x: f64, free: usize) -> RelayAdvert {
        RelayAdvert {
            device: DeviceId::new(id),
            free_capacity: free,
            go_intent: if free > 0 {
                GoIntent::MAX
            } else {
                GoIntent::MIN
            },
            position: Position::new(x, 0.0),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from(11)
    }

    #[test]
    fn picks_the_nearest_admissible_relay() {
        let d = detector();
        let adverts = vec![advert(1, 10.0, 5), advert(2, 3.0, 5), advert(3, 7.0, 5)];
        let decision = d.match_relay(Position::ORIGIN, &adverts, 8, 581.0, &mut rng());
        match decision {
            MatchDecision::UseRelay {
                relay,
                estimated_distance_m,
            } => {
                assert_eq!(relay, DeviceId::new(2));
                assert!((estimated_distance_m - 3.0).abs() < 1e-6);
            }
            other => panic!("expected a relay match, got {other:?}"),
        }
    }

    #[test]
    fn empty_discovery_falls_back() {
        let d = detector();
        assert_eq!(
            d.match_relay(Position::ORIGIN, &[], 8, 581.0, &mut rng()),
            MatchDecision::DirectCellular(NoMatchReason::NoRelaysDiscovered)
        );
    }

    #[test]
    fn full_relays_are_skipped() {
        let d = detector();
        let adverts = vec![advert(1, 2.0, 0), advert(2, 9.0, 3)];
        match d.match_relay(Position::ORIGIN, &adverts, 8, 581.0, &mut rng()) {
            MatchDecision::UseRelay { relay, .. } => assert_eq!(relay, DeviceId::new(2)),
            other => panic!("expected fallback to the farther relay, got {other:?}"),
        }
    }

    #[test]
    fn distant_relays_fail_prejudgment() {
        let d = detector();
        // 40 m: within Wi-Fi Direct range but beyond the 15 m match limit.
        let adverts = vec![advert(1, 40.0, 5)];
        assert_eq!(
            d.match_relay(Position::ORIGIN, &adverts, 8, 581.0, &mut rng()),
            MatchDecision::DirectCellular(NoMatchReason::AllCandidatesInadmissible)
        );
    }

    #[test]
    fn energy_prejudgment_rejects_short_sessions() {
        let d = detector();
        let adverts = vec![advert(1, 2.0, 5)];
        // One forward cannot amortise ~196 µAh of establishment when a
        // cellular heartbeat costs only 100 µAh.
        assert_eq!(
            d.match_relay(Position::ORIGIN, &adverts, 1, 100.0, &mut rng()),
            MatchDecision::DirectCellular(NoMatchReason::EnergyUnfavourable)
        );
        // Eight forwards amortise fine against the real cellular cost.
        assert!(matches!(
            d.match_relay(Position::ORIGIN, &adverts, 8, 581.0, &mut rng()),
            MatchDecision::UseRelay { .. }
        ));
    }

    #[test]
    fn prejudgment_can_be_disabled() {
        let channel = PathLoss {
            shadowing_sigma_db: 0.0,
            ..PathLoss::indoor_wifi()
        };
        let d = D2dDetector::new(
            FrameworkConfig {
                energy_prejudgment: false,
                ..FrameworkConfig::default()
            },
            TechProfile::wifi_direct(),
            channel,
        );
        let adverts = vec![advert(1, 2.0, 5)];
        assert!(matches!(
            d.match_relay(Position::ORIGIN, &adverts, 1, 100.0, &mut rng()),
            MatchDecision::UseRelay { .. }
        ));
    }

    #[test]
    fn predicted_energy_grows_with_forwards_and_distance() {
        let d = detector();
        let near_few = d.predicted_session_energy(1.0, 1).as_micro_amp_hours();
        let near_many = d.predicted_session_energy(1.0, 8).as_micro_amp_hours();
        let far_many = d.predicted_session_energy(14.0, 8).as_micro_amp_hours();
        assert!(near_many > near_few);
        assert!(far_many > near_many);
        // Establishment ≈ 196 µAh + 1 send ≈ 73 µAh.
        assert!((near_few - 269.07).abs() < 1.5, "got {near_few}");
    }
}
