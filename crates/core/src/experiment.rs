//! Controlled experiments — the paper's lab bench, §V.
//!
//! The evaluation's energy and signaling figures all come from one
//! controlled setup: **one relay connected to `m` UEs at a fixed
//! distance, forwarding `n` standard heartbeats** ("transmission times"),
//! with the unmodified per-device cellular system as the baseline. This
//! module reproduces that bench exactly:
//!
//! * Every period, each UE forwards one heartbeat over the D2D link; the
//!   relay's [`MessageScheduler`] aggregates them with the relay's own
//!   heartbeat and ships the batch over a single RRC connection.
//! * The *original system* counterpart sends every device's heartbeat
//!   individually over its own cellular radio.
//! * Both sides run on the same calibrated radio models, and the run
//!   exposes per-device [`EnergyMeter`]s and the base-station
//!   [`SignalingCapture`] so experiments can regenerate Tables III–IV and
//!   Figs. 6–13/15.
//!
//! The paper's bench compresses time (it does not wait 270 real seconds
//! between forwards), so by default the D2D group's idle keep-alive
//! charge between heartbeats is excluded, like the paper's measurement;
//! set [`ExperimentConfig::include_idle_keepalive`] to study the honest
//! long-period cost (an ablation in `hbr-bench`).

use hbr_apps::{AppId, AppProfile, Heartbeat, MessageIdGen};
use hbr_cellular::{BaseStation, CellularRadio, SignalingCapture};
use hbr_d2d::{D2dLink, D2dRole};
use hbr_energy::{EnergyMeter, MicroAmpHours};
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};

use crate::config::RadioStack;
use crate::scheduler::{MessageScheduler, ScheduleDecision};

/// Parameters of one controlled run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of UEs connected to the relay (`m`).
    pub ue_count: usize,
    /// Forwarded heartbeats per UE — the paper's "transmission times"
    /// x-axis (`n`).
    pub transmissions: u32,
    /// UE–relay distance in metres.
    pub distance_m: f64,
    /// Heartbeat payload size; the paper's standard is 54 B.
    pub message_size: usize,
    /// The relay's own heartbeat period `T` (WeChat's 270 s by default).
    pub relay_period: SimDuration,
    /// Relay collection capacity `M`.
    pub relay_capacity: usize,
    /// Radio models to run on.
    pub stack: RadioStack,
    /// Charge the D2D group's keep-alive current between forwards
    /// (excluded by default to match the paper's compressed-time bench).
    pub include_idle_keepalive: bool,
    /// Scenario seed (transfer-loss draws).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            ue_count: 1,
            transmissions: 7,
            distance_m: 1.0,
            message_size: 54,
            relay_period: SimDuration::from_secs(270),
            relay_capacity: 8,
            stack: RadioStack::default(),
            include_idle_keepalive: false,
            seed: 7,
        }
    }
}

/// The controlled bench; build with a config, call
/// [`ControlledExperiment::run`].
///
/// # Examples
///
/// ```
/// use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
///
/// let run = ControlledExperiment::new(ExperimentConfig::default()).run();
/// // The relay made one aggregated RRC connection per period.
/// assert_eq!(run.relay_rrc_connections, 7);
/// ```
#[derive(Debug, Clone)]
pub struct ControlledExperiment {
    config: ExperimentConfig,
}

/// Everything one controlled run measured.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// The configuration that produced this run.
    pub config: ExperimentConfig,
    /// Energy meter of each UE under the framework (index = UE number).
    pub ue_meters: Vec<EnergyMeter>,
    /// Energy meter of the relay under the framework.
    pub relay_meter: EnergyMeter,
    /// Energy meter of one device under the original system (every device
    /// behaves identically there).
    pub original_device_meter: EnergyMeter,
    /// Layer-3 capture of the framework run (relay's aggregated sends +
    /// any UE fallbacks).
    pub framework_capture: SignalingCapture,
    /// Layer-3 capture of the original system (all `m + 1` devices).
    pub original_capture: SignalingCapture,
    /// RRC connections the relay established.
    pub relay_rrc_connections: u64,
    /// RRC connections the original system established (all devices).
    pub original_rrc_connections: u64,
    /// Heartbeats that failed on the D2D link and fell back to cellular.
    pub d2d_failures: u64,
    /// Heartbeats delivered through the relay.
    pub forwarded: u64,
}

impl ControlledExperiment {
    /// Creates the bench.
    ///
    /// # Panics
    ///
    /// Panics if `ue_count` is zero, `transmissions` is zero, or the
    /// distance is not positive and finite.
    pub fn new(config: ExperimentConfig) -> Self {
        assert!(config.ue_count > 0, "need at least one UE");
        assert!(config.transmissions > 0, "need at least one transmission");
        assert!(
            config.distance_m.is_finite() && config.distance_m > 0.0,
            "distance must be positive and finite"
        );
        assert!(config.relay_capacity > 0, "relay capacity must be positive");
        ControlledExperiment { config }
    }

    /// Runs the bench and the original-system counterpart.
    pub fn run(&self) -> ExperimentRun {
        let cfg = &self.config;
        let mut rng = SimRng::seed_from(cfg.seed);
        let mut ids = MessageIdGen::new();
        let relay_id = DeviceId::new(0);
        let app = AppProfile::custom(
            AppId::new(100),
            "bench",
            cfg.relay_period,
            cfg.message_size,
            0.5,
        );

        // --- Framework side -------------------------------------------------
        let mut ue_meters = vec![EnergyMeter::new(); cfg.ue_count];
        let mut relay_meter = EnergyMeter::new();
        let mut relay_radio = CellularRadio::new(cfg.stack.cellular.clone());
        let mut ue_fallback_radios: Vec<CellularRadio> = (0..cfg.ue_count)
            .map(|_| CellularRadio::new(cfg.stack.cellular.clone()))
            .collect();
        let mut bs = BaseStation::new(1e9);
        let mut d2d_failures = 0u64;
        let mut forwarded = 0u64;

        // Establishment at t = 0: the relay scans once, then forms a group
        // with each UE; every UE pays a full discovery + connection.
        let t0 = SimTime::ZERO;
        let relay_scan = cfg.stack.d2d.discovery(t0, D2dRole::Responder);
        for (start, seg) in &relay_scan.segments {
            relay_meter.add_segment(*start, *seg);
        }
        let mut links = Vec::with_capacity(cfg.ue_count);
        let mut ready_at = relay_scan.done_at;
        for meter in ue_meters.iter_mut() {
            let ue_scan = cfg.stack.d2d.discovery(t0, D2dRole::Initiator);
            let conn_start = ue_scan.done_at;
            let ue_conn = cfg.stack.d2d.connection(conn_start, D2dRole::Initiator);
            let relay_conn = cfg.stack.d2d.connection(conn_start, D2dRole::Responder);
            for (s, seg) in ue_scan.segments.iter().chain(ue_conn.segments.iter()) {
                meter.add_segment(*s, *seg);
            }
            for (s, seg) in &relay_conn.segments {
                relay_meter.add_segment(*s, *seg);
            }
            ready_at = ready_at.max(ue_conn.done_at);
            links.push(D2dLink::already_connected(cfg.stack.d2d.clone()));
        }

        let margin = SimDuration::from_secs(5);
        let mut scheduler =
            MessageScheduler::new(cfg.relay_capacity, cfg.relay_period, margin, ready_at);
        // Latest instant any radio was active, so final tails are drained
        // past every transmission (fallbacks can outlive the last flush).
        let mut horizon = ready_at;

        for period in 0..cfg.transmissions {
            let period_start = ready_at + cfg.relay_period * u64::from(period);
            if period > 0 {
                scheduler.begin_period(period_start);
            }

            // Each UE forwards one heartbeat, staggered inside the period.
            let mut flushed_this_period = false;
            for (j, link) in links.iter_mut().enumerate() {
                let at =
                    period_start + cfg.relay_period * (j as u64 + 1) / (cfg.ue_count as u64 + 2);
                let hb = Heartbeat {
                    id: ids.next_id(),
                    app: app.id,
                    source: DeviceId::new(j as u32 + 1),
                    seq: period,
                    size: cfg.message_size,
                    created_at: at,
                    expires_at: at + app.expiration,
                };
                if !link.is_ready(at) {
                    // The link died (e.g. out of range for this technique):
                    // the UE has no relay and sends over cellular.
                    d2d_failures += 1;
                    let out = ue_fallback_radios[j].transmit(at, cfg.message_size);
                    for (s, seg) in &out.activity.segments {
                        ue_meters[j].add_segment(*s, *seg);
                    }
                    bs.record(hb.source, &out.activity, out.rrc_connections);
                    horizon = horizon.max(out.delivered_at);
                    continue;
                }
                let outcome = link.transfer(at, cfg.message_size, cfg.distance_m, &mut rng);
                for (s, seg) in &outcome.sender.segments {
                    ue_meters[j].add_segment(*s, *seg);
                }
                if outcome.success {
                    for (s, seg) in &outcome.receiver.segments {
                        relay_meter.add_segment(*s, *seg);
                    }
                    forwarded += 1;
                    match scheduler.on_arrival(outcome.completed_at, hb) {
                        ScheduleDecision::Flush(_) => {
                            let flush_at = outcome.completed_at;
                            Self::flush(
                                cfg,
                                &mut scheduler,
                                &mut relay_radio,
                                &mut relay_meter,
                                &mut bs,
                                relay_id,
                                flush_at,
                            );
                            flushed_this_period = true;
                            horizon = horizon.max(flush_at);
                        }
                        ScheduleDecision::Pend => {}
                        ScheduleDecision::Rejected => {
                            // Mid-period overflow already flushed; UE falls
                            // back to cellular for this heartbeat.
                            d2d_failures += 1;
                            let out = ue_fallback_radios[j].transmit(at, cfg.message_size);
                            for (s, seg) in &out.activity.segments {
                                ue_meters[j].add_segment(*s, *seg);
                            }
                            bs.record(hb.source, &out.activity, out.rrc_connections);
                            horizon = horizon.max(out.delivered_at);
                        }
                    }
                } else {
                    // Link-layer loss: the UE's fallback timer will fire and
                    // it re-sends over cellular (charged immediately here).
                    d2d_failures += 1;
                    let out = ue_fallback_radios[j].transmit(at, cfg.message_size);
                    for (s, seg) in &out.activity.segments {
                        ue_meters[j].add_segment(*s, *seg);
                    }
                    bs.record(hb.source, &out.activity, out.rrc_connections);
                    horizon = horizon.max(out.delivered_at);
                }
            }

            // Period deadline: flush the batch together with the relay's own
            // heartbeat (one aggregated RRC connection per period).
            if !flushed_this_period {
                let flush_at = scheduler.next_deadline();
                Self::flush(
                    cfg,
                    &mut scheduler,
                    &mut relay_radio,
                    &mut relay_meter,
                    &mut bs,
                    relay_id,
                    flush_at,
                );
                horizon = horizon.max(flush_at);
            }

            if cfg.include_idle_keepalive {
                let period_end = period_start + cfg.relay_period;
                for (j, link) in links.iter().enumerate() {
                    let (ue_idle, relay_idle) = link.idle(period_start, period_end);
                    for (s, seg) in &ue_idle.segments {
                        ue_meters[j].add_segment(*s, *seg);
                    }
                    // Only bill the relay's keep-alive once, not per link.
                    if j == 0 {
                        for (s, seg) in &relay_idle.segments {
                            relay_meter.add_segment(*s, *seg);
                        }
                    }
                }
            }
        }

        // Drain the relay radio's final tails.
        let end = horizon + SimDuration::from_secs(60);
        let tail = relay_radio.finalize(end);
        for (s, seg) in &tail.segments {
            relay_meter.add_segment(*s, *seg);
        }
        bs.record(relay_id, &tail, 0);
        for (j, radio) in ue_fallback_radios.iter_mut().enumerate() {
            let tail = radio.finalize(end);
            for (s, seg) in &tail.segments {
                ue_meters[j].add_segment(*s, *seg);
            }
            bs.record(DeviceId::new(j as u32 + 1), &tail, 0);
        }
        let relay_rrc_connections = relay_radio.connections()
            + ue_fallback_radios
                .iter()
                .map(|r| r.connections())
                .sum::<u64>();

        // --- Original system -------------------------------------------------
        // Every device sends its own heartbeat once per period over its own
        // radio; with periods far beyond the tail timers each send is an
        // independent full RRC cycle, so one device is representative.
        let mut original_device_meter = EnergyMeter::new();
        let mut original_radio = CellularRadio::new(cfg.stack.cellular.clone());
        let mut original_bs = BaseStation::new(1e9);
        let mut t = SimTime::ZERO;
        for _ in 0..cfg.transmissions {
            let out = original_radio.transmit(t, cfg.message_size);
            for (s, seg) in &out.activity.segments {
                original_device_meter.add_segment(*s, *seg);
            }
            original_bs.record(DeviceId::new(0), &out.activity, out.rrc_connections);
            t += cfg.relay_period;
        }
        let tail = original_radio.finalize(t + SimDuration::from_secs(60));
        for (s, seg) in &tail.segments {
            original_device_meter.add_segment(*s, *seg);
        }
        original_bs.record(DeviceId::new(0), &tail, 0);
        // The original system runs m + 1 such devices.
        let devices = (cfg.ue_count + 1) as u64;
        let original_rrc_connections = original_radio.connections() * devices;
        let mut original_capture = original_bs.capture().clone();
        let one_device = original_bs.capture().clone();
        for _ in 1..devices {
            original_capture.merge(&one_device);
        }

        ExperimentRun {
            config: self.config.clone(),
            ue_meters,
            relay_meter,
            original_device_meter,
            framework_capture: bs.capture().clone(),
            original_capture,
            relay_rrc_connections,
            original_rrc_connections,
            d2d_failures,
            forwarded,
        }
    }

    fn flush(
        cfg: &ExperimentConfig,
        scheduler: &mut MessageScheduler,
        radio: &mut CellularRadio,
        meter: &mut EnergyMeter,
        bs: &mut BaseStation,
        relay_id: DeviceId,
        at: SimTime,
    ) {
        let batch = scheduler.take_batch_at(at);
        // Aggregate payload: the relay's own heartbeat plus the batch.
        let bytes = cfg.message_size + batch.iter().map(|hb| hb.size).sum::<usize>();
        let out = radio.transmit(at, bytes);
        for (s, seg) in &out.activity.segments {
            meter.add_segment(*s, *seg);
        }
        bs.record(relay_id, &out.activity, out.rrc_connections);
    }
}

impl ExperimentRun {
    /// Mean UE energy under the framework, in µAh.
    pub fn ue_energy(&self) -> f64 {
        self.ue_meters
            .iter()
            .map(|m| m.total().as_micro_amp_hours())
            .sum::<f64>()
            / self.ue_meters.len() as f64
    }

    /// Relay energy under the framework, in µAh.
    pub fn relay_energy(&self) -> f64 {
        self.relay_meter.total().as_micro_amp_hours()
    }

    /// Whole-system energy under the framework (relay + all UEs), µAh.
    pub fn system_energy(&self) -> f64 {
        self.relay_energy()
            + self
                .ue_meters
                .iter()
                .map(|m| m.total().as_micro_amp_hours())
                .sum::<f64>()
    }

    /// Energy of one device under the original system, µAh.
    pub fn original_device_energy(&self) -> f64 {
        self.original_device_meter.total().as_micro_amp_hours()
    }

    /// Whole-system energy under the original system (`m + 1` identical
    /// devices), µAh.
    pub fn original_system_energy(&self) -> f64 {
        self.original_device_energy() * (self.config.ue_count + 1) as f64
    }

    /// Fractional energy saved by one UE versus sending its own
    /// heartbeats over cellular (Fig. 9's "Saved Energy of UE").
    pub fn ue_saving(&self) -> f64 {
        1.0 - self.ue_energy() / self.original_device_energy()
    }

    /// Fractional energy saved by the whole system (Fig. 9's "Saved
    /// Energy of System").
    pub fn system_saving(&self) -> f64 {
        1.0 - self.system_energy() / self.original_system_energy()
    }

    /// Extra energy the relay pays versus just sending its own heartbeats
    /// (Fig. 11's "wasted" numerator), µAh.
    pub fn relay_wasted_energy(&self) -> f64 {
        (self.relay_energy() - self.original_device_energy()).max(0.0)
    }

    /// Energy all UEs saved together (Fig. 11's denominator), µAh.
    pub fn ue_saved_energy(&self) -> f64 {
        ((self.original_device_energy() * self.config.ue_count as f64)
            - self
                .ue_meters
                .iter()
                .map(|m| m.total().as_micro_amp_hours())
                .sum::<f64>())
        .max(0.0)
    }

    /// Fig. 11's ratio: wasted relay energy over saved UE energy.
    pub fn wasted_to_saved_ratio(&self) -> f64 {
        let saved = self.ue_saved_energy();
        if saved == 0.0 {
            f64::INFINITY
        } else {
            self.relay_wasted_energy() / saved
        }
    }

    /// Layer-3 messages under the framework (Fig. 15's relay curves).
    pub fn framework_l3(&self) -> u64 {
        self.framework_capture.total()
    }

    /// Layer-3 messages under the original system (Fig. 15's baseline).
    pub fn original_l3(&self) -> u64 {
        self.original_capture.total()
    }

    /// Fractional signaling reduction.
    pub fn signaling_saving(&self) -> f64 {
        1.0 - self.framework_l3() as f64 / self.original_l3() as f64
    }

    /// Charge attributed to a phase group on the relay, µAh.
    pub fn relay_phase(&self, group: hbr_energy::PhaseGroup) -> MicroAmpHours {
        self.relay_meter.group_total(group)
    }

    /// Charge attributed to a phase group on UE 0, µAh.
    pub fn ue_phase(&self, group: hbr_energy::PhaseGroup) -> MicroAmpHours {
        self.ue_meters[0].group_total(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_energy::PhaseGroup;

    fn run(ue_count: usize, transmissions: u32) -> ExperimentRun {
        ControlledExperiment::new(ExperimentConfig {
            ue_count,
            transmissions,
            ..ExperimentConfig::default()
        })
        .run()
    }

    #[test]
    fn one_connection_per_period() {
        let r = run(1, 7);
        assert_eq!(r.relay_rrc_connections, 7);
        assert_eq!(r.forwarded, 7);
        assert_eq!(r.d2d_failures, 0);
    }

    #[test]
    fn table3_phases_reproduce() {
        let r = run(1, 1);
        let ue_disc = r.ue_phase(PhaseGroup::Discovery).as_micro_amp_hours();
        let ue_conn = r.ue_phase(PhaseGroup::Connection).as_micro_amp_hours();
        let ue_fwd = r.ue_phase(PhaseGroup::Forwarding).as_micro_amp_hours();
        assert!((ue_disc - 132.24).abs() < 1.0, "UE discovery {ue_disc}");
        assert!((ue_conn - 63.74).abs() < 1.0, "UE connection {ue_conn}");
        assert!((ue_fwd - 73.09).abs() < 1.0, "UE forwarding {ue_fwd}");
        let relay_disc = r.relay_phase(PhaseGroup::Discovery).as_micro_amp_hours();
        let relay_conn = r.relay_phase(PhaseGroup::Connection).as_micro_amp_hours();
        assert!(
            (relay_disc - 122.50).abs() < 1.0,
            "relay discovery {relay_disc}"
        );
        assert!(
            (relay_conn - 60.29).abs() < 1.0,
            "relay connection {relay_conn}"
        );
    }

    #[test]
    fn system_saving_near_zero_at_one_transmission() {
        let r = run(1, 1);
        let s = r.system_saving();
        assert!(
            s.abs() < 0.08,
            "Fig. 9: D2D ≈ original at one forward, got {s:.3}"
        );
    }

    #[test]
    fn ue_saving_near_55_percent_at_first_transmission() {
        let r = run(1, 1);
        let s = r.ue_saving();
        assert!(
            (0.48..0.62).contains(&s),
            "paper: ≈55% UE saving at the first forward, got {s:.3}"
        );
    }

    #[test]
    fn savings_grow_with_transmissions() {
        let few = run(1, 1);
        let many = run(1, 7);
        assert!(many.system_saving() > few.system_saving() + 0.1);
        assert!(many.ue_saving() > few.ue_saving());
        assert!(many.system_saving() > 0.2, "paper: ~36%, shape: >20%");
    }

    #[test]
    fn signaling_saving_is_at_least_half_with_one_ue() {
        let r = run(1, 10);
        assert!(
            r.signaling_saving() >= 0.45,
            "paper: >50% signaling reduction, got {:.3}",
            r.signaling_saving()
        );
        assert!(r.framework_l3() < r.original_l3());
    }

    #[test]
    fn signaling_saving_improves_with_more_ues() {
        let one = run(1, 10);
        let two = run(2, 10);
        assert!(two.signaling_saving() > one.signaling_saving());
    }

    #[test]
    fn wasted_to_saved_ratio_drops() {
        let first = run(1, 1);
        let many = run(7, 7);
        assert!(
            first.wasted_to_saved_ratio() > 0.8,
            "Fig. 11 starts ≈97%, got {:.2}",
            first.wasted_to_saved_ratio()
        );
        assert!(
            many.wasted_to_saved_ratio() < first.wasted_to_saved_ratio() / 2.0,
            "ratio must fall steeply with more UEs and forwards"
        );
    }

    #[test]
    fn receive_energy_linear_in_message_count() {
        // Table IV: relay receive cost is linear in forwarded messages.
        let r3 = run(3, 1);
        let r6 = run(6, 1);
        let recv3 = r3.relay_meter.phase_total(hbr_energy::Phase::D2dReceive);
        let recv6 = r6.relay_meter.phase_total(hbr_energy::Phase::D2dReceive);
        let ratio = recv6.as_micro_amp_hours() / recv3.as_micro_amp_hours();
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "linear scaling, got ×{ratio:.3}"
        );
    }

    #[test]
    fn capacity_overflow_forces_extra_flushes() {
        let r = ControlledExperiment::new(ExperimentConfig {
            ue_count: 5,
            relay_capacity: 2,
            transmissions: 3,
            ..ExperimentConfig::default()
        })
        .run();
        // 5 arrivals per period with M = 2: the relay flushes mid-period and
        // rejects late arrivals, so more RRC connections than periods.
        assert!(r.relay_rrc_connections > 3);
        assert!(r.d2d_failures > 0, "rejected UEs must fall back");
    }

    #[test]
    fn idle_keepalive_increases_energy_when_enabled() {
        let without = run(1, 5);
        let with = ControlledExperiment::new(ExperimentConfig {
            include_idle_keepalive: true,
            transmissions: 5,
            ..ExperimentConfig::default()
        })
        .run();
        assert!(with.ue_energy() > without.ue_energy());
        assert!(with.relay_energy() > without.relay_energy());
    }

    #[test]
    #[should_panic(expected = "at least one UE")]
    fn zero_ues_rejected() {
        ControlledExperiment::new(ExperimentConfig {
            ue_count: 0,
            ..ExperimentConfig::default()
        });
    }
}
