//! Runtime invariant checker: the paper's safety properties, asserted
//! after every engine step.
//!
//! The fallback design of §III-A only works if a handful of conservation
//! properties hold no matter what faults hit the system. This module
//! checks them *while a scenario runs* instead of trusting end-of-run
//! aggregates:
//!
//! * **Message conservation** — every heartbeat an alive device emitted
//!   is delivered or expired exactly once; none is accepted by an IM
//!   server past its expiration `T_k`, none silently vanishes.
//! * **Scheduler bound** — a relay's buffer never exceeds Algorithm 1's
//!   capacity `M`.
//! * **RRC legality** — consecutive observed radio states follow the
//!   §II-B state machine ([`RrcState::can_transition_to`]).
//! * **Energy sanity** — cumulative charge is finite, non-negative and
//!   monotone; batteries only ever lose charge.
//! * **No silent lapse** — a session never reads offline while its
//!   device is alive and the cellular fallback is available.
//!
//! The checker is pure observation: it draws no randomness and emits
//! nothing into reports, so enabling it cannot change a scenario's
//! byte-for-byte results. It is on by default in debug builds (i.e. for
//! every workspace test) and off in release experiment binaries unless
//! the `HBR_CHECK_INVARIANTS` env var enables it ("0" force-disables).
//! Violations panic, carrying the scenario's recent [`Tracer`] window so
//! the failing run explains itself.

use std::collections::{HashMap, HashSet};

use hbr_apps::{Heartbeat, MessageId};
use hbr_cellular::RrcState;
use hbr_sim::{DeviceId, SimTime, Tracer};

/// What the message ledger knows about one emitted heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HbFate {
    /// Emitted, not yet at a server — must be in some buffer or pending
    /// set, or eventually delivered/expired.
    InFlight,
    /// Accepted by its IM server.
    Delivered,
    /// Reached its server too late and was rejected as expired.
    Expired,
    /// Physically lost when the device holding it ran out of battery —
    /// the one legal way a heartbeat disappears.
    DroppedDead,
}

/// One device's observable state after an engine step, assembled by the
/// scenario loop for [`InvariantChecker::check_device`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceProbe {
    /// The device under observation.
    pub device: DeviceId,
    /// `false` once its battery depleted (no fallback exists then).
    pub alive: bool,
    /// Heartbeats in its Algorithm 1 buffer (0 for UEs).
    pub buffered: usize,
    /// The scheduler capacity `M` (`usize::MAX` for UEs).
    pub capacity: usize,
    /// Cumulative charge drawn, µAh.
    pub energy_uah: f64,
    /// Remaining battery charge, µAh ([`None`] = mains powered).
    pub battery_remaining_uah: Option<f64>,
    /// The RRC state the radio reads at this instant.
    pub rrc: RrcState,
    /// `true` if every one of its sessions is online right now.
    pub online: bool,
    /// `true` while an injected fault legitimately suspends the
    /// no-silent-lapse invariant (cellular outage + recovery window).
    pub offline_exempt: bool,
}

#[derive(Debug, Clone, Copy)]
struct DeviceLast {
    energy_uah: f64,
    battery_remaining_uah: Option<f64>,
    rrc: RrcState,
}

/// The runtime checker. See the module docs for the invariant list.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    enabled: bool,
    ledger: HashMap<MessageId, HbFate>,
    last: Vec<Option<DeviceLast>>,
    /// Scenario provenance (seed, shard cell) stamped into every
    /// violation panic so a CI failure is reproducible from the log
    /// alone.
    context: Option<String>,
}

/// Resolves the default enablement: the `HBR_CHECK_INVARIANTS` env var
/// if set (anything but "0" enables), else on in debug builds and off in
/// release builds.
pub fn default_enabled() -> bool {
    match std::env::var("HBR_CHECK_INVARIANTS") {
        Ok(v) => v != "0",
        Err(_) => cfg!(debug_assertions),
    }
}

const EPS: f64 = 1e-9;

impl InvariantChecker {
    /// A checker; a disabled one ignores every call at near-zero cost.
    pub fn new(enabled: bool) -> Self {
        InvariantChecker {
            enabled,
            ledger: HashMap::new(),
            last: Vec::new(),
            context: None,
        }
    }

    /// `true` if violations are being checked.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Stamps scenario provenance into every violation panic: the RNG
    /// seed and, for sharded crowd runs, the cell index whose derived
    /// seed reproduces the failing cell in isolation.
    pub fn set_context(&mut self, seed: u64, cell: Option<usize>) {
        self.context = Some(match cell {
            Some(cell) => format!("seed={seed} cell={cell}"),
            None => format!("seed={seed}"),
        });
    }

    /// Records a heartbeat emitted by an alive device.
    pub fn on_emitted(&mut self, hb: &Heartbeat) {
        if !self.enabled {
            return;
        }
        let prev = self.ledger.insert(hb.id, HbFate::InFlight);
        assert!(
            prev.is_none(),
            "invariant violation: duplicate message id {} emitted",
            hb.id
        );
    }

    /// Records a delivery attempt at an IM server: `accepted` is the
    /// server's verdict at instant `at`.
    pub fn on_delivery(&mut self, hb: &Heartbeat, at: SimTime, accepted: bool, tracer: &Tracer) {
        if !self.enabled {
            return;
        }
        let fate = self.ledger.get(&hb.id).copied();
        if accepted {
            if !hb.is_fresh(at) {
                fail(
                    self.context.as_deref(),
                    tracer,
                    at,
                    &format!(
                        "{} accepted past its expiration T_k ({})",
                        hb.id, hb.expires_at
                    ),
                );
            }
            match fate {
                Some(HbFate::InFlight) | Some(HbFate::DroppedDead) => {
                    // DroppedDead → Delivered is legal: the source died
                    // after handing a copy to a relay that then flushed.
                    self.ledger.insert(hb.id, HbFate::Delivered);
                }
                Some(HbFate::Delivered) => fail(
                    self.context.as_deref(),
                    tracer,
                    at,
                    &format!("{} delivered twice", hb.id),
                ),
                Some(HbFate::Expired) => fail(
                    self.context.as_deref(),
                    tracer,
                    at,
                    &format!("{} accepted after the server expired it", hb.id),
                ),
                None => fail(
                    self.context.as_deref(),
                    tracer,
                    at,
                    &format!("{} delivered but never tracked as emitted", hb.id),
                ),
            }
        } else {
            match fate {
                // A rejected duplicate of an already-terminal heartbeat
                // (relay flush + fallback race) is the dedup working.
                Some(HbFate::Delivered) | Some(HbFate::Expired) => {}
                Some(HbFate::InFlight) | Some(HbFate::DroppedDead) => {
                    if hb.is_fresh(at) {
                        fail(
                            self.context.as_deref(),
                            tracer,
                            at,
                            &format!("fresh {} rejected by its server", hb.id),
                        );
                    }
                    self.ledger.insert(hb.id, HbFate::Expired);
                }
                None => fail(
                    self.context.as_deref(),
                    tracer,
                    at,
                    &format!("{} rejected but never tracked as emitted", hb.id),
                ),
            }
        }
    }

    /// Records a heartbeat that physically died with a depleted device —
    /// the one legal disappearance.
    pub fn on_dropped_dead(&mut self, hb: &Heartbeat) {
        if !self.enabled {
            return;
        }
        if self.ledger.get(&hb.id) == Some(&HbFate::InFlight) {
            self.ledger.insert(hb.id, HbFate::DroppedDead);
        }
    }

    /// Checks one device's per-step invariants against its previous
    /// observation.
    pub fn check_device(
        &mut self,
        now: SimTime,
        index: usize,
        probe: &DeviceProbe,
        tracer: &Tracer,
    ) {
        if !self.enabled {
            return;
        }
        if probe.buffered > probe.capacity {
            fail(
                self.context.as_deref(),
                tracer,
                now,
                &format!(
                    "{} buffers {} heartbeats past capacity M = {}",
                    probe.device, probe.buffered, probe.capacity
                ),
            );
        }
        if !probe.energy_uah.is_finite() || probe.energy_uah < -EPS {
            fail(
                self.context.as_deref(),
                tracer,
                now,
                &format!(
                    "{} energy is not finite/non-negative: {}",
                    probe.device, probe.energy_uah
                ),
            );
        }
        if let Some(remaining) = probe.battery_remaining_uah {
            if !remaining.is_finite() || remaining < -EPS {
                fail(
                    self.context.as_deref(),
                    tracer,
                    now,
                    &format!("{} battery went negative: {remaining}", probe.device),
                );
            }
        }
        if probe.alive && !probe.offline_exempt && !probe.online {
            fail(
                self.context.as_deref(),
                tracer,
                now,
                &format!(
                    "{} session reads offline while its cellular fallback exists",
                    probe.device
                ),
            );
        }
        if self.last.len() <= index {
            self.last.resize(index + 1, None);
        }
        if let Some(last) = self.last[index] {
            if probe.energy_uah + EPS < last.energy_uah {
                fail(
                    self.context.as_deref(),
                    tracer,
                    now,
                    &format!(
                        "{} cumulative energy decreased: {} -> {}",
                        probe.device, last.energy_uah, probe.energy_uah
                    ),
                );
            }
            if let (Some(prev), Some(cur)) =
                (last.battery_remaining_uah, probe.battery_remaining_uah)
            {
                if cur > prev + EPS {
                    fail(
                        self.context.as_deref(),
                        tracer,
                        now,
                        &format!("{} battery recharged itself: {prev} -> {cur}", probe.device),
                    );
                }
            }
            if !last.rrc.can_transition_to(probe.rrc) {
                fail(
                    self.context.as_deref(),
                    tracer,
                    now,
                    &format!(
                        "{} illegal RRC transition {:?} -> {:?}",
                        probe.device, last.rrc, probe.rrc
                    ),
                );
            }
        }
        self.last[index] = Some(DeviceLast {
            energy_uah: probe.energy_uah,
            battery_remaining_uah: probe.battery_remaining_uah,
            rrc: probe.rrc,
        });
    }

    /// Ledger audit for the reliable-delivery layer: counts of
    /// (delivered, expired, dropped-dead, still-in-flight) fates across
    /// every emitted heartbeat. Only meaningful when the checker is
    /// enabled (all zeros otherwise). The exactly-once SLO is
    /// `delivered + expired + dropped_dead + in_flight == emitted`,
    /// which holds by construction of the fate map — the interesting
    /// assertion for callers is that under a finished chaos run
    /// `in_flight` matches the surviving buffers and nothing else.
    pub fn delivery_audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::default();
        for fate in self.ledger.values() {
            match fate {
                HbFate::InFlight => audit.in_flight += 1,
                HbFate::Delivered => audit.delivered += 1,
                HbFate::Expired => audit.expired += 1,
                HbFate::DroppedDead => audit.dropped_dead += 1,
            }
        }
        audit
    }

    /// End-of-run conservation audit: every heartbeat still marked
    /// in-flight must sit in one of the surviving buffers (`surviving`
    /// is the union of scheduler buffers, own-pending sets, link queues,
    /// feedback trackers, the delivery ledger and the outage queue).
    /// Anything else vanished silently.
    pub fn on_finish(&mut self, surviving: &HashSet<MessageId>, tracer: &Tracer) {
        if !self.enabled {
            return;
        }
        for (id, fate) in &self.ledger {
            if *fate == HbFate::InFlight && !surviving.contains(id) {
                let audit = self.delivery_audit();
                fail(
                    self.context.as_deref(),
                    tracer,
                    SimTime::MAX,
                    &format!(
                        "{id} was emitted but silently lost (no buffer holds it); \
                         audit: delivered={} expired={} dropped_dead={} in_flight={}",
                        audit.delivered, audit.expired, audit.dropped_dead, audit.in_flight
                    ),
                );
            }
        }
    }
}

/// Fate tallies from [`InvariantChecker::delivery_audit`]: every emitted
/// heartbeat counted under exactly one terminal (or in-flight) state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryAudit {
    /// Accepted by an IM server exactly once.
    pub delivered: u64,
    /// Rejected by the server past `T_k` (accounted, not lost).
    pub expired: u64,
    /// Died with a depleted device — the one legal disappearance.
    pub dropped_dead: u64,
    /// Still sitting in a buffer when the audit ran.
    pub in_flight: u64,
}

fn fail(run: Option<&str>, tracer: &Tracer, at: SimTime, msg: &str) -> ! {
    let trace = tracer.to_text();
    let context = if trace.is_empty() {
        String::from("(tracing disabled: set trace_capacity for context)")
    } else {
        trace
    };
    let provenance = match run {
        Some(run) => format!(" [{run}]"),
        None => String::new(),
    };
    panic!("invariant violation at {at}{provenance}: {msg}\nrecent trace:\n{context}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_apps::AppId;
    use hbr_sim::SimDuration;

    fn hb(id_gen: &mut hbr_apps::MessageIdGen, created: u64) -> Heartbeat {
        let created_at = SimTime::from_secs(created);
        Heartbeat {
            id: id_gen.next_id(),
            app: AppId::new(1),
            source: DeviceId::new(0),
            seq: 0,
            size: 74,
            created_at,
            expires_at: created_at + SimDuration::from_secs(810),
        }
    }

    fn probe() -> DeviceProbe {
        DeviceProbe {
            device: DeviceId::new(0),
            alive: true,
            buffered: 0,
            capacity: 7,
            energy_uah: 0.0,
            battery_remaining_uah: None,
            rrc: RrcState::Idle,
            online: true,
            offline_exempt: false,
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_delivery(&m, SimTime::from_secs(10), true, &tracer);
        // The fallback's duplicate is rejected by dedup: legal.
        c.on_delivery(&m, SimTime::from_secs(20), false, &tracer);
        c.on_finish(&HashSet::new(), &tracer);
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_acceptance_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_delivery(&m, SimTime::from_secs(10), true, &tracer);
        c.on_delivery(&m, SimTime::from_secs(20), true, &tracer);
    }

    #[test]
    #[should_panic(expected = "past its expiration")]
    fn late_acceptance_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_delivery(&m, SimTime::from_secs(2000), true, &tracer);
    }

    #[test]
    #[should_panic(expected = "[seed=7 cell=3]")]
    fn conservation_panic_names_seed_and_cell() {
        let mut c = InvariantChecker::new(true);
        c.set_context(7, Some(3));
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_finish(&HashSet::new(), &tracer);
    }

    #[test]
    #[should_panic(expected = "audit: delivered=0 expired=0 dropped_dead=0 in_flight=1")]
    fn conservation_panic_carries_audit_counts() {
        let mut c = InvariantChecker::new(true);
        c.set_context(11, None);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_finish(&HashSet::new(), &tracer);
    }

    #[test]
    #[should_panic(expected = "silently lost")]
    fn vanished_heartbeat_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_finish(&HashSet::new(), &tracer);
    }

    #[test]
    fn in_flight_heartbeat_in_a_buffer_survives_finish() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        let surviving: HashSet<MessageId> = [m.id].into_iter().collect();
        c.on_finish(&surviving, &tracer);
    }

    #[test]
    fn delivery_audit_counts_each_fate_once() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let delivered = hb(&mut ids, 0);
        let expired = hb(&mut ids, 0);
        let in_flight = hb(&mut ids, 0);
        let dead = hb(&mut ids, 0);
        c.on_emitted(&delivered);
        c.on_emitted(&expired);
        c.on_emitted(&in_flight);
        c.on_emitted(&dead);
        c.on_delivery(&delivered, SimTime::from_secs(10), true, &tracer);
        c.on_delivery(&expired, SimTime::from_secs(2000), false, &tracer);
        c.on_dropped_dead(&dead);
        let audit = c.delivery_audit();
        assert_eq!(
            audit,
            DeliveryAudit {
                delivered: 1,
                expired: 1,
                dropped_dead: 1,
                in_flight: 1,
            }
        );
        assert_eq!(
            audit.delivered + audit.expired + audit.dropped_dead + audit.in_flight,
            4,
            "exactly-once accounting"
        );
    }

    #[test]
    fn dead_drop_then_relay_delivery_is_legal() {
        let mut c = InvariantChecker::new(true);
        let mut ids = hbr_apps::MessageIdGen::new();
        let tracer = Tracer::with_capacity(0);
        let m = hb(&mut ids, 0);
        c.on_emitted(&m);
        c.on_dropped_dead(&m);
        // The relay's copy outlived the dead source and flushed.
        c.on_delivery(&m, SimTime::from_secs(10), true, &tracer);
        c.on_finish(&HashSet::new(), &tracer);
    }

    #[test]
    #[should_panic(expected = "past capacity")]
    fn buffer_overflow_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let p = DeviceProbe {
            buffered: 8,
            capacity: 7,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p, &tracer);
    }

    #[test]
    #[should_panic(expected = "energy decreased")]
    fn energy_regression_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let p1 = DeviceProbe {
            energy_uah: 100.0,
            ..probe()
        };
        let p2 = DeviceProbe {
            energy_uah: 50.0,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p1, &tracer);
        c.check_device(SimTime::from_secs(1), 0, &p2, &tracer);
    }

    #[test]
    #[should_panic(expected = "battery recharged")]
    fn battery_recharge_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let p1 = DeviceProbe {
            battery_remaining_uah: Some(10.0),
            ..probe()
        };
        let p2 = DeviceProbe {
            battery_remaining_uah: Some(20.0),
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p1, &tracer);
        c.check_device(SimTime::from_secs(1), 0, &p2, &tracer);
    }

    #[test]
    #[should_panic(expected = "illegal RRC transition")]
    fn idle_to_fach_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let p1 = DeviceProbe {
            rrc: RrcState::Idle,
            ..probe()
        };
        let p2 = DeviceProbe {
            rrc: RrcState::CellFach,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p1, &tracer);
        c.check_device(SimTime::from_secs(1), 0, &p2, &tracer);
    }

    #[test]
    #[should_panic(expected = "offline while its cellular fallback exists")]
    fn silent_lapse_is_flagged() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let p = DeviceProbe {
            online: false,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p, &tracer);
    }

    #[test]
    fn exempt_window_allows_offline_and_dead_devices_too() {
        let mut c = InvariantChecker::new(true);
        let tracer = Tracer::with_capacity(0);
        let outage = DeviceProbe {
            online: false,
            offline_exempt: true,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &outage, &tracer);
        let dead = DeviceProbe {
            alive: false,
            online: false,
            ..probe()
        };
        c.check_device(SimTime::from_secs(1), 1, &dead, &tracer);
    }

    #[test]
    fn disabled_checker_ignores_everything() {
        let mut c = InvariantChecker::new(false);
        let tracer = Tracer::with_capacity(0);
        assert!(!c.enabled());
        let p = DeviceProbe {
            buffered: 999,
            capacity: 1,
            online: false,
            ..probe()
        };
        c.check_device(SimTime::ZERO, 0, &p, &tracer);
        c.on_finish(&HashSet::new(), &tracer);
    }
}
