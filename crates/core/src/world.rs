//! The event-driven scenario world: the full framework under mobility,
//! multiple apps, link loss, relay death and cellular fallbacks.
//!
//! The [`experiment`](crate::experiment) module reproduces the paper's
//! controlled bench; this module is the deployment-shaped harness the
//! examples and integration tests use. It wires every substrate crate
//! together:
//!
//! * devices carry [`HeartbeatSchedule`]s for their registered apps
//!   ([`MessageMonitor`]), a [`CellularRadio`], an [`EnergyMeter`] and
//!   optionally a finite [`Battery`];
//! * UEs discover and match relays through the [`D2dDetector`] using live
//!   positions from the [`Field`];
//! * relays run Algorithm 1 ([`MessageScheduler`]) anchored to their own
//!   heartbeat periods and ship aggregated batches over one RRC
//!   connection per period;
//! * the delivery-feedback / cellular-fallback loop
//!   ([`FeedbackTracker`]) rescues heartbeats lost to link failures,
//!   relay rejection or relay battery death;
//! * an [`ImServer`] per app checks the user-visible invariant: presence
//!   never lapses.

use std::collections::{BTreeMap, HashSet};

use hbr_apps::{
    AppId, AppProfile, Heartbeat, HeartbeatSchedule, ImServer, MessageId, MessageIdGen,
};
use hbr_cellular::{BaseStation, CellularRadio, RadioActivity, RrcState};
use hbr_d2d::D2dLink;
use hbr_energy::{Battery, EnergyMeter, MicroAmpHours, PhaseGroup, Segment};
use hbr_mobility::{Field, Mobility, PathLoss};
use hbr_sim::fault::{fault_stream_seed, retry_stream_seed, FaultKind, FaultPlan};
use hbr_sim::telemetry::{
    EventRecord, MetricsSnapshot, Telemetry, TelemetryEvent, DWELL_BUCKETS, SIZE_BUCKETS,
};
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime, Simulation, TraceEntry, Tracer};

use crate::config::{FrameworkConfig, RadioStack};
use crate::delivery::{BackoffPolicy, DeliveryLedger, RetryReason};
use crate::detector::{D2dDetector, MatchDecision, RelayAdvert};
use crate::feedback::FeedbackTracker;
use crate::incentive::RewardLedger;
use crate::invariant::{self, DeviceProbe, InvariantChecker};
use crate::monitor::MessageMonitor;
use crate::scheduler::{FlushReason, MessageScheduler, ScheduleDecision};

/// A device's role in the framework (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Collects heartbeats from UEs and forwards them in aggregate.
    Relay,
    /// Hands its heartbeats to a nearby relay.
    Ue,
}

/// How devices transport their heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The paper's framework: D2D forwarding with scheduling + fallback.
    D2dFramework,
    /// The unmodified baseline: every heartbeat straight over cellular.
    OriginalCellular,
}

/// Blueprint for one device in a scenario.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Relay or UE.
    pub role: Role,
    /// The IM apps installed (each contributes a heartbeat schedule).
    pub apps: Vec<AppProfile>,
    /// How the device moves.
    pub mobility: Mobility,
    /// Battery capacity in mAh; [`None`] = unlimited (mains powered).
    pub battery_mah: Option<f64>,
}

/// Full description of a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Framework tunables.
    pub framework: FrameworkConfig,
    /// Radio models.
    pub stack: RadioStack,
    /// RSSI channel for discovery.
    pub channel: PathLoss,
    /// Transport mode (framework vs baseline).
    pub mode: Mode,
    /// Wall-clock length of the scenario.
    pub duration: SimDuration,
    /// Seed for every stochastic choice.
    pub seed: u64,
    /// Mean interval between mobile-terminated pushes per session
    /// ([`None`] disables the downlink workload). Pushes are what the
    /// always-online machinery exists for: the server only pages sessions
    /// it believes are online, so presence lapses turn into missed
    /// pushes.
    pub push_interval: Option<SimDuration>,
    /// Keep this many execution-trace entries for debugging (0 = off).
    pub trace_capacity: usize,
    /// Bill the D2D group keep-alive current for the whole time an
    /// attachment stays open (honest accounting; the paper's
    /// compressed-time bench omits it — see `ablation_idle`).
    pub bill_d2d_idle: bool,
    /// Injected fault schedule (empty = a clean run). Faults execute
    /// deterministically; their randomness comes from a dedicated
    /// splitmix64-derived stream (see [`hbr_sim::fault`]).
    pub faults: FaultPlan,
    /// Run the [`InvariantChecker`] after every engine step. [`None`]
    /// (the default) resolves via [`invariant::default_enabled`]: the
    /// `HBR_CHECK_INVARIANTS` env var if set, else on in debug builds
    /// (every workspace test) and off in release experiment binaries.
    pub check_invariants: Option<bool>,
    /// Record metrics and typed events into the report (see
    /// [`hbr_sim::telemetry`]). Off by default: disabled channels make
    /// every record call a no-op, and instrumentation is pure
    /// observation either way (no RNG draws, no behaviour change).
    pub telemetry: bool,
    /// Run the reliable-delivery layer (see [`crate::delivery`]):
    /// per-device ledger, deadline-aware D2D retransmission with
    /// bounded backoff, relay handover, and re-queue of a departing
    /// relay's batch. Off by default — legacy one-shot feedback/fallback
    /// behaviour is byte-identical then, and the dedicated retry RNG
    /// stream is never drawn, so golden traces stay pinned.
    pub reliable_delivery: bool,
    /// Which crowd-engine shard cell this scenario is, if any. Pure
    /// provenance: it is stamped (with the seed) into invariant-
    /// violation panics so a sharded CI failure names the cell whose
    /// derived seed reproduces it in isolation.
    pub cell: Option<usize>,
    /// Deliberate misbehaviour for mutation smoke tests; never set this
    /// outside tests that prove the checker catches a broken scheduler.
    #[doc(hidden)]
    pub mutation: Option<ChaosMutation>,
    /// The devices, in [`DeviceId`] order.
    pub devices: Vec<DeviceSpec>,
}

/// A deliberately broken implementation detail, injectable from tests to
/// prove the invariant checker is live (mutation testing for the
/// harness itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMutation {
    /// Ignore Algorithm 1's capacity flush: the relay keeps pending past
    /// `M`, so the scheduler-bound invariant must trip.
    IgnoreCapacityFlush,
}

impl ScenarioConfig {
    /// A convenience starting point: framework mode, default stack, no
    /// devices yet.
    pub fn new(duration: SimDuration, seed: u64) -> Self {
        ScenarioConfig {
            framework: FrameworkConfig::default(),
            stack: RadioStack::default(),
            channel: PathLoss::indoor_wifi(),
            mode: Mode::D2dFramework,
            duration,
            seed,
            push_interval: None,
            trace_capacity: 0,
            bill_d2d_idle: true,
            faults: FaultPlan::new(),
            check_invariants: None,
            telemetry: false,
            reliable_delivery: false,
            cell: None,
            mutation: None,
            devices: Vec::new(),
        }
    }

    /// Adds a device, returning its id.
    pub fn add_device(&mut self, spec: DeviceSpec) -> DeviceId {
        let id = DeviceId::new(self.devices.len() as u32);
        self.devices.push(spec);
        id
    }
}

/// Per-device results.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// The device.
    pub device: DeviceId,
    /// Its role.
    pub role: Role,
    /// Total charge drawn, µAh.
    pub energy_uah: f64,
    /// Charge by paper-level phase group.
    pub energy_by_group: Vec<(PhaseGroup, f64)>,
    /// RRC connections this device established.
    pub rrc_connections: u64,
    /// Heartbeats this device forwarded over D2D (UE) or collected
    /// (relay).
    pub forwards: u64,
    /// Cellular fallbacks this device performed.
    pub fallbacks: u64,
    /// Operator credits earned (relays).
    pub rewards: u64,
    /// Seconds this device's sessions spent offline.
    pub offline_secs: f64,
    /// Mean forwarded-heartbeats per flush (relays only).
    pub mean_batch_size: Option<f64>,
    /// Mean queueing delay a forwarded heartbeat spent in the relay's
    /// buffer, seconds (relays only).
    pub mean_queueing_delay_secs: Option<f64>,
    /// `true` if the battery ran out during the scenario.
    pub battery_depleted: bool,
}

/// Aggregate counters a cell reports at an epoch barrier — the
/// cross-shard "message" of the sharded crowd engine. Folding the
/// pulses of every cell (in cell order) gives the fleet-level digest,
/// independent of how cells are spread over worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochPulse {
    /// D2D forwards performed so far.
    pub forwards: u64,
    /// Cellular fallbacks performed so far.
    pub fallbacks: u64,
    /// Heartbeats currently queued behind a cellular outage.
    pub outage_queued: u64,
    /// Layer-3 messages at this cell's base station so far.
    pub l3: u64,
    /// RRC connections at this cell's base station so far.
    pub rrc: u64,
    /// Heartbeats the delivery ledger has seen server-acked so far
    /// (0 when reliable delivery is off).
    pub delivered: u64,
    /// D2D retransmissions the delivery ledger has scheduled so far.
    pub retries: u64,
}

impl EpochPulse {
    /// Accumulates another cell's pulse into this one.
    pub fn absorb(&mut self, other: &EpochPulse) {
        self.forwards += other.forwards;
        self.fallbacks += other.fallbacks;
        self.outage_queued += other.outage_queued;
        self.l3 += other.l3;
        self.rrc += other.rrc;
        self.delivered += other.delivered;
        self.retries += other.retries;
    }
}

/// Aggregate scenario results.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Per-device rows, in device order.
    pub devices: Vec<DeviceReport>,
    /// Total layer-3 messages at the base station.
    pub total_l3: u64,
    /// Total RRC connections at the base station.
    pub total_rrc: u64,
    /// Heartbeats accepted by the IM servers.
    pub delivered: u64,
    /// Heartbeats that arrived too late.
    pub rejected_expired: u64,
    /// Duplicate deliveries (relay + fallback races).
    pub duplicates: u64,
    /// Total seconds any session spent offline.
    pub offline_secs: f64,
    /// Mobile-terminated pushes delivered (session was online).
    pub pushes_delivered: u64,
    /// Pushes the server could not page out (session looked offline).
    pub pushes_missed: u64,
    /// Total system energy, µAh.
    pub total_energy_uah: f64,
    /// Execution trace (empty unless [`ScenarioConfig::trace_capacity`]
    /// was set).
    pub trace: Vec<TraceEntry>,
    /// Trace entries evicted because the ring filled (0 = the trace is
    /// complete).
    pub trace_dropped: u64,
    /// Deterministic metrics snapshot (empty unless
    /// [`ScenarioConfig::telemetry`] was on).
    pub metrics: MetricsSnapshot,
    /// Typed telemetry events, time-sorted (empty unless telemetry was
    /// on).
    pub events: Vec<EventRecord>,
    /// Reliable-delivery summary ([`None`] unless
    /// [`ScenarioConfig::reliable_delivery`] was on).
    pub delivery: Option<DeliveryReport>,
}

/// End-to-end delivery accounting a reliable-delivery run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeliveryReport {
    /// Heartbeats emitted by alive devices.
    pub generated: u64,
    /// Ledger entries retired by a server accept (exactly-once).
    pub delivered: u64,
    /// Ledger entries retired by a server expired-reject (accounted).
    pub expired: u64,
    /// Ledger entries that died with their depleted source.
    pub dropped_dead: u64,
    /// Entries still in flight at the horizon (buffered/queued).
    pub in_flight: u64,
    /// D2D retransmissions scheduled.
    pub retries: u64,
    /// Relay handovers performed.
    pub handovers: u64,
    /// Heartbeats re-queued from a departing relay's batch.
    pub requeued: u64,
    /// Seconds the servers considered a live client dead (the SLO's
    /// user-visible damage term).
    pub false_dead_secs: f64,
}

impl DeliveryReport {
    /// Delivered fraction of the heartbeats that were still accountable
    /// at the horizon (generated minus died-with-device minus still in
    /// flight) — the delivery-SLO headline number.
    pub fn ratio(&self) -> f64 {
        let accountable = self
            .generated
            .saturating_sub(self.dropped_dead)
            .saturating_sub(self.in_flight);
        if accountable == 0 {
            1.0
        } else {
            self.delivered as f64 / accountable as f64
        }
    }

    /// Component-wise sum, for merging per-cell reports.
    pub fn absorb(&mut self, other: &DeliveryReport) {
        self.generated += other.generated;
        self.delivered += other.delivered;
        self.expired += other.expired;
        self.dropped_dead += other.dropped_dead;
        self.in_flight += other.in_flight;
        self.retries += other.retries;
        self.handovers += other.handovers;
        self.requeued += other.requeued;
        self.false_dead_secs += other.false_dead_secs;
    }
}

impl ScenarioReport {
    /// Energy of all devices with the given role, µAh.
    pub fn energy_for_role(&self, role: Role) -> f64 {
        self.devices
            .iter()
            .filter(|d| d.role == role)
            .map(|d| d.energy_uah)
            .sum()
    }

    /// Renders the operator-console view of the run: aggregate counters
    /// plus the per-relay ledger (the §III-D UI's information, as text).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "layer-3 messages : {}", self.total_l3);
        let _ = writeln!(out, "RRC connections  : {}", self.total_rrc);
        let _ = writeln!(out, "system energy    : {:.0} µAh", self.total_energy_uah);
        let _ = writeln!(
            out,
            "heartbeats       : {} delivered, {} expired, {} duplicates",
            self.delivered, self.rejected_expired, self.duplicates
        );
        if let Some(d) = &self.delivery {
            let _ = writeln!(
                out,
                "delivery         : {}/{} acked ({:.4}), {} expired, {} dead, {} in flight",
                d.delivered,
                d.generated,
                d.ratio(),
                d.expired,
                d.dropped_dead,
                d.in_flight
            );
            let _ = writeln!(
                out,
                "reliability      : {} retries, {} handovers, {} requeued, {:.0} s false-dead",
                d.retries, d.handovers, d.requeued, d.false_dead_secs
            );
        }
        if self.pushes_delivered + self.pushes_missed > 0 {
            let _ = writeln!(
                out,
                "pushes           : {} delivered, {} missed",
                self.pushes_delivered, self.pushes_missed
            );
        }
        let _ = writeln!(out, "offline          : {:.0} s", self.offline_secs);
        if !self.trace.is_empty() || self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "trace            : {} entries kept, {} evicted",
                self.trace.len(),
                self.trace_dropped
            );
        }
        for dev in self.devices.iter().filter(|d| d.role == Role::Relay) {
            let _ = writeln!(
                out,
                "relay {:>7}    : {:>5} collected, {:>5} credits, {:>9.0} µAh{}",
                dev.device.to_string(),
                dev.forwards,
                dev.rewards,
                dev.energy_uah,
                if dev.battery_depleted {
                    "  [battery dead]"
                } else {
                    ""
                }
            );
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A device's app heartbeat timer fired.
    HeartbeatDue { device: usize, app_idx: usize },
    /// A relay's flush deadline (generation guards stale events).
    FlushDeadline { device: usize, generation: u64 },
    /// A UE's feedback-timeout sweep.
    FeedbackSweep { device: usize },
    /// A UE's D2D link finished establishing; forward the pending batch.
    LinkReady { device: usize },
    /// The IM server has a mobile-terminated push for this session.
    PushDue { device: usize, app_idx: usize },
    /// The indexed entry of the configured [`FaultPlan`] fires.
    FaultDue { index: usize },
    /// A cellular outage window may be over; drain the queue.
    OutageOver,
    /// A departed relay returns to service.
    RelayRejoin { device: usize },
    /// A reliable-delivery backoff timer fired; retry what is due.
    /// Only ever scheduled when [`ScenarioConfig::reliable_delivery`]
    /// is on, so legacy runs see an unchanged event stream.
    DeliveryRetry { device: usize },
}

struct Device {
    id: DeviceId,
    role: Role,
    schedules: Vec<HeartbeatSchedule>,
    monitor: MessageMonitor,
    radio: CellularRadio,
    meter: EnergyMeter,
    battery: Option<Battery>,
    rng: SimRng,
    // Relay state.
    scheduler: Option<MessageScheduler>,
    own_pending: Vec<Heartbeat>,
    deadline_generation: u64,
    collected_total: u64,
    // UE state.
    attached_to: Option<usize>,
    link: Option<D2dLink>,
    /// When the current attachment's link became usable (idle billing).
    attached_since: Option<SimTime>,
    /// Relay-side: members currently attached, and since when the group
    /// has been non-empty (idle billing).
    member_count: usize,
    group_idle_since: Option<SimTime>,
    feedback: FeedbackTracker,
    pending_until_ready: Vec<Heartbeat>,
    /// Reliable-delivery ledger (empty and untouched when the layer is
    /// off).
    delivery: DeliveryLedger,
    forwards: u64,
    fallbacks: u64,
    // Fault state.
    /// Relay has left the system (fault-injected churn).
    departed: bool,
    /// The device's D2D radio is unusable until this instant.
    d2d_down_until: SimTime,
    /// Link transfers carry an interference penalty until this instant.
    degraded_until: SimTime,
    /// The penalty applied while degraded.
    degrade_loss: f64,
    /// Forwarded payloads are at risk until this instant.
    payload_loss_until: SimTime,
    /// Per-transfer loss probability while the payload window lasts.
    payload_loss_p: f64,
}

impl Device {
    fn is_alive(&self) -> bool {
        self.battery.map(|b| !b.is_depleted()).unwrap_or(true)
    }
}

/// Runs one scenario to completion and produces its report.
///
/// # Examples
///
/// ```
/// use hbr_apps::AppProfile;
/// use hbr_core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
/// use hbr_mobility::{Mobility, Position};
/// use hbr_sim::SimDuration;
///
/// let mut config = ScenarioConfig::new(SimDuration::from_secs(3600), 42);
/// config.add_device(DeviceSpec {
///     role: Role::Relay,
///     apps: vec![AppProfile::wechat()],
///     mobility: Mobility::stationary(Position::new(0.0, 0.0)),
///     battery_mah: None,
/// });
/// config.add_device(DeviceSpec {
///     role: Role::Ue,
///     apps: vec![AppProfile::wechat()],
///     mobility: Mobility::stationary(Position::new(1.0, 0.0)),
///     battery_mah: None,
/// });
///
/// let report = Scenario::new(config).run();
/// assert!(report.delivered > 0);
/// ```
pub struct Scenario {
    config: ScenarioConfig,
    sim: Simulation<Event>,
    devices: Vec<Device>,
    field: Field,
    detector: D2dDetector,
    servers: BTreeMap<AppId, ImServer>,
    bs: BaseStation,
    ledger: RewardLedger,
    ids: MessageIdGen,
    rng: SimRng,
    cellular_uah_per_hb: f64,
    pushes_delivered: u64,
    pushes_missed: u64,
    tracer: Tracer,
    // Fault machinery (tentpole of the chaos harness).
    /// Dedicated randomness for fault execution, seeded independently of
    /// every other stream so clean runs are byte-identical to pre-fault
    /// builds.
    fault_rng: SimRng,
    /// The cellular uplink is down for everyone until this instant.
    outage_until: SimTime,
    /// The no-silent-lapse invariant is suspended until this instant
    /// (outage end + longest expiration: sessions legally re-converge).
    outage_grace_until: SimTime,
    /// Discovery is dark for everyone until this instant.
    blackout_until: SimTime,
    /// Heartbeats awaiting the end of a cellular outage.
    outage_queue: Vec<(usize, Heartbeat)>,
    /// The longest app expiration in the scenario (grace sizing).
    max_expiration: SimDuration,
    /// Dedicated randomness for retransmission backoff jitter, seeded
    /// independently of every other stream and drawn only when a retry
    /// is actually scheduled — clean runs consume zero draws.
    retry_rng: SimRng,
    /// Backoff schedule for D2D retransmissions.
    backoff: BackoffPolicy,
    /// Heartbeats emitted by alive devices (reliable-delivery ratio
    /// denominator; maintained unconditionally, surfaced only when the
    /// layer is on).
    generated: u64,
    /// Heartbeats re-queued from departing relays' batches.
    requeued: u64,
    checker: InvariantChecker,
    /// Metrics + event channels (both disabled unless configured): pure
    /// observation, so enabling them never perturbs a seeded run.
    telemetry: Telemetry,
}

impl Scenario {
    /// Builds the world from a config.
    ///
    /// # Panics
    ///
    /// Panics if the config has no devices or an invalid
    /// [`FrameworkConfig`].
    pub fn new(config: ScenarioConfig) -> Self {
        assert!(!config.devices.is_empty(), "scenario needs devices");
        config.framework.validate();
        let mut rng = SimRng::seed_from(config.seed);
        let mut field = Field::new();
        let mut servers: BTreeMap<AppId, ImServer> = BTreeMap::new();
        let mut devices = Vec::with_capacity(config.devices.len());

        for (i, spec) in config.devices.iter().enumerate() {
            let id = DeviceId::new(i as u32);
            field.insert(id, spec.mobility.clone());
            let mut monitor = MessageMonitor::new();
            let mut schedules = Vec::new();
            for app in &spec.apps {
                monitor.register(app.clone());
                schedules.push(HeartbeatSchedule::new(id, app.clone(), 0.01));
                servers
                    .entry(app.id)
                    .or_insert_with(|| ImServer::new(app.expiration));
            }
            let relay_period = spec
                .apps
                .first()
                .map(|a| a.heartbeat_period)
                .unwrap_or(SimDuration::from_secs(270));
            let scheduler = (spec.role == Role::Relay).then(|| {
                let mut scheduler = MessageScheduler::new(
                    config.framework.relay_capacity,
                    relay_period,
                    SimDuration::from_secs(5),
                    SimTime::ZERO,
                );
                if !config.framework.expiry_guard {
                    scheduler = scheduler.without_expiry_guard();
                }
                // Periods are anchored at the relay's own heartbeats
                // (Fig. 3); collection opens when the first one fires.
                let _ = scheduler.take_batch();
                scheduler
            });
            devices.push(Device {
                id,
                role: spec.role,
                schedules,
                monitor,
                radio: CellularRadio::new(config.stack.cellular.clone()),
                // Aggregate-only: the report consumes totals and
                // group breakdowns, never raw segments, so the meter
                // can stay O(1) per device instead of growing with
                // every radio burst — what lets a 1M-phone cell fit.
                meter: EnergyMeter::compact(),
                battery: spec.battery_mah.map(Battery::with_capacity_mah),
                rng: rng.fork(i as u64),
                scheduler,
                own_pending: Vec::new(),
                deadline_generation: 0,
                collected_total: 0,
                attached_to: None,
                link: None,
                attached_since: None,
                member_count: 0,
                group_idle_since: None,
                feedback: FeedbackTracker::new(config.framework.feedback_timeout),
                pending_until_ready: Vec::new(),
                delivery: DeliveryLedger::new(),
                forwards: 0,
                fallbacks: 0,
                departed: false,
                d2d_down_until: SimTime::ZERO,
                degraded_until: SimTime::ZERO,
                degrade_loss: 0.0,
                payload_loss_until: SimTime::ZERO,
                payload_loss_p: 0.0,
            });
        }

        let detector = D2dDetector::new(
            config.framework.clone(),
            config.stack.d2d.clone(),
            config.channel,
        );
        let cellular_uah_per_hb = config.stack.cellular.full_cycle_charge_uah(74);
        let reward = config.framework.reward_per_heartbeat;
        let trace_capacity = config.trace_capacity;
        let fault_rng = SimRng::seed_from(fault_stream_seed(config.seed));
        let retry_rng = SimRng::seed_from(retry_stream_seed(config.seed));
        let max_expiration = config
            .devices
            .iter()
            .flat_map(|spec| spec.apps.iter())
            .map(|app| app.expiration)
            .max()
            .unwrap_or(SimDuration::from_secs(810));
        let check = config
            .check_invariants
            .unwrap_or_else(invariant::default_enabled);
        let mut checker = InvariantChecker::new(check);
        checker.set_context(config.seed, config.cell);
        let telemetry = if config.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };

        let mut world = Scenario {
            config,
            sim: Simulation::new(),
            devices,
            field,
            detector,
            servers,
            // Counters only — the report reads total_l3/rrc, never the
            // per-message capture log (exp_fig14 builds its own).
            bs: BaseStation::compact(1e9),
            ledger: RewardLedger::new(reward),
            ids: MessageIdGen::new(),
            rng,
            cellular_uah_per_hb,
            pushes_delivered: 0,
            pushes_missed: 0,
            tracer: Tracer::with_capacity(trace_capacity),
            fault_rng,
            outage_until: SimTime::ZERO,
            outage_grace_until: SimTime::ZERO,
            blackout_until: SimTime::ZERO,
            outage_queue: Vec::new(),
            max_expiration,
            retry_rng,
            backoff: BackoffPolicy::default(),
            generated: 0,
            requeued: 0,
            checker,
            telemetry,
        };

        for (index, fault) in world.config.faults.events().iter().enumerate() {
            world.sim.schedule_at(fault.at, Event::FaultDue { index });
        }

        // Register sessions as online at t = 0 and schedule first beats.
        for i in 0..world.devices.len() {
            for (app_idx, schedule) in world.devices[i].schedules.iter().enumerate() {
                let app = schedule.app().id;
                world
                    .servers
                    .get_mut(&app)
                    .expect("server exists for registered app")
                    .register(world.devices[i].id, app, SimTime::ZERO);
                world.sim.schedule_at(
                    schedule.peek_next(),
                    Event::HeartbeatDue { device: i, app_idx },
                );
                if let Some(mean) = world.config.push_interval {
                    let first = SimTime::ZERO + world.rng.exp_duration(mean);
                    world
                        .sim
                        .schedule_at(first, Event::PushDue { device: i, app_idx });
                }
            }
        }
        world
    }

    /// Runs to the configured horizon and reports.
    pub fn run(mut self) -> ScenarioReport {
        let end = SimTime::ZERO + self.config.duration;
        self.run_until(end);
        self.finish(end)
    }

    /// Advances the event loop to `until` (inclusive), leaving the
    /// scenario resumable. Driving a scenario through a sequence of
    /// `run_until` calls with increasing limits fires exactly the same
    /// events as one call at the final limit — the sharded crowd engine
    /// relies on this to step its cells in epoch lockstep.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(fired) = self.sim.pop_until(until) {
            self.handle(fired.time, fired.event);
            if self.checker.enabled() {
                self.check_invariants(fired.time);
            }
        }
    }

    /// Closes out a scenario previously stepped via
    /// [`Scenario::run_until`] and reports. Equivalent to the tail of
    /// [`Scenario::run`]; the caller must have advanced the clock to the
    /// configured horizon first.
    pub fn complete(self) -> ScenarioReport {
        let end = SimTime::ZERO + self.config.duration;
        self.finish(end)
    }

    /// A cheap aggregate probe of the scenario mid-run — what the
    /// sharded engine's cells exchange at epoch barriers to build the
    /// fleet-level pulse. Pure observation: no RNG draws, no state
    /// changes.
    pub fn pulse(&self) -> EpochPulse {
        EpochPulse {
            forwards: self.devices.iter().map(|d| d.forwards).sum(),
            fallbacks: self.devices.iter().map(|d| d.fallbacks).sum(),
            outage_queued: self.outage_queue.len() as u64,
            l3: self.bs.total_l3(),
            rrc: self.bs.rrc_connections(),
            delivered: self
                .devices
                .iter()
                .map(|d| d.delivery.stats().delivered)
                .sum(),
            retries: self
                .devices
                .iter()
                .map(|d| d.delivery.stats().retries)
                .sum(),
        }
    }

    /// The virtual clock: the time of the last event handled (or zero
    /// before any fired). Conformance harnesses interleave injections
    /// against this.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Injects a fault into a *running* scenario — the step-injection
    /// seam the conformance DAG engine uses to race faults against
    /// in-flight protocol activity, instead of declaring the whole
    /// schedule up front in [`ScenarioConfig::faults`].
    ///
    /// The fault behaves exactly as if it had been in the plan from the
    /// start: it draws from the dedicated fault stream, never from the
    /// main RNG.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`Scenario::now`] (the engine cannot
    /// schedule into the past).
    pub fn inject_fault(&mut self, at: SimTime, kind: FaultKind) {
        let index = self.config.faults.append(at, kind);
        self.sim.schedule_at(at, Event::FaultDue { index });
    }

    /// Read-only view of one app's IM server — presence, refresh
    /// history and dedup counters for mid-run `expect` conditions.
    pub fn server(&self, app: AppId) -> Option<&ImServer> {
        self.servers.get(&app)
    }

    /// The typed telemetry events recorded so far (empty when telemetry
    /// is disabled).
    pub fn events_so_far(&self) -> &[EventRecord] {
        self.telemetry.events.records()
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        self.telemetry.metrics.incr("hbr_engine_steps_total");
        match event {
            Event::HeartbeatDue { device, app_idx } => self.on_heartbeat_due(now, device, app_idx),
            Event::FlushDeadline { device, generation } => {
                if self.devices[device].deadline_generation == generation {
                    // A deadline can outlive the condition that armed it:
                    // a capacity flush empties the buffer without bumping
                    // the generation, so the old event still fires. Forcing
                    // a flush here would fabricate a period-elapsed reason
                    // and record a phantom zero-size batch in the stats —
                    // skip the stale deadline and re-arm from the
                    // scheduler's real next deadline instead.
                    let due = self.devices[device]
                        .scheduler
                        .as_ref()
                        .and_then(|s| s.flush_due(now));
                    match due {
                        Some(reason) => self.flush_relay(now, device, reason),
                        None => {
                            let next = self.devices[device]
                                .scheduler
                                .as_ref()
                                .filter(|s| s.is_collecting())
                                .map(|s| s.next_deadline());
                            if let Some(next) = next {
                                let dev = &mut self.devices[device];
                                dev.deadline_generation += 1;
                                let generation = dev.deadline_generation;
                                self.sim.schedule_at(
                                    next.max(now),
                                    Event::FlushDeadline { device, generation },
                                );
                            }
                        }
                    }
                }
            }
            Event::FeedbackSweep { device } => self.on_feedback_sweep(now, device),
            Event::LinkReady { device } => self.on_link_ready(now, device),
            Event::PushDue { device, app_idx } => self.on_push_due(now, device, app_idx),
            Event::FaultDue { index } => self.on_fault(now, index),
            Event::OutageOver => self.drain_outage_queue(now),
            Event::RelayRejoin { device } => self.on_relay_rejoin(now, device),
            Event::DeliveryRetry { device } => self.on_delivery_retry(now, device),
        }
    }

    /// Whether the reliable-delivery layer is active for this run.
    fn reliable(&self) -> bool {
        self.config.reliable_delivery
    }

    /// Runs the per-step invariant pass: probes every device and feeds
    /// the checker. Pure observation — no RNG draws, no report changes.
    fn check_invariants(&mut self, now: SimTime) {
        for i in 0..self.devices.len() {
            let probe = {
                let dev = &self.devices[i];
                let online = dev.schedules.iter().all(|schedule| {
                    let app = schedule.app().id;
                    self.servers
                        .get(&app)
                        .map(|s| s.is_online(dev.id, app, now))
                        .unwrap_or(true)
                });
                DeviceProbe {
                    device: dev.id,
                    alive: dev.is_alive(),
                    buffered: dev.scheduler.as_ref().map(|s| s.collected()).unwrap_or(0),
                    capacity: dev
                        .scheduler
                        .as_ref()
                        .map(|s| s.capacity())
                        .unwrap_or(usize::MAX),
                    energy_uah: dev.meter.total().as_micro_amp_hours(),
                    battery_remaining_uah: dev.battery.map(|b| b.remaining().as_micro_amp_hours()),
                    rrc: dev.radio.state_at(now),
                    online,
                    offline_exempt: now < self.outage_grace_until,
                }
            };
            self.checker.check_device(now, i, &probe, &self.tracer);
        }
    }

    /// Records a cellular-fallback decision against its cause.
    fn note_fallback(&mut self, now: SimTime, device: usize, cause: &'static str) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .metrics
            .incr(&format!("hbr_fallback_total{{cause=\"{cause}\"}}"));
        self.telemetry.events.record(
            now,
            TelemetryEvent::Fallback {
                device: self.devices[device].id.index(),
                cause,
            },
        );
    }

    /// Feeds a radio's RRC transitions into the metrics (state-dwell
    /// histograms, establish/release counters) and the event stream.
    fn record_radio(&mut self, device: usize, activity: &RadioActivity, new_connections: u32) {
        if !self.telemetry.is_enabled() {
            return;
        }
        if new_connections > 0 {
            self.telemetry
                .metrics
                .add("hbr_rrc_establish_total", new_connections as u64);
        }
        let id = self.devices[device].id.index();
        for t in &activity.transitions {
            self.telemetry.metrics.observe(
                &format!("hbr_rrc_dwell_seconds{{state=\"{}\"}}", t.from.label()),
                DWELL_BUCKETS,
                t.dwell.as_secs_f64(),
            );
            if t.to == RrcState::Idle {
                self.telemetry.metrics.incr("hbr_rrc_release_total");
            }
            self.telemetry.events.record(
                t.at,
                TelemetryEvent::RrcTransition {
                    device: id,
                    from: t.from.label(),
                    to: t.to.label(),
                    dwell_secs: t.dwell.as_secs_f64(),
                },
            );
        }
    }

    /// Applies the indexed [`FaultPlan`] entry.
    fn on_fault(&mut self, now: SimTime, index: usize) {
        let fault = self.config.faults.events()[index];
        if self.telemetry.is_enabled() {
            self.telemetry.metrics.incr(&format!(
                "hbr_faults_injected_total{{kind=\"{}\"}}",
                fault.kind.label()
            ));
            self.telemetry.events.record(
                now,
                TelemetryEvent::FaultInjected {
                    index,
                    kind: fault.kind.label(),
                    device: fault.kind.device().map(|d| d.index()),
                },
            );
        }
        match fault.kind {
            FaultKind::LinkDrop {
                device,
                d2d_down_for,
            } => {
                let idx = device.index() as usize;
                self.tracer.record(
                    now,
                    "fault",
                    format!("{device} D2D radio down for {d2d_down_for}"),
                );
                let until = now + d2d_down_for;
                let dev = &mut self.devices[idx];
                dev.d2d_down_until = dev.d2d_down_until.max(until);
                match self.devices[idx].role {
                    Role::Ue => self.drop_ue_link(now, idx),
                    Role::Relay => self.detach_all_members(now, idx),
                }
            }
            FaultKind::LinkDegrade {
                device,
                extra_loss,
                duration,
            } => {
                let idx = device.index() as usize;
                self.tracer.record(
                    now,
                    "fault",
                    format!("{device} link degrades (+{extra_loss:.2} loss) for {duration}"),
                );
                let dev = &mut self.devices[idx];
                dev.degraded_until = dev.degraded_until.max(now + duration);
                dev.degrade_loss = extra_loss.clamp(0.0, 1.0);
            }
            FaultKind::RelayDeparture {
                device,
                rejoin_after,
            } => {
                let idx = device.index() as usize;
                if self.devices[idx].role != Role::Relay || self.devices[idx].departed {
                    return;
                }
                self.tracer
                    .record(now, "fault", format!("relay {device} departs"));
                self.devices[idx].departed = true;
                self.detach_all_members(now, idx);
                // Its collected batch leaves with it; the sources'
                // feedback timers rescue those heartbeats (§III-A).
                let dropped = self.devices[idx]
                    .scheduler
                    .as_mut()
                    .expect("relay has a scheduler")
                    .take_batch();
                if !dropped.is_empty() {
                    self.tracer.record(
                        now,
                        "fault",
                        format!("{} buffered heartbeats leave with {device}", dropped.len()),
                    );
                }
                if self.reliable() {
                    // Reliable delivery does not discard the batch: each
                    // heartbeat is re-queued to its source for a
                    // backed-off retry that avoids the departed relay.
                    for hb in dropped {
                        let src = hb.source.index() as usize;
                        // The feedback deadline armed at forward time is
                        // now stale; retract it so the sweep cannot
                        // double-rescue what this path re-sends.
                        self.devices[src].feedback.retract([hb.id]);
                        if !self.devices[src].is_alive() {
                            self.checker.on_dropped_dead(&hb);
                            self.devices[src].delivery.dropped_dead(hb.id);
                            continue;
                        }
                        self.requeued += 1;
                        self.recover(now, src, hb, RetryReason::RelayDeparted, Some(idx));
                    }
                }
                // The departed phone still keeps its *own* presence alive
                // over its cellular radio.
                let own = std::mem::take(&mut self.devices[idx].own_pending);
                for hb in own {
                    self.send_cellular(now, idx, hb);
                }
                if let Some(after) = rejoin_after {
                    self.sim
                        .schedule_at(now + after, Event::RelayRejoin { device: idx });
                }
            }
            FaultKind::DiscoveryBlackout { duration } => {
                self.tracer
                    .record(now, "fault", format!("discovery blackout for {duration}"));
                self.blackout_until = self.blackout_until.max(now + duration);
            }
            FaultKind::CellularOutage { duration } => {
                self.tracer
                    .record(now, "fault", format!("cellular outage for {duration}"));
                self.outage_until = self.outage_until.max(now + duration);
                self.outage_grace_until = self
                    .outage_grace_until
                    .max(self.outage_until + self.max_expiration);
                self.sim.schedule_at(self.outage_until, Event::OutageOver);
            }
            FaultKind::PayloadLoss {
                device,
                probability,
                duration,
            } => {
                let idx = device.index() as usize;
                self.tracer.record(
                    now,
                    "fault",
                    format!("{device} payloads at {probability:.2} risk for {duration}"),
                );
                let dev = &mut self.devices[idx];
                dev.payload_loss_until = dev.payload_loss_until.max(now + duration);
                dev.payload_loss_p = probability.clamp(0.0, 1.0);
            }
        }
    }

    /// Tears down a UE's attachment (fault path) and reroutes anything
    /// queued behind the link to cellular.
    fn drop_ue_link(&mut self, now: SimTime, device: usize) {
        if self.devices[device].attached_to.is_some() || self.devices[device].link.is_some() {
            self.detach_ue(device, now);
        }
        let pending = std::mem::take(&mut self.devices[device].pending_until_ready);
        for hb in pending {
            self.send_cellular(now, device, hb);
        }
    }

    /// Drops every member currently attached to a relay.
    fn detach_all_members(&mut self, now: SimTime, relay_idx: usize) {
        let members: Vec<usize> = (0..self.devices.len())
            .filter(|&i| self.devices[i].attached_to == Some(relay_idx))
            .collect();
        for member in members {
            self.drop_ue_link(now, member);
        }
    }

    fn on_relay_rejoin(&mut self, now: SimTime, device: usize) {
        if !self.devices[device].departed {
            return;
        }
        self.devices[device].departed = false;
        self.tracer.record(
            now,
            "fault",
            format!("relay {} rejoins", self.devices[device].id),
        );
        // Collection restarts at its next own heartbeat (begin_period).
    }

    /// Delivers everything a cellular outage queued, once it is over.
    fn drain_outage_queue(&mut self, now: SimTime) {
        if now < self.outage_until {
            return; // a longer overlapping outage superseded this one
        }
        let queued = std::mem::take(&mut self.outage_queue);
        if queued.is_empty() {
            return;
        }
        self.tracer.record(
            now,
            "outage",
            format!("cell back: draining {} queued heartbeats", queued.len()),
        );
        for (device, hb) in queued {
            let src = hb.source.index() as usize;
            let relayed = src != device;
            if !self.devices[device].is_alive() {
                // Lost at a device that died during the outage. A relayed
                // copy still has the source's feedback timer as rescue;
                // the device's own heartbeat dies with it.
                if !relayed {
                    self.checker.on_dropped_dead(&hb);
                    if self.reliable() {
                        self.devices[src].delivery.dropped_dead(hb.id);
                    }
                }
                continue;
            }
            if relayed {
                if self.reliable() {
                    self.devices[src].delivery.feedback_confirmed([hb.id]);
                }
                self.devices[src].feedback.on_delivered(vec![hb.id]);
            }
            self.send_cellular(now, device, hb);
        }
    }

    /// The server wants to push a message to this session. It only pages
    /// sessions whose expiration timer is alive; everything else is a
    /// missed push — the user-visible cost of a presence lapse.
    fn on_push_due(&mut self, now: SimTime, device: usize, app_idx: usize) {
        let mean = self
            .config
            .push_interval
            .expect("push events only exist with an interval");
        let next = now + self.rng.exp_duration(mean);
        self.sim
            .schedule_at(next, Event::PushDue { device, app_idx });

        let app = self.devices[device].schedules[app_idx].app().id;
        let id = self.devices[device].id;
        let online = self
            .servers
            .get(&app)
            .map(|s| s.is_online(id, app, now))
            .unwrap_or(false);
        if !online || !self.devices[device].is_alive() || now < self.outage_until {
            self.pushes_missed += 1;
            return;
        }
        self.pushes_delivered += 1;
        let out = self.devices[device].radio.receive_paged(now, 512);
        self.apply_activity(device, &out.activity.segments);
        self.record_radio(device, &out.activity, out.rrc_connections);
        self.bs
            .record(self.devices[device].id, &out.activity, out.rrc_connections);
    }

    fn on_heartbeat_due(&mut self, now: SimTime, device: usize, app_idx: usize) {
        // Generate the heartbeat and schedule the next one.
        let (hb, next_at) = {
            let dev = &mut self.devices[device];
            let hb = dev.schedules[app_idx].next_heartbeat(&mut self.ids, &mut dev.rng);
            (hb, dev.schedules[app_idx].peek_next())
        };
        self.sim
            .schedule_at(next_at, Event::HeartbeatDue { device, app_idx });

        if !self.devices[device].is_alive() {
            return; // dead devices emit nothing
        }
        self.checker.on_emitted(&hb);
        self.generated += 1;
        if self.reliable() {
            self.devices[device].delivery.track(hb);
        }

        match (self.config.mode, self.devices[device].role) {
            (Mode::OriginalCellular, _) => self.send_cellular(now, device, hb),
            (Mode::D2dFramework, Role::Relay) => self.on_relay_own_heartbeat(now, device, hb),
            (Mode::D2dFramework, Role::Ue) => self.on_ue_heartbeat(now, device, hb),
        }
    }

    /// A relay's own heartbeat anchors its scheduling period (Fig. 3): it
    /// is *delayed* up to `T` and flushed together with the collected
    /// batch.
    fn on_relay_own_heartbeat(&mut self, now: SimTime, device: usize, hb: Heartbeat) {
        if self.devices[device].departed {
            // A departed relay aggregates nothing but still keeps its
            // own presence alive over its cellular radio.
            self.send_cellular(now, device, hb);
            return;
        }
        if !self.devices[device]
            .scheduler
            .as_ref()
            .expect("relay has a scheduler")
            .is_collecting()
            && !self.devices[device].own_pending.is_empty()
        {
            // Shouldn't happen (flush clears own_pending), defensive only.
            self.flush_relay(now, device, FlushReason::PeriodElapsed);
        }
        if !self.devices[device].own_pending.is_empty() {
            // Previous period never flushed (e.g. deadline still ahead but a
            // new own heartbeat arrived due to jitter): flush the old batch
            // first so periods never overlap.
            self.flush_relay(now, device, FlushReason::PeriodElapsed);
        }
        let dev = &mut self.devices[device];
        dev.own_pending.push(hb);
        let scheduler = dev.scheduler.as_mut().expect("relay has a scheduler");
        if !scheduler.is_collecting() {
            scheduler.begin_period(now);
        }
        let deadline = scheduler.next_deadline();
        dev.deadline_generation += 1;
        let generation = dev.deadline_generation;
        self.sim.schedule_at(
            deadline.max(now),
            Event::FlushDeadline { device, generation },
        );
    }

    /// Extra slack a UE requires beyond the relay's aggregation window
    /// before delegating a message (§VII's delay-tolerance constraint).
    const DELEGATION_CUSHION: SimDuration = SimDuration::from_secs(30);

    /// `true` if a message with this much remaining slack may be handed
    /// to a relay with the given aggregation period.
    fn delegation_allowed(&self, slack: SimDuration, relay_period: SimDuration) -> bool {
        !self.config.framework.delegation_slack_check
            || slack >= relay_period + Self::DELEGATION_CUSHION
    }

    fn on_ue_heartbeat(&mut self, now: SimTime, device: usize, hb: Heartbeat) {
        let intercepted = self.devices[device].monitor.intercept(hb);
        let Some(intercepted) = intercepted else {
            self.send_cellular(now, device, hb);
            return;
        };
        let hb = intercepted.heartbeat;

        if now < self.devices[device].d2d_down_until {
            // Fault window: the D2D radio is down; everything rides the
            // cellular fallback until it recovers.
            if self.devices[device].attached_to.is_some() {
                self.detach_ue(device, now);
            }
            self.note_fallback(now, device, "d2d-down");
            self.send_cellular(now, device, hb);
            return;
        }

        // Already attached with a live link?
        if let Some(relay_idx) = self.devices[device].attached_to {
            let relay_period = self.devices[relay_idx]
                .scheduler
                .as_ref()
                .map(|s| s.period())
                .unwrap_or(SimDuration::from_secs(270));
            if !self.delegation_allowed(hb.slack(now), relay_period) {
                // Not delay-tolerant enough for this relay's window: the
                // message takes the direct path; the attachment survives
                // for the device's other, slower classes.
                self.send_cellular(now, device, hb);
                return;
            }
            let link_ready = self.devices[device]
                .link
                .as_ref()
                .map(|l| l.is_ready(now))
                .unwrap_or(false);
            if link_ready && self.devices[relay_idx].is_alive() {
                self.forward_over_link(now, device, relay_idx, hb);
                return;
            }
            // Link establishing: queue behind it.
            if self.devices[device]
                .link
                .as_ref()
                .and_then(|l| l.ready_at())
                .is_some()
            {
                self.devices[device].pending_until_ready.push(hb);
                return;
            }
            // Link died or relay dead: detach and re-match below.
            self.detach_ue(device, now);
        }

        let slack = hb.slack(now);
        self.match_and_forward(now, device, hb, None, slack);
    }

    /// Matches `device` to a relay and forwards `hb`, or falls back to
    /// cellular. `slack` is the delay budget used to filter relay
    /// candidates: the full message slack on a first delivery, the
    /// tighter liveness budget on a reliable-layer redelivery.
    fn match_and_forward(
        &mut self,
        now: SimTime,
        device: usize,
        hb: Heartbeat,
        handover_from: Option<usize>,
        slack: SimDuration,
    ) {
        if now < self.blackout_until {
            // Discovery is dark: no rematching, but the cellular path
            // still carries the heartbeat (existing attachments are
            // unaffected — they skip this function entirely).
            self.note_fallback(now, device, "blackout");
            self.send_cellular(now, device, hb);
            return;
        }
        self.field.advance_to(now, &mut self.rng);
        let Some(ue_pos) = self.field.position(self.devices[device].id) else {
            self.send_cellular(now, device, hb);
            return;
        };

        // Discover devices in radio range through the field's spatial
        // index — O(local density), not a scan over the whole world —
        // then build adverts from the live relays among them whose
        // aggregation window fits the message's slack (the delegation
        // policy). Ascending-id order matches the retired full-scan
        // path, so the detector's RNG draw order (and with it every
        // seeded experiment) is unchanged.
        let mut in_range: Vec<usize> = self
            .detector
            .discover_in_range(&self.field, self.devices[device].id)
            .into_iter()
            .map(|(id, _)| id.index() as usize)
            .collect();
        in_range.sort_unstable();
        // A handover must avoid the relay that just failed this
        // heartbeat. `None` retains everything, so the legacy call sites
        // see an unchanged candidate list and RNG draw order.
        in_range.retain(|&i| Some(i) != handover_from);
        let adverts: Vec<RelayAdvert> = in_range
            .into_iter()
            .map(|i| &self.devices[i])
            .filter(|d| {
                d.role == Role::Relay && d.is_alive() && !d.departed && now >= d.d2d_down_until
            })
            .filter_map(|d| {
                let scheduler = d.scheduler.as_ref()?;
                let position = self.field.position(d.id)?;
                Some((
                    scheduler.period(),
                    RelayAdvert {
                        device: d.id,
                        free_capacity: scheduler.capacity().saturating_sub(scheduler.collected()),
                        go_intent: scheduler.go_intent(),
                        position,
                    },
                ))
            })
            .filter(|(period, _)| {
                !self.config.framework.delegation_slack_check
                    || slack >= *period + Self::DELEGATION_CUSHION
            })
            .map(|(_, advert)| advert)
            .collect();

        // The UE pays a discovery scan whenever it has to (re)match. Only
        // the relay that ends up matched pays its responder cost (the
        // beacon exchange of the pairing, Table III); idle relays answer
        // probe requests from their always-on listen state at negligible
        // marginal cost.
        let scan = self
            .config
            .stack
            .d2d
            .discovery(now, hbr_d2d::D2dRole::Initiator);
        self.apply_activity(device, &scan.segments);

        let expected_forwards = 8;
        let decision = {
            let dev_rng = &mut self.devices[device].rng;
            self.detector.match_relay(
                ue_pos,
                &adverts,
                expected_forwards,
                self.cellular_uah_per_hb,
                dev_rng,
            )
        };

        match decision {
            MatchDecision::UseRelay { relay, .. } => {
                let relay_idx = relay.index() as usize;
                let listen = self
                    .config
                    .stack
                    .d2d
                    .discovery(now, hbr_d2d::D2dRole::Responder);
                self.apply_activity(relay_idx, &listen.segments);
                let conn_start = scan.done_at;
                let ue_conn = self
                    .config
                    .stack
                    .d2d
                    .connection(conn_start, hbr_d2d::D2dRole::Initiator);
                let relay_conn = self
                    .config
                    .stack
                    .d2d
                    .connection(conn_start, hbr_d2d::D2dRole::Responder);
                let ready_at = ue_conn.done_at;
                self.apply_activity(device, &ue_conn.segments);
                self.apply_activity(relay_idx, &relay_conn.segments);
                self.tracer.record(
                    now,
                    "attach",
                    format!(
                        "{} matches relay {}",
                        self.devices[device].id, self.devices[relay_idx].id
                    ),
                );
                if self.telemetry.is_enabled() {
                    self.telemetry.metrics.incr("hbr_d2d_link_setup_total");
                    self.telemetry.events.record(
                        now,
                        TelemetryEvent::RelayMatch {
                            device: self.devices[device].id.index(),
                            relay: self.devices[relay_idx].id.index(),
                        },
                    );
                }
                if let Some(from) = handover_from {
                    self.tracer.record(
                        now,
                        "handover",
                        format!(
                            "{} hands over from {} to {}",
                            self.devices[device].id,
                            self.devices[from].id,
                            self.devices[relay_idx].id
                        ),
                    );
                    if self.telemetry.is_enabled() {
                        self.telemetry.metrics.incr("hbr_delivery_handover_total");
                        self.telemetry.events.record(
                            now,
                            TelemetryEvent::Handover {
                                device: self.devices[device].id.index(),
                                from_relay: self.devices[from].id.index(),
                                to_relay: self.devices[relay_idx].id.index(),
                            },
                        );
                    }
                }
                let dev = &mut self.devices[device];
                dev.attached_to = Some(relay_idx);
                dev.link = Some(D2dLink::establish_pending(
                    self.config.stack.d2d.clone(),
                    ready_at,
                ));
                dev.pending_until_ready.push(hb);
                self.note_attached(device, relay_idx, ready_at);
                if self.telemetry.is_enabled() {
                    let fanin = self.devices[relay_idx].member_count;
                    self.telemetry.metrics.observe(
                        "hbr_relay_group_fanin",
                        SIZE_BUCKETS,
                        fanin as f64,
                    );
                }
                self.sim.schedule_at(ready_at, Event::LinkReady { device });
            }
            MatchDecision::DirectCellular(_) => {
                self.note_fallback(now, device, "no-relay");
                self.send_cellular(now, device, hb);
            }
        }
    }

    fn on_link_ready(&mut self, now: SimTime, device: usize) {
        // A detach-and-rematch between scheduling and firing leaves this
        // event pointing at a *newer* link still in setup; its own
        // LinkReady is queued, so a stale event must not drain early.
        let still_establishing = self.devices[device]
            .link
            .as_ref()
            .and_then(|l| l.ready_at())
            .is_some_and(|at| at > now);
        if still_establishing {
            return;
        }
        let pending = std::mem::take(&mut self.devices[device].pending_until_ready);
        for hb in pending {
            // A failed forward can close the link and detach the UE
            // mid-batch, so re-check the attachment for every message.
            match (
                self.devices[device].attached_to,
                self.devices[device].link.is_some(),
            ) {
                (Some(relay_idx), true) => self.forward_over_link(now, device, relay_idx, hb),
                _ => self.send_cellular(now, device, hb),
            }
        }
    }

    fn forward_over_link(&mut self, now: SimTime, device: usize, relay_idx: usize, hb: Heartbeat) {
        self.field.advance_to(now, &mut self.rng);
        let distance = self
            .field
            .distance(self.devices[device].id, self.devices[relay_idx].id)
            .unwrap_or(f64::INFINITY);
        let relay_alive = self.devices[relay_idx].is_alive();

        let mut outcome = {
            let dev = &mut self.devices[device];
            let link = dev.link.as_mut().expect("attached UE has a link");
            // Interference fault window: raise (or restore) the link's
            // loss model. The healthy path makes the same single RNG
            // draw, so fault windows never shift the main streams.
            if now < dev.degraded_until {
                link.degrade(dev.degrade_loss);
            } else if link.extra_loss() > 0.0 {
                link.clear_degrade();
            }
            let mut outcome = link.transfer(now, hb.size, distance, &mut dev.rng);
            if !relay_alive {
                // A dead relay never receives; the sender still paid.
                outcome.success = false;
                outcome.receiver.segments.clear();
            }
            outcome
        };

        // Payload-loss fault window: the extra draw comes from the
        // dedicated fault stream, which clean runs never consume.
        let mut payload_lost = false;
        if outcome.success && now < self.devices[device].payload_loss_until {
            let p = self.devices[device].payload_loss_p;
            if self.fault_rng.chance(p) {
                payload_lost = true;
                outcome.success = false;
                outcome.receiver.segments.clear();
                self.tracer
                    .record(now, "fault", format!("{} payload lost in transit", hb.id));
            }
        }

        if self.telemetry.is_enabled() {
            self.telemetry.metrics.incr(&format!(
                "hbr_d2d_transfer_total{{result=\"{}\"}}",
                outcome.result_label()
            ));
        }
        let sender_segments = outcome.sender.segments.clone();
        self.apply_activity(device, &sender_segments);

        // Arm the fallback timer regardless of link-layer success: the UE
        // only learns the truth through delivery feedback (§III-A).
        let deadline = self.devices[device].feedback.on_forward(hb, now);
        self.sim
            .schedule_at(deadline, Event::FeedbackSweep { device });
        self.devices[device].forwards += 1;

        if !outcome.success {
            if matches!(
                self.devices[device].link.as_ref().map(|l| l.state()),
                Some(hbr_d2d::LinkState::Closed)
            ) {
                self.detach_ue(device, now);
            }
            if self.reliable() && !payload_lost {
                // The feedback deadline armed above would fire a one-shot
                // cellular rescue; retract it and run the backoff path
                // instead (the stale sweep event becomes a harmless
                // no-op). The same relay may be retried — a transfer
                // failure indicts the link, not the relay.
                //
                // A payload lost *in transit* is different: the sender's
                // link layer reported success, so it cannot observe the
                // loss — only the missing delivery feedback reveals it
                // (§III-A). The armed deadline stands and the sweep runs
                // the backoff path with the feedback-timeout reason.
                self.devices[device].feedback.retract([hb.id]);
                self.recover(now, device, hb, RetryReason::TransferFailed, None);
            }
            return;
        }

        self.apply_activity(relay_idx, &outcome.receiver.segments);
        let arrival = outcome.completed_at;
        let mut decision = self.devices[relay_idx]
            .scheduler
            .as_mut()
            .expect("relay has a scheduler")
            .on_arrival(arrival, hb);
        if self.config.mutation == Some(ChaosMutation::IgnoreCapacityFlush)
            && decision == ScheduleDecision::Flush(FlushReason::CapacityReached)
        {
            decision = ScheduleDecision::Pend;
        }
        self.devices[relay_idx].collected_total += 1;
        if self.reliable() && decision != ScheduleDecision::Rejected {
            self.devices[device].delivery.d2d_acked(hb.id);
        }
        if self.telemetry.is_enabled() && decision != ScheduleDecision::Rejected {
            let occupancy = self.devices[relay_idx]
                .scheduler
                .as_ref()
                .map(|s| s.collected())
                .unwrap_or(0);
            self.telemetry.metrics.observe(
                "hbr_relay_buffer_occupancy",
                SIZE_BUCKETS,
                occupancy as f64,
            );
        }
        match decision {
            ScheduleDecision::Pend => {
                let dev = &mut self.devices[relay_idx];
                let deadline = dev
                    .scheduler
                    .as_ref()
                    .expect("relay has a scheduler")
                    .next_deadline();
                dev.deadline_generation += 1;
                let generation = dev.deadline_generation;
                self.sim.schedule_at(
                    deadline.max(arrival),
                    Event::FlushDeadline {
                        device: relay_idx,
                        generation,
                    },
                );
            }
            ScheduleDecision::Flush(reason) => self.flush_relay(arrival, relay_idx, reason),
            ScheduleDecision::Rejected => {
                // Relay is full or between flush and next period: the
                // heartbeat will be rescued by the UE's feedback timeout,
                // and the UE detaches so its next heartbeat re-matches to
                // a relay with free capacity (the goIntent-0 signal of
                // §IV-C).
                self.devices[relay_idx].collected_total -= 1;
                self.detach_ue(device, arrival);
            }
        }
    }

    fn flush_relay(&mut self, now: SimTime, device: usize, reason: FlushReason) {
        if !self.devices[device].is_alive() {
            return; // dead relays transmit nothing; UEs' timers rescue
        }
        let (batch, own) = {
            let dev = &mut self.devices[device];
            let scheduler = dev.scheduler.as_mut().expect("relay has a scheduler");
            let batch = scheduler.take_batch_at(now);
            let own = std::mem::take(&mut dev.own_pending);
            (batch, own)
        };
        if batch.is_empty() && own.is_empty() {
            return;
        }
        if now < self.outage_until {
            // The cell is down: the flush cannot leave the relay. Queue
            // every heartbeat for the post-outage drain (which also
            // confirms the sources' feedback then).
            self.tracer.record(
                now,
                "outage",
                format!(
                    "{} queues flush of {} + {} until the cell returns",
                    self.devices[device].id,
                    batch.len(),
                    own.len()
                ),
            );
            if self.telemetry.is_enabled() {
                let bytes: usize = batch.iter().chain(own.iter()).map(|h| h.size).sum();
                self.telemetry
                    .metrics
                    .incr("hbr_flush_total{reason=\"outage-queued\"}");
                self.telemetry.events.record(
                    now,
                    TelemetryEvent::Flush {
                        device: self.devices[device].id.index(),
                        reason: "outage-queued",
                        buffered: batch.len(),
                        own: own.len(),
                        bytes,
                    },
                );
            }
            for hb in batch.into_iter().chain(own) {
                self.outage_queue.push((device, hb));
            }
            return;
        }
        let bytes: usize = batch.iter().chain(own.iter()).map(|h| h.size).sum();
        if self.telemetry.is_enabled() {
            self.telemetry
                .metrics
                .incr(&format!("hbr_flush_total{{reason=\"{}\"}}", reason.label()));
            self.telemetry.metrics.observe(
                "hbr_relay_batch_size",
                SIZE_BUCKETS,
                batch.len() as f64,
            );
            self.telemetry.events.record(
                now,
                TelemetryEvent::Flush {
                    device: self.devices[device].id.index(),
                    reason: reason.label(),
                    buffered: batch.len(),
                    own: own.len(),
                    bytes,
                },
            );
        }
        self.tracer.record(
            now,
            "flush",
            format!(
                "{} sends {} collected + {} own ({bytes} B)",
                self.devices[device].id,
                batch.len(),
                own.len()
            ),
        );
        let out = {
            let dev = &mut self.devices[device];
            dev.radio.transmit(now, bytes)
        };
        self.apply_activity(device, &out.activity.segments);
        self.record_radio(device, &out.activity, out.rrc_connections);
        self.bs
            .record(self.devices[device].id, &out.activity, out.rrc_connections);

        let delivered_at = out.delivered_at;
        self.ledger
            .credit_forwards(self.devices[device].id, batch.len() as u64);

        // Deliver to the IM servers and send feedback to the source UEs.
        let mut by_source: BTreeMap<DeviceId, Vec<hbr_apps::MessageId>> = BTreeMap::new();
        for hb in batch.iter().chain(own.iter()) {
            let accepted = self
                .servers
                .get_mut(&hb.app)
                .map(|server| server.deliver(hb, delivered_at));
            if let Some(accepted) = accepted {
                self.checker
                    .on_delivery(hb, delivered_at, accepted, &self.tracer);
                if self.reliable() {
                    let src = hb.source.index() as usize;
                    if accepted {
                        self.devices[src].delivery.server_acked(hb.id);
                    } else if !hb.is_fresh(delivered_at) {
                        self.devices[src].delivery.expired(hb.id);
                    }
                }
            }
            by_source.entry(hb.source).or_default().push(hb.id);
        }
        for (source, ids) in by_source {
            let idx = source.index() as usize;
            if idx != device {
                if self.reliable() {
                    self.devices[idx]
                        .delivery
                        .feedback_confirmed(ids.iter().copied());
                }
                self.devices[idx].feedback.on_delivered(ids);
            }
        }
    }

    fn on_feedback_sweep(&mut self, now: SimTime, device: usize) {
        if self.reliable() {
            // A feedback miss means the relay failed us: detach, remember
            // the relay to avoid, and run the backoff/handover path
            // instead of the legacy one-shot cellular rescue.
            let due = self.devices[device].feedback.take_expired(now);
            for pending in due {
                let failed = self.devices[device].attached_to;
                if failed.is_some() {
                    self.detach_ue(device, now);
                }
                self.recover(
                    now,
                    device,
                    pending.heartbeat,
                    RetryReason::FeedbackTimeout,
                    failed,
                );
            }
            return;
        }
        let due = self.devices[device].feedback.expire_due(now);
        for pending in due {
            self.degrade_to_cellular(now, device, pending.heartbeat, "feedback-timeout");
        }
    }

    /// Exhausted (or inapplicable) D2D recovery: one cellular rescue,
    /// counted and labelled against its cause. This is the legacy
    /// feedback-timeout action, shared with the reliable layer's
    /// degrade path.
    fn degrade_to_cellular(
        &mut self,
        now: SimTime,
        device: usize,
        hb: Heartbeat,
        cause: &'static str,
    ) {
        self.devices[device].fallbacks += 1;
        self.note_fallback(now, device, cause);
        self.tracer.record(
            now,
            "fallback",
            format!(
                "{} rescues {} over cellular",
                self.devices[device].id, hb.id
            ),
        );
        self.send_cellular(now, device, hb);
    }

    /// Reliable-delivery recovery for one failed heartbeat: schedule a
    /// backed-off D2D retry while the expiration window still permits
    /// one, else degrade to the cellular fallback. When a specific relay
    /// failed us, remember it so the retry avoids it (handover).
    fn recover(
        &mut self,
        now: SimTime,
        device: usize,
        hb: Heartbeat,
        reason: RetryReason,
        failed_relay: Option<usize>,
    ) {
        if let Some(relay_idx) = failed_relay {
            let relay_id = self.devices[relay_idx].id;
            self.devices[device].delivery.relay_failed(hb.id, relay_id);
        }
        let policy = self.backoff;
        let planned = self.devices[device].delivery.plan_retry(
            hb.id,
            now,
            &policy,
            FeedbackTracker::RESCUE_MARGIN,
            &mut self.retry_rng,
        );
        match planned {
            Some(at) => {
                let attempt = self.devices[device]
                    .delivery
                    .entry(hb.id)
                    .map(|e| e.attempts)
                    .unwrap_or(0);
                self.tracer.record(
                    now,
                    "retry",
                    format!(
                        "{} retries {} over D2D (attempt {attempt}, {})",
                        self.devices[device].id,
                        hb.id,
                        reason.label()
                    ),
                );
                if self.telemetry.is_enabled() {
                    self.telemetry.metrics.incr(&format!(
                        "hbr_delivery_retry_total{{reason=\"{}\"}}",
                        reason.label()
                    ));
                    self.telemetry.events.record(
                        now,
                        TelemetryEvent::Retry {
                            device: self.devices[device].id.index(),
                            cause: reason.label(),
                            attempt,
                        },
                    );
                }
                self.sim.schedule_at(at, Event::DeliveryRetry { device });
            }
            None => self.degrade_to_cellular(now, device, hb, "retry-exhausted"),
        }
    }

    /// A backoff timer fired: re-attempt everything due. Entries that
    /// advanced or retired since keep no timer, so stale events find
    /// nothing due and fall through harmlessly.
    fn on_delivery_retry(&mut self, now: SimTime, device: usize) {
        let due = self.devices[device].delivery.take_due(now);
        for hb in due {
            self.attempt_redelivery(now, device, hb);
        }
    }

    /// One D2D re-attempt for a heartbeat whose backoff expired: reuse a
    /// healthy attachment, else re-match — consuming the single handover
    /// credit when a specific relay failed us — else degrade to cellular.
    fn attempt_redelivery(&mut self, now: SimTime, device: usize, hb: Heartbeat) {
        if !self.devices[device].is_alive() {
            self.checker.on_dropped_dead(&hb);
            self.devices[device].delivery.dropped_dead(hb.id);
            return;
        }
        if now < self.devices[device].d2d_down_until {
            self.degrade_to_cellular(now, device, hb, "d2d-down");
            return;
        }
        let failed = self.devices[device]
            .delivery
            .entry(hb.id)
            .and_then(|e| e.failed_relay);
        let failed_idx = failed.map(|id| id.index() as usize);
        // The failed first attempt already ate into the session's
        // refresh budget, so redelivery gates on the *liveness*
        // deadline, not message expiry: a message parked through
        // another full aggregation window could stretch the server's
        // refresh gap past its expiration window — reading as a dead
        // client — while staying individually fresh the whole time.
        let liveness_slack = hb.liveness_deadline().saturating_since(now);
        if let Some(relay_idx) = self.devices[device].attached_to {
            let relay_ok = failed_idx != Some(relay_idx)
                && self.devices[relay_idx].is_alive()
                && !self.devices[relay_idx].departed;
            let relay_period = self.devices[relay_idx]
                .scheduler
                .as_ref()
                .map(|s| s.period())
                .unwrap_or(SimDuration::from_secs(270));
            if relay_ok && !self.delegation_allowed(liveness_slack, relay_period) {
                self.degrade_to_cellular(now, device, hb, "retry-exhausted");
                return;
            }
            let link_ready = self.devices[device]
                .link
                .as_ref()
                .map(|l| l.is_ready(now))
                .unwrap_or(false);
            if relay_ok && link_ready {
                self.forward_over_link(now, device, relay_idx, hb);
                return;
            }
            // A healthy relay whose link is still establishing: queue
            // behind the setup like the primary path does — detaching
            // here would orphan the already-scheduled LinkReady event.
            if relay_ok
                && self.devices[device]
                    .link
                    .as_ref()
                    .and_then(|l| l.ready_at())
                    .is_some()
            {
                self.devices[device].pending_until_ready.push(hb);
                return;
            }
            self.detach_ue(device, now);
        }
        match failed_idx {
            Some(avoid) => {
                if self.devices[device].delivery.take_handover(hb.id, 1) {
                    self.match_and_forward(now, device, hb, Some(avoid), liveness_slack);
                } else {
                    self.degrade_to_cellular(now, device, hb, "retry-exhausted");
                }
            }
            None => self.match_and_forward(now, device, hb, None, liveness_slack),
        }
    }

    /// Plain cellular transmission of one heartbeat, shared by the
    /// baseline mode and every fallback path.
    fn send_cellular(&mut self, now: SimTime, device: usize, hb: Heartbeat) {
        if !self.devices[device].is_alive() {
            // The heartbeat dies with the device — the one legal way a
            // message disappears; tell the ledger so conservation holds.
            self.checker.on_dropped_dead(&hb);
            if self.reliable() {
                let src = hb.source.index() as usize;
                self.devices[src].delivery.dropped_dead(hb.id);
            }
            return;
        }
        if now < self.outage_until {
            // Cellular outage fault window: queue for the drain.
            self.tracer.record(
                now,
                "outage",
                format!(
                    "{} queues {} until the cell returns",
                    self.devices[device].id, hb.id
                ),
            );
            self.outage_queue.push((device, hb));
            return;
        }
        let out = self.devices[device].radio.transmit(now, hb.size);
        self.apply_activity(device, &out.activity.segments);
        self.record_radio(device, &out.activity, out.rrc_connections);
        self.bs
            .record(self.devices[device].id, &out.activity, out.rrc_connections);
        let accepted = self
            .servers
            .get_mut(&hb.app)
            .map(|server| server.deliver(&hb, out.delivered_at));
        if let Some(accepted) = accepted {
            self.checker
                .on_delivery(&hb, out.delivered_at, accepted, &self.tracer);
            if self.reliable() {
                let src = hb.source.index() as usize;
                if accepted {
                    self.devices[src].delivery.server_acked(hb.id);
                } else if !hb.is_fresh(out.delivered_at) {
                    self.devices[src].delivery.expired(hb.id);
                }
            }
        }
    }

    /// Bills the D2D keep-alive a UE paid while attached, detaches it and
    /// updates the relay's group membership (billing the relay's share
    /// when its group empties).
    fn detach_ue(&mut self, device: usize, now: SimTime) {
        let relay_idx = self.devices[device].attached_to.take();
        let had_link = self.devices[device].link.take().is_some();
        if self.telemetry.is_enabled() {
            if let Some(r) = relay_idx {
                self.telemetry.metrics.incr("hbr_d2d_link_teardown_total");
                self.telemetry.events.record(
                    now,
                    TelemetryEvent::RelayDepart {
                        device: self.devices[device].id.index(),
                        relay: self.devices[r].id.index(),
                    },
                );
            }
        }
        if self.config.bill_d2d_idle {
            if let Some(since) = self.devices[device].attached_since.take() {
                let idle = self.config.stack.d2d.idle(since, now.max(since));
                self.apply_activity(device, &idle.segments);
            }
            if had_link {
                let bye = self
                    .config
                    .stack
                    .d2d
                    .teardown(now, hbr_d2d::D2dRole::Initiator);
                self.apply_activity(device, &bye.segments);
            }
        } else {
            self.devices[device].attached_since = None;
        }
        if let Some(r) = relay_idx {
            let relay = &mut self.devices[r];
            relay.member_count = relay.member_count.saturating_sub(1);
            if relay.member_count == 0 {
                if let Some(since) = relay.group_idle_since.take() {
                    if self.config.bill_d2d_idle {
                        let idle = self.config.stack.d2d.idle(since, now.max(since));
                        self.apply_activity(r, &idle.segments);
                    }
                }
            }
        }
    }

    /// Marks a UE attached (link ready) for idle billing.
    fn note_attached(&mut self, device: usize, relay_idx: usize, ready_at: SimTime) {
        self.devices[device].attached_since = Some(ready_at);
        let relay = &mut self.devices[relay_idx];
        if relay.member_count == 0 {
            relay.group_idle_since = Some(ready_at);
        }
        relay.member_count += 1;
    }

    fn apply_activity(&mut self, device: usize, segments: &[(SimTime, Segment)]) {
        let dev = &mut self.devices[device];
        let mut charge = MicroAmpHours::ZERO;
        for (start, seg) in segments {
            dev.meter.add_segment(*start, *seg);
            charge += seg.charge();
        }
        if let Some(battery) = dev.battery.as_mut() {
            battery.drain(charge);
        }
    }

    fn finish(mut self, end: SimTime) -> ScenarioReport {
        // Close the books on attachments still open at the horizon.
        if self.config.bill_d2d_idle {
            for i in 0..self.devices.len() {
                if self.devices[i].attached_to.is_some() {
                    if let Some(since) = self.devices[i].attached_since.take() {
                        let idle = self.config.stack.d2d.idle(since, end.max(since));
                        self.apply_activity(i, &idle.segments);
                    }
                }
                if let Some(since) = self.devices[i].group_idle_since.take() {
                    let idle = self.config.stack.d2d.idle(since, end.max(since));
                    self.apply_activity(i, &idle.segments);
                }
            }
        }
        // Drain radio tails.
        for i in 0..self.devices.len() {
            let tail = self.devices[i]
                .radio
                .finalize(end + SimDuration::from_secs(60));
            let id = self.devices[i].id;
            self.apply_activity(i, &tail.segments);
            self.record_radio(i, &tail, 0);
            self.bs.record(id, &tail, 0);
        }

        // Close the telemetry books: per-device per-group energy events
        // (stamped at the horizon) and system-wide energy gauges.
        if self.telemetry.is_enabled() {
            for i in 0..self.devices.len() {
                let id = self.devices[i].id.index();
                for (group, charge) in self.devices[i].meter.group_breakdown() {
                    let uah = charge.as_micro_amp_hours();
                    self.telemetry.metrics.add_gauge(
                        &format!("hbr_energy_uah{{group=\"{}\"}}", group.label()),
                        uah,
                    );
                    self.telemetry.events.record(
                        end,
                        TelemetryEvent::EnergyPhase {
                            device: id,
                            group: group.label(),
                            uah,
                        },
                    );
                }
            }
        }

        // Conservation audit: every heartbeat the checker still has
        // in-flight must be parked in some legitimate buffer at the
        // horizon — anything else was silently lost.
        if self.checker.enabled() {
            let mut surviving: HashSet<MessageId> = HashSet::new();
            for dev in &self.devices {
                if let Some(scheduler) = dev.scheduler.as_ref() {
                    surviving.extend(scheduler.buffered().map(|hb| hb.id));
                }
                surviving.extend(dev.own_pending.iter().map(|hb| hb.id));
                surviving.extend(dev.pending_until_ready.iter().map(|hb| hb.id));
                surviving.extend(dev.feedback.pending_ids());
                // Ledger entries awaiting a backoff timer live in no
                // other buffer — they are legitimately parked too.
                surviving.extend(dev.delivery.in_flight_ids());
            }
            surviving.extend(self.outage_queue.iter().map(|(_, hb)| hb.id));
            self.checker.on_finish(&surviving, &self.tracer);
        }

        let mut delivered = 0;
        let mut rejected = 0;
        let mut duplicates = 0;
        let mut offline = 0.0;
        for server in self.servers.values() {
            delivered += server.delivered();
            rejected += server.rejected_expired();
            duplicates += server.duplicates();
        }
        let per_device_offline: Vec<f64> = self
            .devices
            .iter()
            .map(|dev| {
                dev.schedules
                    .iter()
                    .map(|schedule| {
                        let app = schedule.app().id;
                        self.servers
                            .get(&app)
                            .map(|server| {
                                server
                                    .offline_time(dev.id, app, SimTime::ZERO, end)
                                    .as_secs_f64()
                            })
                            .unwrap_or(0.0)
                    })
                    .sum()
            })
            .collect();
        offline += per_device_offline.iter().sum::<f64>();

        let devices: Vec<DeviceReport> = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| DeviceReport {
                device: d.id,
                role: d.role,
                energy_uah: d.meter.total().as_micro_amp_hours(),
                energy_by_group: d
                    .meter
                    .group_breakdown()
                    .into_iter()
                    .map(|(g, c)| (g, c.as_micro_amp_hours()))
                    .collect(),
                rrc_connections: d.radio.connections(),
                forwards: if d.role == Role::Relay {
                    d.collected_total
                } else {
                    d.forwards
                },
                fallbacks: d.fallbacks + d.feedback.fallbacks(),
                rewards: self.ledger.balance(d.id),
                offline_secs: per_device_offline[i],
                mean_batch_size: d
                    .scheduler
                    .as_ref()
                    .and_then(|s| s.stats().batch_sizes.mean()),
                mean_queueing_delay_secs: d
                    .scheduler
                    .as_ref()
                    .and_then(|s| s.stats().queueing_delay_secs.mean()),
                battery_depleted: d.battery.map(|b| b.is_depleted()).unwrap_or(false),
            })
            .collect();

        let total_energy_uah = devices.iter().map(|d| d.energy_uah).sum();
        let delivery = self.config.reliable_delivery.then(|| {
            // A session is *falsely* dead when the server let it lapse
            // while the device was alive the whole run — offline time of
            // devices that really died is legitimate, not an SLO miss.
            // (Conservative: a device that died at the horizon's edge
            // contributes nothing.)
            let false_dead_secs: f64 = self
                .devices
                .iter()
                .zip(per_device_offline.iter())
                .filter(|(d, _)| d.is_alive())
                .map(|(_, o)| *o)
                .sum();
            let mut report = DeliveryReport {
                generated: self.generated,
                requeued: self.requeued,
                false_dead_secs,
                ..DeliveryReport::default()
            };
            for d in &self.devices {
                let s = d.delivery.stats();
                report.delivered += s.delivered;
                report.expired += s.expired;
                report.dropped_dead += s.dropped_dead;
                report.retries += s.retries;
                report.handovers += s.handovers;
                report.in_flight += d.delivery.in_flight() as u64;
            }
            report
        });
        if self.telemetry.is_enabled() {
            if let Some(d) = &delivery {
                self.telemetry
                    .metrics
                    .add_gauge("hbr_false_dead_seconds", d.false_dead_secs);
                self.telemetry
                    .metrics
                    .add_gauge("hbr_delivery_ratio", d.ratio());
                self.telemetry
                    .metrics
                    .add_gauge("hbr_delivery_in_flight", d.in_flight as f64);
            }
        }
        // Lazy radio accounting records RRC transitions when they are
        // *observed*, which can trail the simulated instant they
        // happened at — a stable sort puts the stream in causal order
        // (and is deterministic: same recording order in, same order
        // out).
        let mut events = std::mem::take(&mut self.telemetry.events).into_records();
        events.sort_by_key(|r| r.time);
        let metrics = self.telemetry.metrics.snapshot();
        ScenarioReport {
            devices,
            total_l3: self.bs.total_l3(),
            total_rrc: self.bs.rrc_connections(),
            delivered,
            rejected_expired: rejected,
            duplicates,
            offline_secs: offline,
            pushes_delivered: self.pushes_delivered,
            pushes_missed: self.pushes_missed,
            total_energy_uah,
            trace: self.tracer.iter().cloned().collect(),
            trace_dropped: self.tracer.dropped(),
            metrics,
            events,
            delivery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_mobility::Position;

    fn spec(role: Role, x: f64) -> DeviceSpec {
        DeviceSpec {
            role,
            apps: vec![AppProfile::wechat()],
            mobility: Mobility::stationary(Position::new(x, 0.0)),
            battery_mah: None,
        }
    }

    fn basic_config(mode: Mode) -> ScenarioConfig {
        let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 42);
        config.mode = mode;
        config.add_device(spec(Role::Relay, 0.0));
        config.add_device(spec(Role::Ue, 1.0));
        config.add_device(spec(Role::Ue, 2.0));
        config
    }

    #[test]
    fn framework_beats_baseline_on_signaling_and_energy() {
        let fw = Scenario::new(basic_config(Mode::D2dFramework)).run();
        let base = Scenario::new(basic_config(Mode::OriginalCellular)).run();
        assert!(
            fw.total_l3 < base.total_l3 / 2,
            "framework {} vs baseline {} L3 messages",
            fw.total_l3,
            base.total_l3
        );
        assert!(fw.total_energy_uah < base.total_energy_uah);
        assert!(fw.total_rrc < base.total_rrc);
    }

    #[test]
    fn presence_never_lapses_under_the_framework() {
        let report = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert_eq!(report.rejected_expired, 0, "no heartbeat may expire");
        assert_eq!(
            report.offline_secs, 0.0,
            "no session may ever appear offline"
        );
        assert_eq!(report.duplicates, 0, "feedback must prevent double sends");
        assert!(report.delivered > 0);
    }

    #[test]
    fn relay_earns_rewards_for_forwards() {
        let report = Scenario::new(basic_config(Mode::D2dFramework)).run();
        let relay = &report.devices[0];
        assert_eq!(relay.role, Role::Relay);
        assert!(relay.rewards > 0);
        // Heartbeats still buffered at the horizon are collected but not
        // yet credited, so rewards can trail forwards slightly.
        assert!(relay.rewards <= relay.forwards);
        assert!(relay.rewards + 2 >= relay.forwards);
    }

    #[test]
    fn dead_relay_triggers_fallbacks_without_losing_presence() {
        let mut config = basic_config(Mode::D2dFramework);
        // A relay with a tiny battery dies early in the scenario.
        config.devices[0].battery_mah = Some(2.0);
        let report = Scenario::new(config).run();
        let relay = &report.devices[0];
        assert!(relay.battery_depleted, "relay should exhaust its battery");
        let ue_fallbacks: u64 = report.devices[1..].iter().map(|d| d.fallbacks).sum();
        assert!(ue_fallbacks > 0, "UEs must rescue their heartbeats");
        // The dead relay itself is legitimately offline, but the UEs'
        // fallback path must keep *their* presence alive.
        for ue in &report.devices[1..] {
            assert_eq!(ue.offline_secs, 0.0, "{} lapsed", ue.device);
        }
    }

    #[test]
    fn out_of_range_ue_uses_cellular() {
        let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), 7);
        config.add_device(spec(Role::Relay, 0.0));
        // 60 m away: in Wi-Fi Direct range but beyond the 15 m match limit.
        config.add_device(spec(Role::Ue, 60.0));
        let report = Scenario::new(config).run();
        let ue = &report.devices[1];
        assert_eq!(ue.forwards, 0, "no D2D forwards at 60 m");
        assert!(ue.rrc_connections > 0, "heartbeats flow over cellular");
        assert_eq!(report.offline_secs, 0.0);
    }

    #[test]
    fn stale_flush_deadline_is_skipped_not_fabricated() {
        // A capacity flush empties the buffer without bumping the
        // deadline generation, so the previously armed FlushDeadline
        // still fires — with nothing due. It must be skipped: forcing a
        // flush there records a phantom zero-size batch that drags the
        // relay's mean batch size below what it really sent. With a
        // capacity of 2 and two chatty UEs in range, every real flush
        // carries a full batch, so any phantom shows up in the mean.
        let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 42);
        config.mode = Mode::D2dFramework;
        config.framework.relay_capacity = 2;
        config.add_device(spec(Role::Relay, 0.0));
        config.add_device(spec(Role::Ue, 1.0));
        config.add_device(spec(Role::Ue, 2.0));
        let report = Scenario::new(config).run();
        let relay = &report.devices[0];
        let mean = relay
            .mean_batch_size
            .expect("the relay must flush something");
        assert!(
            mean > 1.5,
            "phantom zero-size batches dragged the mean batch size to {mean}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Scenario::new(basic_config(Mode::D2dFramework)).run();
        let b = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert_eq!(a.total_l3, b.total_l3);
        assert_eq!(a.delivered, b.delivered);
        assert!((a.total_energy_uah - b.total_energy_uah).abs() < 1e-9);
    }

    #[test]
    fn pushes_reach_online_sessions_and_skip_dead_ones() {
        let mut config = basic_config(Mode::D2dFramework);
        config.push_interval = Some(SimDuration::from_secs(1200));
        // One UE dies early: its pushes must be missed, the others' not.
        config.devices[2].battery_mah = Some(0.5);
        let report = Scenario::new(config).run();
        assert!(report.pushes_delivered > 0, "healthy sessions get pushes");
        assert!(
            report.pushes_missed > 0,
            "the dead UE's session must miss pushes"
        );
        let dead = &report.devices[2];
        assert!(dead.battery_depleted);
        assert!(dead.offline_secs > 0.0);
    }

    #[test]
    fn trace_captures_the_story_in_order() {
        let mut config = basic_config(Mode::D2dFramework);
        config.trace_capacity = 10_000;
        let report = Scenario::new(config).run();
        assert!(!report.trace.is_empty());
        // Ordered by time.
        for w in report.trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // The story contains attachments and flushes.
        assert!(report.trace.iter().any(|e| e.label == "attach"));
        assert!(report.trace.iter().any(|e| e.label == "flush"));
        // And renders non-empty text lines.
        assert!(report.trace[0].to_string().contains("s]"));
    }

    #[test]
    fn idle_billing_adds_energy_but_framework_still_wins() {
        let honest = Scenario::new(basic_config(Mode::D2dFramework)).run();
        let mut paper_bench = basic_config(Mode::D2dFramework);
        paper_bench.bill_d2d_idle = false;
        let unbilled = Scenario::new(paper_bench).run();
        assert!(
            honest.total_energy_uah > unbilled.total_energy_uah,
            "keep-alive billing must cost something: {} vs {}",
            honest.total_energy_uah,
            unbilled.total_energy_uah
        );
        let base = Scenario::new(basic_config(Mode::OriginalCellular)).run();
        assert!(
            honest.total_energy_uah < base.total_energy_uah,
            "the framework must win even with honest idle accounting"
        );
    }

    #[test]
    fn trace_is_off_by_default() {
        let report = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert!(report.trace.is_empty());
    }

    #[test]
    fn pushes_disabled_by_default() {
        let report = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert_eq!(report.pushes_delivered, 0);
        assert_eq!(report.pushes_missed, 0);
    }

    #[test]
    fn telemetry_is_pure_observation_and_captures_the_story() {
        let plain = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert!(plain.metrics.is_empty(), "telemetry is off by default");
        assert!(plain.events.is_empty());

        let mut config = basic_config(Mode::D2dFramework);
        config.telemetry = true;
        let instrumented = Scenario::new(config).run();
        assert_eq!(
            plain.render(),
            instrumented.render(),
            "enabling telemetry must not perturb the run"
        );

        let m = &instrumented.metrics;
        let flushes: u64 = m
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("hbr_flush_total"))
            .map(|(_, v)| v)
            .sum();
        assert!(flushes > 0, "a 3 h framework run flushes");
        assert!(m.counter("hbr_rrc_establish_total") > 0);
        assert!(m.counter("hbr_rrc_release_total") > 0);
        assert!(m
            .histograms
            .contains_key("hbr_rrc_dwell_seconds{state=\"dch\"}"));
        assert!(m.histograms.contains_key("hbr_relay_batch_size"));
        assert!(m.histograms.contains_key("hbr_relay_buffer_occupancy"));
        assert!(m.gauges.keys().any(|k| k.starts_with("hbr_energy_uah")));
        assert!(m.counter("hbr_engine_steps_total") > 0);

        for w in instrumented.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events must be time-sorted");
        }
        for kind in ["flush", "match", "rrc", "energy"] {
            assert!(
                instrumented.events.iter().any(|e| e.event.kind() == kind),
                "missing {kind} events"
            );
        }

        let mut config2 = basic_config(Mode::D2dFramework);
        config2.telemetry = true;
        let again = Scenario::new(config2).run();
        assert_eq!(
            again.metrics.to_json(),
            instrumented.metrics.to_json(),
            "metrics snapshots are byte-identical run to run"
        );
        let lines = |evs: &[hbr_sim::telemetry::EventRecord]| {
            evs.iter()
                .map(|e| e.to_jsonl())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(lines(&again.events), lines(&instrumented.events));
    }

    #[test]
    fn reliable_delivery_accounts_exactly_once_and_saves_signaling() {
        let legacy = Scenario::new(basic_config(Mode::D2dFramework)).run();
        assert!(legacy.delivery.is_none(), "legacy runs carry no ledger");
        let mut config = basic_config(Mode::D2dFramework);
        config.reliable_delivery = true;
        let reliable = Scenario::new(config).run();
        // Presence and dedup invariants hold with the retry layer on.
        assert_eq!(reliable.offline_secs, 0.0);
        assert_eq!(reliable.duplicates, 0);
        assert_eq!(reliable.rejected_expired, 0);
        // Feedback misses that legacy rescued over cellular are retried
        // over D2D instead, which can only reduce signaling load.
        assert!(
            reliable.total_l3 <= legacy.total_l3,
            "retries must not add L3 traffic: {} vs {}",
            reliable.total_l3,
            legacy.total_l3
        );
        let d = reliable.delivery.expect("reliable runs report delivery");
        assert_eq!(d.expired, 0);
        assert_eq!(d.dropped_dead, 0);
        assert_eq!(d.requeued, 0, "nothing departs in a fault-free run");
        assert_eq!(
            d.delivered + d.in_flight,
            d.generated,
            "every generated heartbeat must end in exactly one terminal state"
        );
        assert!((d.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(d.false_dead_secs, 0.0);
        // Determinism is unchanged by the retry RNG stream.
        let mut config2 = basic_config(Mode::D2dFramework);
        config2.reliable_delivery = true;
        let again = Scenario::new(config2).run();
        assert_eq!(reliable.render(), again.render());
    }

    #[test]
    fn relay_departure_requeues_its_buffered_batch_exactly_once() {
        // Regression: a member's feedback deadline armed before the
        // relay departs used to survive the detach; when the sweep later
        // fired on the stale entry it re-sent a heartbeat the re-queue
        // path had already recovered, and the server counted a
        // duplicate. The departure arm must retract pending feedback
        // before recovering the batch.
        use hbr_sim::fault::FaultKind;
        let mut config = basic_config(Mode::D2dFramework);
        config.reliable_delivery = true;
        // Several departure/rejoin cycles at varying phases of the
        // 270 s heartbeat period so at least one lands while the relay
        // still buffers forwarded heartbeats.
        for at in [1700u64, 2905, 4110, 5315] {
            config.faults.schedule(
                SimTime::from_secs(at),
                FaultKind::RelayDeparture {
                    device: hbr_sim::DeviceId::new(0),
                    rejoin_after: Some(SimDuration::from_secs(400)),
                },
            );
        }
        let report = Scenario::new(config).run();
        let d = report.delivery.as_ref().expect("reliable run");
        assert!(
            d.requeued > 0,
            "a departing relay's buffered batch must be re-queued, not dropped"
        );
        assert_eq!(
            report.duplicates, 0,
            "a stale feedback deadline double-sent a re-queued heartbeat"
        );
        assert_eq!(report.offline_secs, 0.0, "no session may lapse");
        assert_eq!(d.false_dead_secs, 0.0);
    }

    #[test]
    fn baseline_mode_never_uses_d2d() {
        let report = Scenario::new(basic_config(Mode::OriginalCellular)).run();
        for dev in &report.devices {
            let d2d: f64 = dev
                .energy_by_group
                .iter()
                .filter(|(g, _)| {
                    matches!(
                        g,
                        PhaseGroup::Discovery | PhaseGroup::Connection | PhaseGroup::Forwarding
                    )
                })
                .map(|(_, e)| e)
                .sum();
            assert_eq!(d2d, 0.0, "baseline device {} used D2D", dev.device);
        }
    }
}
