//! The Message Monitor — the app-facing integration surface.
//!
//! Android offers no way to sniff another app's traffic without consent,
//! so the prototype ships "a set of APIs for app developers to integrate
//! the proposed D2D based framework into their existing apps" via a
//! Content Provider (§IV-B). [`MessageMonitor`] models that contract:
//! an application *registers* its heartbeat profile, and from then on the
//! framework may intercept that app's heartbeats together with the
//! metadata (period, expiration) the scheduler needs. Heartbeats of
//! unregistered apps pass through untouched and keep using the cellular
//! path directly.

use std::collections::BTreeMap;

use hbr_apps::{AppId, AppProfile, Heartbeat};
use hbr_sim::SimDuration;

/// Registry of apps that opted into the framework on one device.
///
/// # Examples
///
/// ```
/// use hbr_apps::AppProfile;
/// use hbr_core::MessageMonitor;
///
/// let mut monitor = MessageMonitor::new();
/// monitor.register(AppProfile::wechat());
/// assert!(monitor.is_registered(AppProfile::wechat().id));
/// assert!(!monitor.is_registered(AppProfile::qq().id));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageMonitor {
    apps: BTreeMap<AppId, AppProfile>,
    intercepted: u64,
    passed_through: u64,
}

/// An intercepted heartbeat plus the metadata the scheduler consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct InterceptedHeartbeat {
    /// The heartbeat itself.
    pub heartbeat: Heartbeat,
    /// The emitting app's period (the relay uses its own `T`, but the
    /// matching logic can use the UE's period to predict forwarding
    /// frequency).
    pub period: SimDuration,
    /// The expiration budget `T_k` (already baked into
    /// `heartbeat.expires_at`; repeated here as the API the paper
    /// describes exposes it explicitly).
    pub expiration: SimDuration,
}

impl MessageMonitor {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MessageMonitor::default()
    }

    /// Registers an app (the developer-side opt-in).
    ///
    /// Re-registering replaces the stored profile, so apps can update
    /// their period (e.g. WeChat changing its heartbeat interval in an
    /// update).
    pub fn register(&mut self, app: AppProfile) {
        self.apps.insert(app.id, app);
    }

    /// Removes an app from the framework.
    pub fn unregister(&mut self, app: AppId) -> Option<AppProfile> {
        self.apps.remove(&app)
    }

    /// `true` if the app has opted in.
    pub fn is_registered(&self, app: AppId) -> bool {
        self.apps.contains_key(&app)
    }

    /// Registered profiles in id order.
    pub fn registered(&self) -> impl Iterator<Item = &AppProfile> {
        self.apps.values()
    }

    /// Attempts to intercept a heartbeat. Returns the enriched form for
    /// registered apps, or [`None`] — meaning the heartbeat must take the
    /// plain cellular path — for apps that never opted in.
    pub fn intercept(&mut self, heartbeat: Heartbeat) -> Option<InterceptedHeartbeat> {
        match self.apps.get(&heartbeat.app) {
            Some(profile) => {
                self.intercepted += 1;
                Some(InterceptedHeartbeat {
                    period: profile.heartbeat_period,
                    expiration: profile.expiration,
                    heartbeat,
                })
            }
            None => {
                self.passed_through += 1;
                None
            }
        }
    }

    /// Heartbeats intercepted so far.
    pub fn intercepted_count(&self) -> u64 {
        self.intercepted
    }

    /// Heartbeats that bypassed the framework (unregistered apps).
    pub fn passed_through_count(&self) -> u64 {
        self.passed_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_apps::MessageIdGen;
    use hbr_sim::{DeviceId, SimTime};

    fn heartbeat_for(app: &AppProfile, ids: &mut MessageIdGen) -> Heartbeat {
        Heartbeat {
            id: ids.next_id(),
            app: app.id,
            source: DeviceId::new(0),
            seq: 0,
            size: app.heartbeat_size,
            created_at: SimTime::from_secs(270),
            expires_at: SimTime::from_secs(270) + app.expiration,
        }
    }

    #[test]
    fn intercepts_registered_apps_only() {
        let mut monitor = MessageMonitor::new();
        let wechat = AppProfile::wechat();
        let qq = AppProfile::qq();
        monitor.register(wechat.clone());

        let mut ids = MessageIdGen::new();
        let caught = monitor.intercept(heartbeat_for(&wechat, &mut ids));
        assert!(caught.is_some());
        let caught = caught.unwrap();
        assert_eq!(caught.period, wechat.heartbeat_period);
        assert_eq!(caught.expiration, wechat.expiration);

        assert!(monitor.intercept(heartbeat_for(&qq, &mut ids)).is_none());
        assert_eq!(monitor.intercepted_count(), 1);
        assert_eq!(monitor.passed_through_count(), 1);
    }

    #[test]
    fn unregister_restores_passthrough() {
        let mut monitor = MessageMonitor::new();
        let wechat = AppProfile::wechat();
        monitor.register(wechat.clone());
        assert!(monitor.unregister(wechat.id).is_some());
        assert!(monitor.unregister(wechat.id).is_none());
        let mut ids = MessageIdGen::new();
        assert!(monitor
            .intercept(heartbeat_for(&wechat, &mut ids))
            .is_none());
    }

    #[test]
    fn reregistration_updates_profile() {
        let mut monitor = MessageMonitor::new();
        let wechat = AppProfile::wechat();
        monitor.register(wechat.clone());
        let updated = wechat.clone().with_expiration(SimDuration::from_secs(60));
        monitor.register(updated);
        let mut ids = MessageIdGen::new();
        let caught = monitor.intercept(heartbeat_for(&wechat, &mut ids)).unwrap();
        assert_eq!(caught.expiration, SimDuration::from_secs(60));
    }

    #[test]
    fn registered_iterates_in_id_order() {
        let mut monitor = MessageMonitor::new();
        monitor.register(AppProfile::qq());
        monitor.register(AppProfile::wechat());
        let names: Vec<_> = monitor.registered().map(|a| a.name.clone()).collect();
        assert_eq!(names, vec!["WeChat", "QQ"]);
    }
}
