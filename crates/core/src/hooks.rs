//! Event-granularity observation seam for conformance harnesses.
//!
//! The conformance DAG engine (`hbr_conform`) needs to interleave
//! protocol steps — schedule decisions, retry planning, feedback
//! arm/confirm/retract — at event granularity and record each one
//! deterministically, *without* perturbing the RNG streams the
//! production paths consume. [`ProtocolHooks`] is that seam: every
//! method has a no-op default, the hot paths in `world.rs` keep calling
//! the plain (hook-free) entry points, and the `*_with` variants on
//! [`MessageScheduler`](crate::MessageScheduler),
//! [`DeliveryLedger`](crate::DeliveryLedger) and
//! [`FeedbackTracker`](crate::FeedbackTracker) thread a `&mut dyn
//! ProtocolHooks` through without drawing from any RNG themselves.
//!
//! Hooks observe; they must not mutate protocol state. The trait takes
//! `&mut self` only so recorders can append to their own logs.

use hbr_apps::{Heartbeat, MessageId};
use hbr_sim::SimTime;

use crate::scheduler::ScheduleDecision;

/// Observation callbacks fired at protocol step boundaries.
///
/// All methods default to no-ops so harnesses implement only what they
/// record. The same scenario driven with [`NullHooks`] and with a
/// recorder must produce byte-identical protocol behaviour — hook
/// implementations must not feed information back into the system
/// under test.
pub trait ProtocolHooks {
    /// A scheduler accepted a heartbeat and decided whether to flush.
    fn on_schedule_decision(&mut self, now: SimTime, hb: &Heartbeat, decision: &ScheduleDecision) {
        let _ = (now, hb, decision);
    }

    /// The delivery ledger planned a D2D retransmission for `at`.
    fn on_retry_planned(&mut self, id: MessageId, attempt: u32, at: SimTime, liveness: SimTime) {
        let _ = (id, attempt, at, liveness);
    }

    /// The delivery ledger refused to plan another retry (attempts or
    /// liveness budget exhausted); the caller will fall back.
    fn on_retry_exhausted(&mut self, id: MessageId, attempt: u32, now: SimTime) {
        let _ = (id, attempt, now);
    }

    /// A feedback deadline was armed for a forwarded heartbeat.
    fn on_feedback_armed(&mut self, id: MessageId, now: SimTime, deadline: SimTime) {
        let _ = (id, now, deadline);
    }

    /// Relay feedback confirmed `confirmed` of the delivered ids.
    fn on_feedback_confirmed(&mut self, confirmed: usize) {
        let _ = confirmed;
    }

    /// A retract swept `retracted` still-pending forwards (departing
    /// relay handed its batch back); already-gone ids are not counted.
    fn on_feedback_retracted(&mut self, retracted: usize) {
        let _ = retracted;
    }
}

/// The do-nothing hook set; the plain protocol entry points use this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHooks;

impl ProtocolHooks for NullHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hooks_are_inert() {
        let mut hooks = NullHooks;
        let id = hbr_apps::MessageIdGen::new().next_id();
        hooks.on_feedback_confirmed(3);
        hooks.on_feedback_retracted(0);
        hooks.on_retry_exhausted(id, 3, SimTime::ZERO);
    }
}
