//! The D2D heartbeat relaying framework — the paper's contribution.
//!
//! Smartphones take one of two roles. **UEs** hand their IM heartbeats to
//! a nearby **relay** over an energy-efficient D2D link instead of waking
//! their own cellular radio; the relay aggregates the collected heartbeats
//! with its own and ships them to the base station over a *single* RRC
//! connection. One connection per relay period instead of one per
//! heartbeat per device is where both savings come from: fewer RRC
//! establish/release cycles (less layer-3 signaling for the operator) and
//! fewer promotion-plus-tail energy cycles (longer battery life for
//! users).
//!
//! The three prototype components of §III-B map to modules here:
//!
//! * [`MessageMonitor`] — the app-facing
//!   registration API that intercepts heartbeats and their metadata.
//! * [`D2dDetector`] — discovery, distance
//!   pre-judgment and relay matching (§III-C, §IV-C).
//! * [`MessageScheduler`] — Algorithm 1, the
//!   Nagle-inspired flush rule.
//!
//! Supporting mechanisms: [`FeedbackTracker`]
//! (the delivery-feedback / cellular-fallback path of §III-A),
//! [`RewardLedger`] (Karma-Go-style relay
//! incentives), and two harnesses — [`experiment`] for the paper's
//! controlled bench setups and [`world`] for full event-driven scenarios
//! with mobility and failures.
//!
//! # Quick start
//!
//! ```
//! use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
//!
//! // The paper's headline setup: one relay, one UE, 1 m apart,
//! // seven forwarded heartbeats.
//! let run = ControlledExperiment::new(ExperimentConfig {
//!     ue_count: 1,
//!     transmissions: 7,
//!     distance_m: 1.0,
//!     ..ExperimentConfig::default()
//! })
//! .run();
//!
//! let saved = run.system_saving();
//! assert!(saved > 0.2, "the D2D framework must beat per-device cellular");
//! ```

pub mod config;
pub mod delivery;
pub mod detector;
pub mod experiment;
pub mod feedback;
pub mod fleet;
pub mod hooks;
pub mod incentive;
pub mod invariant;
pub mod monitor;
pub mod scheduler;
pub mod world;

pub use config::FrameworkConfig;
pub use delivery::{BackoffPolicy, DeliveryLedger, DeliveryState, RetryReason};
pub use detector::{D2dDetector, MatchDecision, RelayAdvert};
pub use feedback::{FeedbackTracker, PendingForward};
pub use hooks::{NullHooks, ProtocolHooks};
pub use incentive::RewardLedger;
pub use invariant::{DeliveryAudit, DeviceProbe, InvariantChecker};
pub use monitor::MessageMonitor;
pub use scheduler::{FlushReason, MessageScheduler, ScheduleDecision, SchedulerStats};
