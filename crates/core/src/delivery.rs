//! Reliable end-to-end delivery: per-device ledger, bounded backoff.
//!
//! The paper's feedback loop (§III-A, [`crate::FeedbackTracker`]) is
//! one-shot: a missed feedback deadline retransmits once over cellular,
//! and a departing relay silently discards its buffered batch. The
//! [`DeliveryLedger`] upgrades that to an explicit state machine per
//! in-flight heartbeat — sent → d2d-acked → feedback-confirmed →
//! server-acked — with deadline-aware retransmission: a failed D2D
//! transfer or feedback miss retries over D2D under a deterministic
//! bounded exponential backoff ([`BackoffPolicy`]) while the heartbeat's
//! expiration `Tk` still permits it, then degrades to the cellular
//! fallback. Terminal outcomes (server-acked, expired, dropped-dead)
//! remove the entry and bump plain counters, so the ledger only ever
//! holds in-flight messages and memory stays bounded by the number of
//! outstanding heartbeats.
//!
//! The layer is opt-in (`ScenarioConfig::reliable_delivery`); when off,
//! the legacy one-shot behaviour is byte-identical and no retry RNG
//! draws happen, keeping the golden traces pinned by PR 2/3 untouched.

use std::collections::BTreeMap;

use hbr_apps::{Heartbeat, MessageId};
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};

/// Where an in-flight heartbeat sits in the delivery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryState {
    /// Emitted by the source; not yet across a D2D hop (or queued for
    /// the cellular path).
    Sent,
    /// The D2D transfer to a relay succeeded; the relay buffers it.
    D2dAcked,
    /// The relay's `Delivered` feedback confirmed the batch flush; the
    /// server verdict is what retires the entry.
    FeedbackConfirmed,
}

/// Why a retransmission was scheduled — labels for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryReason {
    /// The D2D transfer itself failed (loss, degrade, dead relay).
    TransferFailed,
    /// The relay's feedback deadline passed without confirmation.
    FeedbackTimeout,
    /// The relay departed with the heartbeat still buffered.
    RelayDeparted,
}

impl RetryReason {
    /// Short kebab-case label for metrics and event streams.
    pub fn label(self) -> &'static str {
        match self {
            RetryReason::TransferFailed => "transfer-failed",
            RetryReason::FeedbackTimeout => "feedback-timeout",
            RetryReason::RelayDeparted => "relay-departed",
        }
    }
}

/// One in-flight heartbeat tracked by the ledger.
#[derive(Debug, Clone)]
pub struct DeliveryEntry {
    /// The tracked heartbeat (owned copy — retries re-send this).
    pub heartbeat: Heartbeat,
    /// Current pipeline state.
    pub state: DeliveryState,
    /// D2D (re)transmission attempts consumed so far.
    pub attempts: u32,
    /// Relay handovers consumed so far (bounded to one hop).
    pub handovers: u32,
    /// The relay a retry must avoid (last one that failed us), if any.
    pub failed_relay: Option<DeviceId>,
    /// When the pending retry fires, if one is scheduled.
    pub next_retry: Option<SimTime>,
}

/// Deterministic bounded exponential backoff for D2D retransmissions.
///
/// Attempt `k` (1-based) waits `base · 2^(k−1)` capped at `cap`, plus a
/// jitter fraction drawn from the dedicated retry stream — drawn *only*
/// when a retry is actually scheduled, so clean runs consume zero draws.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-retry delay.
    pub base: SimDuration,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Maximum D2D retransmission attempts before degrading to cellular.
    pub max_attempts: u32,
    /// Jitter fraction applied to each delay (0 disables jitter).
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_secs(5),
            cap: SimDuration::from_secs(60),
            max_attempts: 3,
            jitter_frac: 0.2,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before attempt `attempt` (1-based). Draws one
    /// jitter sample from `rng` — the caller must pass the dedicated
    /// retry stream so clean runs stay draw-free.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(16);
        let raw = (self.base * (1u64 << shift)).min(self.cap);
        if self.jitter_frac > 0.0 {
            rng.jitter(raw, self.jitter_frac).min(self.cap)
        } else {
            raw
        }
    }
}

/// Terminal tallies the ledger keeps after entries retire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Heartbeats the server accepted (exactly-once goal).
    pub delivered: u64,
    /// Heartbeats that expired before any path could land them fresh.
    pub expired: u64,
    /// Heartbeats abandoned because their source died mid-flight.
    pub dropped_dead: u64,
    /// D2D retransmissions scheduled.
    pub retries: u64,
    /// Relay handovers performed.
    pub handovers: u64,
}

/// Per-device ledger of in-flight heartbeats.
///
/// # Examples
///
/// ```
/// use hbr_core::delivery::{DeliveryLedger, DeliveryState};
/// use hbr_apps::{AppId, MessageIdGen};
/// use hbr_sim::{DeviceId, SimTime};
///
/// let mut ids = MessageIdGen::new();
/// let hb = hbr_apps::Heartbeat {
///     id: ids.next_id(),
///     app: AppId::new(0),
///     source: DeviceId::new(0),
///     seq: 1,
///     size: 74,
///     created_at: SimTime::ZERO,
///     expires_at: SimTime::from_secs(810),
/// };
/// let mut ledger = DeliveryLedger::new();
/// ledger.track(hb);
/// assert_eq!(ledger.in_flight(), 1);
/// ledger.server_acked(hb.id);
/// assert_eq!(ledger.in_flight(), 0);
/// assert_eq!(ledger.stats().delivered, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeliveryLedger {
    entries: BTreeMap<MessageId, DeliveryEntry>,
    stats: DeliveryStats,
}

impl DeliveryLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        DeliveryLedger::default()
    }

    /// Starts tracking a freshly emitted heartbeat in [`DeliveryState::Sent`].
    pub fn track(&mut self, heartbeat: Heartbeat) {
        self.entries.insert(
            heartbeat.id,
            DeliveryEntry {
                heartbeat,
                state: DeliveryState::Sent,
                attempts: 0,
                handovers: 0,
                failed_relay: None,
                next_retry: None,
            },
        );
    }

    /// Marks a successful D2D hop (relay buffered the heartbeat).
    pub fn d2d_acked(&mut self, id: MessageId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.state = DeliveryState::D2dAcked;
            e.next_retry = None;
        }
    }

    /// Marks relay-feedback confirmation for each id.
    pub fn feedback_confirmed<I: IntoIterator<Item = MessageId>>(&mut self, ids: I) {
        for id in ids {
            if let Some(e) = self.entries.get_mut(&id) {
                e.state = DeliveryState::FeedbackConfirmed;
                e.next_retry = None;
            }
        }
    }

    /// Retires an entry the server accepted. Safe on unknown ids (the
    /// legacy path delivers heartbeats the ledger never tracked).
    pub fn server_acked(&mut self, id: MessageId) {
        if self.entries.remove(&id).is_some() {
            self.stats.delivered += 1;
        }
    }

    /// Retires an entry the server rejected as expired.
    pub fn expired(&mut self, id: MessageId) {
        if self.entries.remove(&id).is_some() {
            self.stats.expired += 1;
        }
    }

    /// Retires an entry whose source died mid-flight.
    pub fn dropped_dead(&mut self, id: MessageId) {
        if self.entries.remove(&id).is_some() {
            self.stats.dropped_dead += 1;
        }
    }

    /// Downgrades an entry back to [`DeliveryState::Sent`] after a relay
    /// failed it (departure or timeout), remembering the relay to avoid.
    pub fn relay_failed(&mut self, id: MessageId, relay: DeviceId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.state = DeliveryState::Sent;
            e.failed_relay = Some(relay);
        }
    }

    /// Decides whether another D2D attempt is worth scheduling at `now`:
    /// the attempt budget must allow it and the backed-off retry time
    /// must still leave [`margin`] before the heartbeat expires. On yes,
    /// bumps the attempt count, records the retry time and draws the
    /// jitter from `rng` (the dedicated retry stream). On no, the caller
    /// must degrade to the cellular fallback.
    pub fn plan_retry(
        &mut self,
        id: MessageId,
        now: SimTime,
        policy: &BackoffPolicy,
        margin: SimDuration,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        let e = self.entries.get_mut(&id)?;
        if e.attempts >= policy.max_attempts {
            return None;
        }
        let next_attempt = e.attempts + 1;
        let at = now + policy.delay(next_attempt, rng);
        // Budget against the *liveness* deadline, not message expiry: a
        // retry landing later can stretch the server's refresh gap past
        // its expiration window even though the message stays fresh.
        let latest_useful = e
            .heartbeat
            .liveness_deadline()
            .saturating_since(SimTime::ZERO)
            .saturating_sub(margin);
        if at > SimTime::ZERO + latest_useful {
            return None;
        }
        e.attempts = next_attempt;
        e.next_retry = Some(at);
        self.stats.retries += 1;
        Some(at)
    }

    /// [`DeliveryLedger::plan_retry`] with an observation hook. A
    /// planned retry is reported with its scheduled instant and the
    /// heartbeat's liveness deadline; a refusal (attempts exhausted or
    /// past the liveness budget) is reported as exhausted. RNG draws
    /// are identical to the plain variant: the hook observes only.
    pub fn plan_retry_with(
        &mut self,
        id: MessageId,
        now: SimTime,
        policy: &BackoffPolicy,
        margin: SimDuration,
        rng: &mut SimRng,
        hooks: &mut dyn crate::hooks::ProtocolHooks,
    ) -> Option<SimTime> {
        let planned = self.plan_retry(id, now, policy, margin, rng);
        match (planned, self.entries.get(&id)) {
            (Some(at), Some(e)) => {
                hooks.on_retry_planned(id, e.attempts, at, e.heartbeat.liveness_deadline());
            }
            (None, Some(e)) => hooks.on_retry_exhausted(id, e.attempts, now),
            _ => {}
        }
        planned
    }

    /// Consumes a handover credit (one hop max). Returns `true` if the
    /// entry may re-match a different relay.
    pub fn take_handover(&mut self, id: MessageId, max_handovers: u32) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) if e.handovers < max_handovers => {
                e.handovers += 1;
                self.stats.handovers += 1;
                true
            }
            _ => false,
        }
    }

    /// Pops every entry whose scheduled retry is due at `now`, clearing
    /// the timer (stale retry events are therefore harmless no-ops).
    pub fn take_due(&mut self, now: SimTime) -> Vec<Heartbeat> {
        let due: Vec<MessageId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.next_retry.is_some_and(|t| t <= now))
            .map(|(id, _)| *id)
            .collect();
        due.iter()
            .filter_map(|id| {
                let e = self.entries.get_mut(id)?;
                e.next_retry = None;
                Some(e.heartbeat)
            })
            .collect()
    }

    /// The earliest scheduled retry, if any — for event scheduling.
    pub fn next_retry(&self) -> Option<SimTime> {
        self.entries.values().filter_map(|e| e.next_retry).min()
    }

    /// The entry for `id`, if still in flight.
    pub fn entry(&self, id: MessageId) -> Option<&DeliveryEntry> {
        self.entries.get(&id)
    }

    /// How many heartbeats are currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Ids of the in-flight heartbeats — for conservation audits.
    pub fn in_flight_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.entries.keys().copied()
    }

    /// Terminal tallies.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_apps::{AppId, MessageIdGen};
    use hbr_sim::fault::retry_stream_seed;

    fn hb(ids: &mut MessageIdGen, expires: u64) -> Heartbeat {
        Heartbeat {
            id: ids.next_id(),
            app: AppId::new(0),
            source: DeviceId::new(0),
            seq: 1,
            size: 74,
            created_at: SimTime::ZERO,
            expires_at: SimTime::from_secs(expires),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from(retry_stream_seed(7))
    }

    #[test]
    fn states_advance_and_server_ack_retires() {
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids, 810);
        let mut l = DeliveryLedger::new();
        l.track(h);
        assert_eq!(l.entry(h.id).unwrap().state, DeliveryState::Sent);
        l.d2d_acked(h.id);
        assert_eq!(l.entry(h.id).unwrap().state, DeliveryState::D2dAcked);
        l.feedback_confirmed([h.id]);
        assert_eq!(
            l.entry(h.id).unwrap().state,
            DeliveryState::FeedbackConfirmed
        );
        l.server_acked(h.id);
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.stats().delivered, 1);
        // Retiring again is a no-op, not a double count.
        l.server_acked(h.id);
        assert_eq!(l.stats().delivered, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        let mut r = rng();
        assert_eq!(p.delay(1, &mut r), SimDuration::from_secs(5));
        assert_eq!(p.delay(2, &mut r), SimDuration::from_secs(10));
        assert_eq!(p.delay(3, &mut r), SimDuration::from_secs(20));
        assert_eq!(p.delay(10, &mut r), SimDuration::from_secs(60), "capped");
    }

    #[test]
    fn plan_retry_respects_attempt_budget_and_expiry() {
        let mut ids = MessageIdGen::new();
        let mut l = DeliveryLedger::new();
        let mut r = rng();
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        let margin = SimDuration::from_secs(8);

        let h = hb(&mut ids, 810);
        l.track(h);
        let now = SimTime::from_secs(100);
        let t1 = l.plan_retry(h.id, now, &p, margin, &mut r).unwrap();
        assert_eq!(t1, SimTime::from_secs(105));
        let t2 = l.plan_retry(h.id, t1, &p, margin, &mut r).unwrap();
        assert_eq!(t2, SimTime::from_secs(115));
        let t3 = l.plan_retry(h.id, t2, &p, margin, &mut r).unwrap();
        assert_eq!(t3, SimTime::from_secs(135));
        assert!(
            l.plan_retry(h.id, t3, &p, margin, &mut r).is_none(),
            "attempt budget exhausted"
        );
        assert_eq!(l.stats().retries, 3);

        // A heartbeat about to expire cannot be retried over D2D.
        let tight = hb(&mut ids, 110);
        l.track(tight);
        assert!(l
            .plan_retry(tight.id, SimTime::from_secs(100), &p, margin, &mut r)
            .is_none());
    }

    #[test]
    fn take_due_pops_only_due_retries_and_clears_timers() {
        let mut ids = MessageIdGen::new();
        let mut l = DeliveryLedger::new();
        let mut r = rng();
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        let a = hb(&mut ids, 810);
        let b = hb(&mut ids, 810);
        l.track(a);
        l.track(b);
        let m = SimDuration::from_secs(8);
        l.plan_retry(a.id, SimTime::from_secs(0), &p, m, &mut r);
        l.plan_retry(b.id, SimTime::from_secs(100), &p, m, &mut r);
        assert_eq!(l.next_retry(), Some(SimTime::from_secs(5)));
        let due = l.take_due(SimTime::from_secs(5));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, a.id);
        // The popped timer is cleared: a stale event finds nothing due.
        assert!(l.take_due(SimTime::from_secs(5)).is_empty());
        assert_eq!(l.next_retry(), Some(SimTime::from_secs(105)));
    }

    #[test]
    fn handover_credit_is_single_use() {
        let mut ids = MessageIdGen::new();
        let mut l = DeliveryLedger::new();
        let h = hb(&mut ids, 810);
        l.track(h);
        l.relay_failed(h.id, DeviceId::new(3));
        assert_eq!(l.entry(h.id).unwrap().failed_relay, Some(DeviceId::new(3)));
        assert_eq!(l.entry(h.id).unwrap().state, DeliveryState::Sent);
        assert!(l.take_handover(h.id, 1));
        assert!(!l.take_handover(h.id, 1), "one hop only");
        assert_eq!(l.stats().handovers, 1);
    }

    #[test]
    fn terminal_outcomes_are_mutually_exclusive() {
        let mut ids = MessageIdGen::new();
        let mut l = DeliveryLedger::new();
        let h = hb(&mut ids, 810);
        l.track(h);
        l.expired(h.id);
        l.dropped_dead(h.id);
        l.server_acked(h.id);
        let s = l.stats();
        assert_eq!((s.expired, s.dropped_dead, s.delivered), (1, 0, 0));
        assert_eq!(l.in_flight(), 0);
    }
}
