//! Relay incentives — the Karma-Go-style micro-payment ledger.
//!
//! §III-A: relays spend their own battery and data connection for the
//! common good, so the operator "could offer some rewards, such as
//! offering some free cellular data, or reducing the cost for their
//! service" per collected heartbeat — the same mechanism Karma Go uses
//! ($1 of credit per shared connection). [`RewardLedger`] does that
//! bookkeeping on the operator side and renders the balance the relay UI
//! of §III-D displays.

use std::collections::BTreeMap;

use hbr_sim::DeviceId;
use serde::{Deserialize, Serialize};

/// Operator-side reward accounting for every relay.
///
/// # Examples
///
/// ```
/// use hbr_core::RewardLedger;
/// use hbr_sim::DeviceId;
///
/// let mut ledger = RewardLedger::new(1);
/// ledger.credit_forwards(DeviceId::new(0), 7);
/// assert_eq!(ledger.balance(DeviceId::new(0)), 7);
/// assert_eq!(ledger.total_paid(), 7);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RewardLedger {
    reward_per_heartbeat: u64,
    balances: BTreeMap<DeviceId, u64>,
    forwards: BTreeMap<DeviceId, u64>,
}

impl RewardLedger {
    /// Creates a ledger paying `reward_per_heartbeat` credits per
    /// collected heartbeat.
    pub fn new(reward_per_heartbeat: u64) -> Self {
        RewardLedger {
            reward_per_heartbeat,
            balances: BTreeMap::new(),
            forwards: BTreeMap::new(),
        }
    }

    /// Credits a relay for `count` forwarded heartbeats.
    pub fn credit_forwards(&mut self, relay: DeviceId, count: u64) {
        *self.forwards.entry(relay).or_insert(0) += count;
        *self.balances.entry(relay).or_insert(0) += count * self.reward_per_heartbeat;
    }

    /// A relay's current credit balance.
    pub fn balance(&self, relay: DeviceId) -> u64 {
        self.balances.get(&relay).copied().unwrap_or(0)
    }

    /// Heartbeats a relay has been credited for.
    pub fn forwards(&self, relay: DeviceId) -> u64 {
        self.forwards.get(&relay).copied().unwrap_or(0)
    }

    /// Redeems up to `amount` credits from a relay's balance (exchanging
    /// for free data, §III-D UI). Returns the amount actually redeemed.
    pub fn redeem(&mut self, relay: DeviceId, amount: u64) -> u64 {
        let balance = self.balances.entry(relay).or_insert(0);
        let redeemed = amount.min(*balance);
        *balance -= redeemed;
        redeemed
    }

    /// Total credits the operator has paid out (including redeemed ones).
    pub fn total_paid(&self) -> u64 {
        self.forwards.values().sum::<u64>() * self.reward_per_heartbeat
    }

    /// Relays with any history, in id order, with `(balance, forwards)`.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, u64, u64)> + '_ {
        self.forwards.iter().map(move |(id, forwards)| {
            (*id, self.balances.get(id).copied().unwrap_or(0), *forwards)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_accumulate_per_relay() {
        let mut l = RewardLedger::new(2);
        l.credit_forwards(DeviceId::new(0), 3);
        l.credit_forwards(DeviceId::new(0), 4);
        l.credit_forwards(DeviceId::new(1), 1);
        assert_eq!(l.balance(DeviceId::new(0)), 14);
        assert_eq!(l.forwards(DeviceId::new(0)), 7);
        assert_eq!(l.balance(DeviceId::new(1)), 2);
        assert_eq!(l.total_paid(), 16);
        assert_eq!(l.balance(DeviceId::new(9)), 0);
    }

    #[test]
    fn redeem_clamps_to_balance() {
        let mut l = RewardLedger::new(1);
        l.credit_forwards(DeviceId::new(0), 5);
        assert_eq!(l.redeem(DeviceId::new(0), 3), 3);
        assert_eq!(l.balance(DeviceId::new(0)), 2);
        assert_eq!(l.redeem(DeviceId::new(0), 10), 2);
        assert_eq!(l.balance(DeviceId::new(0)), 0);
        // total_paid is historic, not reduced by redemption.
        assert_eq!(l.total_paid(), 5);
    }

    #[test]
    fn iter_lists_relays_in_order() {
        let mut l = RewardLedger::new(1);
        l.credit_forwards(DeviceId::new(2), 1);
        l.credit_forwards(DeviceId::new(0), 2);
        let rows: Vec<_> = l.iter().collect();
        assert_eq!(rows[0].0, DeviceId::new(0));
        assert_eq!(rows[1].0, DeviceId::new(2));
    }
}
