//! Framework-wide configuration.

use hbr_cellular::RrcConfig;
use hbr_d2d::TechProfile;
use hbr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunables of the relaying framework (§III).
///
/// # Examples
///
/// ```
/// use hbr_core::FrameworkConfig;
///
/// let cfg = FrameworkConfig::default();
/// assert_eq!(cfg.relay_capacity, 7);
/// assert!(cfg.max_match_distance_m > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkConfig {
    /// `M` of Table II: the maximum number of heartbeats a relay collects
    /// per period. The paper provides "a default value based on the
    /// experiments" — its multi-UE experiments top out at 7 UEs, which is
    /// the default here; relay owners may tune it to their battery budget.
    pub relay_capacity: usize,
    /// How long a UE waits for the relay's delivery feedback before
    /// re-sending its heartbeat over cellular (§III-A). Must exceed the
    /// relay period `T`: Algorithm 1 may delay a forwarded heartbeat up
    /// to `T` before the aggregated send, so a shorter timeout would
    /// trigger a spurious cellular fallback (and a duplicate delivery)
    /// for every single forward.
    pub feedback_timeout: SimDuration,
    /// Pre-judgment threshold (§III-C): relays estimated farther than
    /// this are not matched, because disconnection and transfer energy
    /// grow with distance (Fig. 12 shows D2D losing beyond ~15 m).
    pub max_match_distance_m: f64,
    /// Perform the energy pre-judgment: skip D2D when the predicted
    /// session energy exceeds direct cellular.
    pub energy_prejudgment: bool,
    /// The reward (in operator credits) a relay earns per forwarded
    /// heartbeat (§III-A's Karma-Go-style incentive).
    pub reward_per_heartbeat: u64,
    /// Keep Algorithm 1's expiration clause enabled. Disabling it is an
    /// ablation: relays then hold messages to the period end even when
    /// that breaches their expiration budgets.
    pub expiry_guard: bool,
    /// UE-side delegation policy: only hand a heartbeat to a relay when
    /// its expiration budget covers the relay's full aggregation window
    /// (plus a cushion). This is the operational meaning of the paper's
    /// §VII constraint that forwarded messages be "delay-tolerant" —
    /// without it, messages with expirations shorter than the relay
    /// period stay fresh individually but the *delivery-delay jitter*
    /// between early and late flushes makes server presence flap.
    pub delegation_slack_check: bool,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            relay_capacity: 7,
            feedback_timeout: SimDuration::from_secs(300),
            max_match_distance_m: 15.0,
            energy_prejudgment: true,
            reward_per_heartbeat: 1,
            expiry_guard: true,
            delegation_slack_check: true,
        }
    }
}

impl FrameworkConfig {
    /// Validates the configuration, panicking on nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero, the feedback timeout is zero, or
    /// the match distance is not positive and finite.
    pub fn validate(&self) {
        assert!(self.relay_capacity > 0, "relay capacity must be positive");
        assert!(
            !self.feedback_timeout.is_zero(),
            "feedback timeout must be positive"
        );
        assert!(
            self.max_match_distance_m.is_finite() && self.max_match_distance_m > 0.0,
            "max match distance must be positive and finite"
        );
    }
}

/// The technology/radio stack a scenario runs on: one D2D technique plus
/// one cellular configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioStack {
    /// The D2D technique used for forwarding (the prototype: Wi-Fi Direct).
    pub d2d: TechProfile,
    /// The cellular network model (the paper measured WCDMA).
    pub cellular: RrcConfig,
}

impl Default for RadioStack {
    fn default() -> Self {
        RadioStack {
            d2d: TechProfile::wifi_direct(),
            cellular: RrcConfig::wcdma_galaxy_s4(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        FrameworkConfig::default().validate();
        let stack = RadioStack::default();
        assert_eq!(stack.d2d.technology, hbr_d2d::D2dTechnology::WifiDirect);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        FrameworkConfig {
            relay_capacity: 0,
            ..FrameworkConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "timeout")]
    fn zero_timeout_rejected() {
        FrameworkConfig {
            feedback_timeout: SimDuration::ZERO,
            ..FrameworkConfig::default()
        }
        .validate();
    }
}
