//! Fleet construction: reproducible crowds of devices for scenarios.
//!
//! The evaluation keeps building the same shape of world — N phones in
//! an area, a fraction volunteering as relays, realistic app mixes, a
//! few pedestrians wandering. [`FleetBuilder`] centralises that so
//! examples, experiments and tests assemble identical crowds from a
//! handful of knobs.

use hbr_apps::AppProfile;
use hbr_mobility::model::Bounds;
use hbr_mobility::{Mobility, Position};
use hbr_sim::SimRng;

use crate::world::{DeviceSpec, Role};

/// Builds a reproducible crowd of [`DeviceSpec`]s.
///
/// # Examples
///
/// ```
/// use hbr_core::fleet::FleetBuilder;
///
/// let devices = FleetBuilder::new(20, 4)
///     .area_side_m(30.0)
///     .walker_share(0.1)
///     .build(42);
/// assert_eq!(devices.len(), 20);
/// assert_eq!(
///     devices.iter().filter(|d| d.role == hbr_core::world::Role::Relay).count(),
///     4
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    phones: usize,
    relays: usize,
    area_side_m: f64,
    walker_share: f64,
    battery_mah: Option<f64>,
    apps: Vec<Vec<AppProfile>>,
}

impl FleetBuilder {
    /// A fleet of `phones` devices, the first `relays` of which volunteer
    /// as relays.
    ///
    /// # Panics
    ///
    /// Panics if `phones` is zero or `relays > phones`.
    pub fn new(phones: usize, relays: usize) -> Self {
        assert!(phones > 0, "a fleet needs at least one phone");
        assert!(relays <= phones, "cannot have more relays than phones");
        FleetBuilder {
            phones,
            relays,
            area_side_m: 40.0,
            walker_share: 0.1,
            battery_mah: None,
            apps: vec![
                vec![AppProfile::wechat()],
                vec![AppProfile::whatsapp()],
                vec![AppProfile::wechat(), AppProfile::qq()],
            ],
        }
    }

    /// Side length of the square deployment area, metres.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not positive and finite.
    pub fn area_side_m(mut self, side: f64) -> Self {
        assert!(side.is_finite() && side > 0.0, "area side must be positive");
        self.area_side_m = side;
        self
    }

    /// Fraction of devices that wander (random waypoint) instead of
    /// standing still. Clamped to `[0, 1]`.
    pub fn walker_share(mut self, share: f64) -> Self {
        self.walker_share = share.clamp(0.0, 1.0);
        self
    }

    /// Gives every device a finite battery of this many mAh.
    pub fn battery_mah(mut self, mah: f64) -> Self {
        self.battery_mah = Some(mah);
        self
    }

    /// Replaces the rotation of app bundles devices cycle through.
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty or contains an empty bundle.
    pub fn app_mixes(mut self, mixes: Vec<Vec<AppProfile>>) -> Self {
        assert!(!mixes.is_empty(), "need at least one app mix");
        assert!(
            mixes.iter().all(|m| !m.is_empty()),
            "every app mix needs at least one app"
        );
        self.apps = mixes;
        self
    }

    /// Materialises the fleet deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Vec<DeviceSpec> {
        let mut rng = SimRng::seed_from(seed);
        let bounds = Bounds::square(self.area_side_m);
        let margin = (self.area_side_m * 0.05).min(2.0);
        let lo = margin;
        let hi = self.area_side_m - margin;
        (0..self.phones)
            .map(|i| {
                let x = rng.range(lo..hi);
                let y = rng.range(lo..hi);
                let walker = rng.unit() < self.walker_share;
                let mobility = if walker {
                    Mobility::random_waypoint(Position::new(x, y), bounds, 0.5, 1.2, 60.0)
                } else {
                    Mobility::stationary(Position::new(x, y))
                };
                DeviceSpec {
                    role: if i < self.relays {
                        Role::Relay
                    } else {
                        Role::Ue
                    },
                    apps: self.apps[i % self.apps.len()].clone(),
                    mobility,
                    battery_mah: self.battery_mah,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_requested_shape() {
        let fleet = FleetBuilder::new(10, 3).build(1);
        assert_eq!(fleet.len(), 10);
        assert_eq!(fleet.iter().filter(|d| d.role == Role::Relay).count(), 3);
        assert!(fleet.iter().all(|d| !d.apps.is_empty()));
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = FleetBuilder::new(15, 2).build(9);
        let b = FleetBuilder::new(15, 2).build(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mobility.position(), y.mobility.position());
            assert_eq!(x.role, y.role);
        }
        let c = FleetBuilder::new(15, 2).build(10);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.mobility.position() != y.mobility.position()),
            "different seeds must place devices differently"
        );
    }

    #[test]
    fn positions_respect_the_area() {
        let side = 25.0;
        let fleet = FleetBuilder::new(50, 5).area_side_m(side).build(3);
        for spec in &fleet {
            let p = spec.mobility.position();
            assert!((0.0..=side).contains(&p.x) && (0.0..=side).contains(&p.y));
        }
    }

    #[test]
    fn walker_share_extremes() {
        let none = FleetBuilder::new(20, 2).walker_share(0.0).build(4);
        // With share 0, every device must be stationary: advancing time
        // never moves anyone.
        for spec in none {
            let mut m = spec.mobility.clone();
            let mut rng = SimRng::seed_from(1);
            let before = m.position();
            m.advance_to(hbr_sim::SimTime::from_secs(600), &mut rng);
            assert_eq!(m.position(), before);
        }
    }

    #[test]
    fn batteries_apply_to_all() {
        let fleet = FleetBuilder::new(5, 1).battery_mah(1000.0).build(2);
        assert!(fleet.iter().all(|d| d.battery_mah == Some(1000.0)));
    }

    #[test]
    #[should_panic(expected = "more relays")]
    fn too_many_relays_rejected() {
        FleetBuilder::new(3, 4);
    }
}
