//! Table-driven coverage of Algorithm 1's three flush conditions.
//!
//! The paper's pend condition is `k < M && t − t_k < T_k && t < T`
//! (§III-C): keep buffering while the buffer is under capacity `M`, no
//! collected heartbeat is within `margin` of its expiration `T_k`, and
//! the relay period `T` has not elapsed. Each table row drives one exact
//! boundary of one clause — one tick early must pend, the boundary tick
//! itself must flush with the right [`FlushReason`] — plus the
//! `without_expiry_guard` ablation and the priority between reasons when
//! two conditions coincide.

use hbr_apps::{AppId, Heartbeat, MessageIdGen};
use hbr_core::{FlushReason, MessageScheduler, ScheduleDecision};
use hbr_sim::{DeviceId, SimDuration, SimTime};

const PERIOD: u64 = 270;
const MARGIN: u64 = 5;

fn hb(ids: &mut MessageIdGen, created_s: u64, expires_s: u64) -> Heartbeat {
    Heartbeat {
        id: ids.next_id(),
        app: AppId::new(0),
        source: DeviceId::new(1),
        seq: 0,
        size: 74,
        created_at: SimTime::from_secs(created_s),
        expires_at: SimTime::from_secs(expires_s),
    }
}

fn scheduler(capacity: usize) -> MessageScheduler {
    MessageScheduler::new(
        capacity,
        SimDuration::from_secs(PERIOD),
        SimDuration::from_secs(MARGIN),
        SimTime::ZERO,
    )
}

/// One arrival in a scripted scenario: hand the scheduler a heartbeat at
/// `at` expiring at `expires`, and demand this decision back.
struct Arrival {
    at: u64,
    expires: u64,
    expect: ScheduleDecision,
}

/// One table row: a capacity, an arrival script, then a `flush_due`
/// probe at `probe_at` expecting `probe_expect`.
struct Case {
    name: &'static str,
    capacity: usize,
    without_guard: bool,
    arrivals: &'static [Arrival],
    probe_at: u64,
    probe_expect: Option<FlushReason>,
}

const FAR: u64 = 10_000; // an expiry that never interferes

const CASES: &[Case] = &[
    Case {
        name: "capacity: M-1 arrivals pend, the M-th flushes",
        capacity: 3,
        without_guard: false,
        arrivals: &[
            Arrival {
                at: 10,
                expires: FAR,
                expect: ScheduleDecision::Pend,
            },
            Arrival {
                at: 20,
                expires: FAR,
                expect: ScheduleDecision::Pend,
            },
            Arrival {
                at: 30,
                expires: FAR,
                expect: ScheduleDecision::Flush(FlushReason::CapacityReached),
            },
        ],
        probe_at: 30,
        probe_expect: None, // flush_due never reports capacity; arrival does
    },
    Case {
        name: "expiry: margin boundary is inclusive (now + margin == T_k flushes)",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 10,
            expires: 100,
            expect: ScheduleDecision::Pend,
        }],
        // 95 + margin 5 == 100 exactly: the boundary tick must fire.
        probe_at: 95,
        probe_expect: Some(FlushReason::ExpirationImminent),
    },
    Case {
        name: "expiry: one tick before the margin boundary pends",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 10,
            expires: 100,
            expect: ScheduleDecision::Pend,
        }],
        probe_at: 94,
        probe_expect: None,
    },
    Case {
        name: "expiry: arrival already inside the margin flushes immediately",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 98,
            expires: 100,
            expect: ScheduleDecision::Flush(FlushReason::ExpirationImminent),
        }],
        probe_at: 98,
        probe_expect: Some(FlushReason::ExpirationImminent),
    },
    Case {
        name: "period: boundary is inclusive (now == period_start + T flushes)",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 10,
            expires: FAR,
            expect: ScheduleDecision::Pend,
        }],
        probe_at: PERIOD,
        probe_expect: Some(FlushReason::PeriodElapsed),
    },
    Case {
        name: "period: one tick before the period deadline pends",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 10,
            expires: FAR,
            expect: ScheduleDecision::Pend,
        }],
        probe_at: PERIOD - 1,
        probe_expect: None,
    },
    Case {
        name: "period: empty buffer still flushes at the period deadline",
        capacity: 10,
        without_guard: false,
        arrivals: &[],
        probe_at: PERIOD,
        probe_expect: Some(FlushReason::PeriodElapsed),
    },
    Case {
        name: "ablation: without_expiry_guard ignores the margin boundary",
        capacity: 10,
        without_guard: true,
        arrivals: &[Arrival {
            at: 10,
            expires: 100,
            expect: ScheduleDecision::Pend,
        }],
        probe_at: 95,
        probe_expect: None,
    },
    Case {
        name: "ablation: without_expiry_guard still honours the period",
        capacity: 10,
        without_guard: true,
        arrivals: &[Arrival {
            at: 10,
            expires: 100,
            expect: ScheduleDecision::Pend,
        }],
        probe_at: PERIOD,
        probe_expect: Some(FlushReason::PeriodElapsed),
    },
    Case {
        name: "ablation: without_expiry_guard still flushes on capacity",
        capacity: 2,
        without_guard: true,
        arrivals: &[
            Arrival {
                at: 10,
                expires: 100,
                expect: ScheduleDecision::Pend,
            },
            Arrival {
                at: 20,
                expires: 100,
                expect: ScheduleDecision::Flush(FlushReason::CapacityReached),
            },
        ],
        probe_at: 20,
        probe_expect: None,
    },
    Case {
        name: "priority: capacity beats expiration when both hold on arrival",
        capacity: 1,
        without_guard: false,
        arrivals: &[Arrival {
            // Fills the buffer to M = 1 *and* is already inside the
            // margin; on_arrival checks capacity first.
            at: 98,
            expires: 100,
            expect: ScheduleDecision::Flush(FlushReason::CapacityReached),
        }],
        probe_at: 98,
        probe_expect: Some(FlushReason::ExpirationImminent),
    },
    Case {
        name: "priority: period beats expiration when flush_due sees both",
        capacity: 10,
        without_guard: false,
        arrivals: &[Arrival {
            at: 10,
            expires: PERIOD + 2, // margin boundary at PERIOD − 3 < probe
            expect: ScheduleDecision::Pend,
        }],
        probe_at: PERIOD,
        probe_expect: Some(FlushReason::PeriodElapsed),
    },
];

#[test]
fn algorithm1_flush_table() {
    for case in CASES {
        let mut s = scheduler(case.capacity);
        if case.without_guard {
            s = s.without_expiry_guard();
        }
        let mut ids = MessageIdGen::new();
        for arrival in case.arrivals {
            let got = s.on_arrival(
                SimTime::from_secs(arrival.at),
                hb(&mut ids, arrival.at, arrival.expires),
            );
            assert_eq!(
                got, arrival.expect,
                "{}: arrival at t={} expected {:?}, got {:?}",
                case.name, arrival.at, arrival.expect, got
            );
        }
        let got = s.flush_due(SimTime::from_secs(case.probe_at));
        assert_eq!(
            got, case.probe_expect,
            "{}: flush_due at t={} expected {:?}, got {:?}",
            case.name, case.probe_at, case.probe_expect, got
        );
    }
}

#[test]
fn literal_algorithm1_agrees_with_flush_due_at_zero_margin() {
    // `algorithm1_pending` is the paper's condition verbatim, which has
    // no delivery margin; with margin 0 the event-driven `flush_due`
    // must agree with it tick for tick across every boundary.
    let mut ids = MessageIdGen::new();
    for expires in [100u64, PERIOD, PERIOD + 50] {
        let mut s = MessageScheduler::new(
            10,
            SimDuration::from_secs(PERIOD),
            SimDuration::ZERO,
            SimTime::ZERO,
        );
        s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, expires));
        for probe in [50, expires - 1, expires, PERIOD - 1, PERIOD, PERIOD + 1] {
            let now = SimTime::from_secs(probe);
            assert_eq!(
                s.algorithm1_pending(now),
                s.flush_due(now).is_none(),
                "literal Algorithm 1 disagrees with flush_due at t={probe} (expiry {expires})"
            );
        }
    }
}

#[test]
fn flush_boundary_is_exact_to_the_microsecond() {
    // The margin comparison is `now + margin >= expires` over SimTime's
    // full microsecond resolution, not whole seconds: one tick under the
    // boundary still pends.
    let mut s = scheduler(10);
    let mut ids = MessageIdGen::new();
    s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 100));
    let boundary = SimTime::from_secs(95);
    let just_before = SimTime::ZERO
        + boundary
            .saturating_since(SimTime::ZERO)
            .saturating_sub(SimDuration::from_micros(1));
    assert_eq!(s.flush_due(just_before), None);
    assert_eq!(s.flush_due(boundary), Some(FlushReason::ExpirationImminent));
}

#[test]
fn next_deadline_matches_the_firing_boundary() {
    // next_deadline is where the engine schedules its flush event; the
    // scheduler must actually fire there and not one tick earlier.
    let mut s = scheduler(10);
    let mut ids = MessageIdGen::new();
    s.on_arrival(SimTime::from_secs(10), hb(&mut ids, 10, 120));
    let deadline = s.next_deadline();
    assert_eq!(deadline, SimTime::from_secs(115));
    let just_before = SimTime::ZERO
        + deadline
            .saturating_since(SimTime::ZERO)
            .saturating_sub(SimDuration::from_micros(1));
    assert_eq!(s.flush_due(just_before), None, "must not fire early");
    assert!(
        s.flush_due(deadline).is_some(),
        "must fire at its own deadline"
    );
}
