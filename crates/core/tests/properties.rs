//! Property tests: Algorithm 1 and the feedback loop never violate their
//! contracts, whatever the arrival pattern.

use hbr_apps::{AppId, Heartbeat, MessageIdGen};
use hbr_core::{FeedbackTracker, FlushReason, MessageScheduler, ScheduleDecision};
use hbr_sim::{DeviceId, SimDuration, SimTime};
use proptest::prelude::*;

fn hb(ids: &mut MessageIdGen, created_s: u64, ttl_s: u64) -> Heartbeat {
    Heartbeat {
        id: ids.next_id(),
        app: AppId::new(0),
        source: DeviceId::new(1),
        seq: 0,
        size: 54,
        created_at: SimTime::from_secs(created_s),
        expires_at: SimTime::from_secs(created_s + ttl_s),
    }
}

proptest! {
    /// The buffer never holds more than the capacity M, and the scheduler
    /// demands a flush exactly when the M-th message arrives.
    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1usize..10,
        arrivals in proptest::collection::vec((0u64..260, 100u64..2000), 1..40),
    ) {
        let mut s = MessageScheduler::new(
            capacity,
            SimDuration::from_secs(270),
            SimDuration::from_secs(5),
            SimTime::ZERO,
        );
        let mut ids = MessageIdGen::new();
        let mut sorted = arrivals.clone();
        sorted.sort();
        for (at, ttl) in sorted {
            if !s.is_collecting() {
                break;
            }
            let decision = s.on_arrival(SimTime::from_secs(at), hb(&mut ids, at, ttl));
            prop_assert!(s.collected() <= capacity);
            if s.collected() == capacity {
                prop_assert_eq!(decision, ScheduleDecision::Flush(FlushReason::CapacityReached));
                let batch = s.take_batch();
                prop_assert_eq!(batch.len(), capacity);
            }
        }
    }

    /// The scheduler's flush deadline never lets a buffered heartbeat
    /// expire: deadline + margin ≤ every buffered expiry, and deadline ≤
    /// period end.
    #[test]
    fn deadline_never_breaches_expiry(
        arrivals in proptest::collection::vec((0u64..260, 30u64..2000), 1..20),
    ) {
        let margin = SimDuration::from_secs(5);
        let mut s = MessageScheduler::new(100, SimDuration::from_secs(270), margin, SimTime::ZERO);
        let mut ids = MessageIdGen::new();
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut expiries = Vec::new();
        for (at, ttl) in sorted {
            let h = hb(&mut ids, at, ttl);
            expiries.push(h.expires_at);
            let decision = s.on_arrival(SimTime::from_secs(at), h);
            if decision != ScheduleDecision::Pend {
                break;
            }
            let deadline = s.next_deadline();
            prop_assert!(deadline <= s.period_deadline());
            for e in &expiries {
                prop_assert!(
                    deadline + margin <= *e || *e < SimTime::from_secs(at) + margin,
                    "deadline {deadline} breaches expiry {e}"
                );
            }
        }
    }

    /// take_batch always returns exactly the accepted arrivals, in order,
    /// and nothing is ever silently dropped.
    #[test]
    fn batch_conserves_messages(
        arrivals in proptest::collection::vec(0u64..260, 1..30),
    ) {
        let mut s = MessageScheduler::new(
            usize::MAX >> 1,
            SimDuration::from_secs(270),
            SimDuration::from_secs(5),
            SimTime::ZERO,
        );
        let mut ids = MessageIdGen::new();
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut accepted = Vec::new();
        for at in sorted {
            let h = hb(&mut ids, at, 3000);
            if s.on_arrival(SimTime::from_secs(at), h) != ScheduleDecision::Rejected {
                accepted.push(h.id);
            }
        }
        let batch = s.take_batch();
        let batch_ids: Vec<_> = batch.iter().map(|h| h.id).collect();
        prop_assert_eq!(batch_ids, accepted);
        prop_assert!(!s.is_collecting());
        prop_assert_eq!(s.collected(), 0);
    }

    /// Every forwarded heartbeat is either confirmed or falls back —
    /// never both, never neither (once its deadline passes).
    #[test]
    fn feedback_partition(
        n in 1usize..50,
        confirm_mask in proptest::collection::vec(any::<bool>(), 1..50),
    ) {
        let mut tracker = FeedbackTracker::new(SimDuration::from_secs(300));
        let mut ids = MessageIdGen::new();
        let mut all = Vec::new();
        for i in 0..n {
            let h = hb(&mut ids, i as u64, 900);
            tracker.on_forward(h, SimTime::from_secs(i as u64));
            all.push(h.id);
        }
        let confirmed: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| *confirm_mask.get(i % confirm_mask.len()).unwrap_or(&false))
            .map(|(_, id)| *id)
            .collect();
        let hits = tracker.on_delivered(confirmed.iter().copied());
        prop_assert_eq!(hits, confirmed.len());

        let rescued = tracker.expire_due(SimTime::from_secs(100_000));
        prop_assert_eq!(rescued.len() + confirmed.len(), n);
        for r in &rescued {
            prop_assert!(!confirmed.contains(&r.heartbeat.id));
        }
        prop_assert_eq!(tracker.pending_count(), 0);
    }

    /// The literal Algorithm 1 predicate agrees with the event-driven
    /// deadline: pending holds strictly before the deadline and fails at
    /// or after it (modulo the delivery margin).
    #[test]
    fn algorithm1_agrees_with_deadline(
        arrivals in proptest::collection::vec((0u64..200, 300u64..1000), 1..10),
        probe in 0u64..600,
    ) {
        let mut s = MessageScheduler::new(
            1000,
            SimDuration::from_secs(270),
            SimDuration::ZERO, // no margin → literal equivalence
            SimTime::ZERO,
        );
        let mut ids = MessageIdGen::new();
        let mut sorted = arrivals.clone();
        sorted.sort();
        for (at, ttl) in sorted {
            s.on_arrival(SimTime::from_secs(at), hb(&mut ids, at, ttl));
        }
        let t = SimTime::from_secs(probe.max(201));
        let deadline = s.next_deadline();
        prop_assert_eq!(
            s.algorithm1_pending(t),
            t < deadline,
            "probe {} vs deadline {}", t, deadline
        );
    }
}
