//! The strategy implementations and their common evaluation engine.

use hbr_apps::{AppProfile, TrafficEvent, TrafficGenerator};
use hbr_cellular::{CellularRadio, RrcConfig};
use hbr_d2d::{D2dRole, TechProfile};
use hbr_energy::EnergyMeter;
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A reproducible single-device workload: one app's heartbeat stream,
/// optionally mixed with its foreground traffic.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The application generating traffic.
    pub app: AppProfile,
    /// Scenario length.
    pub duration: SimDuration,
    /// Workload seed.
    pub seed: u64,
    /// Include Table-I-calibrated foreground data messages.
    pub include_foreground: bool,
    /// Cellular model strategies run on.
    pub cellular: RrcConfig,
}

impl Workload {
    /// A pure heartbeat stream — the paper's §V setting.
    pub fn heartbeats_only(app: AppProfile, duration_secs: u64, seed: u64) -> Self {
        Workload {
            app,
            duration: SimDuration::from_secs(duration_secs),
            seed,
            include_foreground: false,
            cellular: RrcConfig::wcdma_galaxy_s4(),
        }
    }

    /// Heartbeats plus foreground data in the app's Table I proportion.
    pub fn mixed(app: AppProfile, duration_secs: u64, seed: u64) -> Self {
        Workload {
            include_foreground: true,
            ..Workload::heartbeats_only(app, duration_secs, seed)
        }
    }

    /// Materialises the deterministic event trace.
    pub fn events(&self) -> Vec<TrafficEvent> {
        let mut generator = TrafficGenerator::new(DeviceId::new(0), self.app.clone());
        let mut rng = SimRng::seed_from(self.seed);
        let end = SimTime::ZERO + self.duration;
        let mut events = generator.trace_until(end, &mut rng);
        if !self.include_foreground {
            events.retain(TrafficEvent::is_heartbeat);
        }
        events
    }
}

/// What one strategy did to one device over one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy name for report rows.
    pub name: String,
    /// Device energy over the workload, µAh.
    pub device_energy_uah: f64,
    /// Layer-3 messages this device caused.
    pub l3_messages: u64,
    /// RRC connections this device established.
    pub rrc_connections: u64,
    /// Individual cellular transmissions performed.
    pub cellular_transmissions: u64,
    /// Heartbeat refreshes that reached the server.
    pub heartbeats_delivered: u64,
    /// Largest gap between consecutive server refreshes, seconds.
    pub max_presence_gap_secs: f64,
    /// Seconds the session appeared offline (gap beyond the server's
    /// expiration timer).
    pub offline_secs: f64,
}

/// A heartbeat-handling strategy evaluated on a [`Workload`].
pub trait Strategy {
    /// Human-readable name for report rows.
    fn name(&self) -> &str;

    /// Runs the strategy over the workload.
    fn run(&self, workload: &Workload) -> StrategyOutcome;
}

/// One cellular transmission planned by a strategy.
#[derive(Debug, Clone, Copy)]
struct PlannedTx {
    at: SimTime,
    bytes: usize,
}

/// Executes planned transmissions on a fresh radio and computes the
/// outcome row. `refresh_times` are the instants the server's expiration
/// timer was reset (independent from transmission times for strategies
/// that delay or forward heartbeats).
fn execute(
    name: &str,
    workload: &Workload,
    cfg: &RrcConfig,
    planned: &[PlannedTx],
    refresh_times: &[SimTime],
    extra_l3_per_tx: u64,
    extra_energy_uah: f64,
) -> StrategyOutcome {
    let mut radio = CellularRadio::new(cfg.clone());
    let mut meter = EnergyMeter::new();
    let mut l3 = 0u64;
    let mut transmissions = 0u64;
    let mut last = SimTime::ZERO;
    let mut planned: Vec<PlannedTx> = planned.to_vec();
    planned.sort_by_key(|tx| tx.at);
    for tx in &planned {
        // The radio serialises: a transfer requested while the previous
        // one is still in the air queues behind it.
        let at = tx.at.max(last);
        let out = radio.transmit(at, tx.bytes);
        for (s, seg) in &out.activity.segments {
            meter.add_segment(*s, *seg);
        }
        l3 += out.activity.messages.len() as u64 + extra_l3_per_tx;
        transmissions += 1;
        last = out.delivered_at;
    }
    let tail = radio.finalize(last + SimDuration::from_secs(60));
    for (s, seg) in &tail.segments {
        meter.add_segment(*s, *seg);
    }
    l3 += tail.messages.len() as u64;

    let (max_gap, offline) =
        presence_stats(refresh_times, workload.app.expiration, workload.duration);

    StrategyOutcome {
        name: name.to_owned(),
        device_energy_uah: meter.total().as_micro_amp_hours() + extra_energy_uah,
        l3_messages: l3,
        rrc_connections: radio.connections(),
        cellular_transmissions: transmissions,
        heartbeats_delivered: refresh_times.len() as u64,
        max_presence_gap_secs: max_gap,
        offline_secs: offline,
    }
}

/// Largest refresh gap and total offline time for a refresh sequence,
/// assuming the session was fresh at `t = 0`.
fn presence_stats(
    refreshes: &[SimTime],
    expiration: SimDuration,
    duration: SimDuration,
) -> (f64, f64) {
    let mut sorted: Vec<SimTime> = refreshes.to_vec();
    sorted.sort();
    let mut max_gap = 0.0f64;
    let mut offline = 0.0f64;
    let mut prev = SimTime::ZERO;
    let end = SimTime::ZERO + duration;
    for &r in sorted.iter().chain(std::iter::once(&end)) {
        let r = r.min(end);
        if let Some(gap) = r.checked_since(prev) {
            max_gap = max_gap.max(gap.as_secs_f64());
            let over = gap.as_secs_f64() - expiration.as_secs_f64();
            if over > 0.0 {
                offline += over;
            }
            prev = r;
        }
    }
    (max_gap, offline)
}

/// The unmodified system: every message is a cellular transmission.
#[derive(Debug, Clone, Copy, Default)]
pub struct Original;

impl Strategy for Original {
    fn name(&self) -> &str {
        "original"
    }

    fn run(&self, workload: &Workload) -> StrategyOutcome {
        let mut planned = Vec::new();
        let mut refreshes = Vec::new();
        for event in workload.events() {
            match event {
                TrafficEvent::Heartbeat(hb) => {
                    planned.push(PlannedTx {
                        at: hb.created_at,
                        bytes: hb.size,
                    });
                    refreshes.push(hb.created_at);
                }
                TrafficEvent::Data { at, size } => planned.push(PlannedTx { at, bytes: size }),
            }
        }
        execute(
            self.name(),
            workload,
            &workload.cellular,
            &planned,
            &refreshes,
            0,
            0.0,
        )
    }
}

/// Multiply the heartbeat period by `factor` (send every `factor`-th
/// heartbeat). Factors beyond the server's expiration budget make the
/// session flap — that is exactly why §III rejects this approach: "the
/// reduction will impact the instantaneity of these IM apps".
#[derive(Debug, Clone, Copy)]
pub struct ExtendedPeriod {
    /// Period multiplier (≥ 1).
    pub factor: u32,
}

impl Strategy for ExtendedPeriod {
    fn name(&self) -> &str {
        "extended-period"
    }

    fn run(&self, workload: &Workload) -> StrategyOutcome {
        let mut planned = Vec::new();
        let mut refreshes = Vec::new();
        let mut hb_index = 0u32;
        for event in workload.events() {
            match event {
                TrafficEvent::Heartbeat(hb) => {
                    if hb_index.is_multiple_of(self.factor.max(1)) {
                        planned.push(PlannedTx {
                            at: hb.created_at,
                            bytes: hb.size,
                        });
                        refreshes.push(hb.created_at);
                    }
                    hb_index += 1;
                }
                TrafficEvent::Data { at, size } => planned.push(PlannedTx { at, bytes: size }),
            }
        }
        execute(
            self.name(),
            workload,
            &workload.cellular,
            &planned,
            &refreshes,
            0,
            0.0,
        )
    }
}

/// Delay each heartbeat up to `window`, hoping a foreground transfer
/// opens an RRC connection it can ride for free (Qian et al., §I/§VI).
#[derive(Debug, Clone, Copy)]
pub struct Piggyback {
    /// Maximum heartbeat delay.
    pub window: SimDuration,
}

impl Strategy for Piggyback {
    fn name(&self) -> &str {
        "piggyback"
    }

    fn run(&self, workload: &Workload) -> StrategyOutcome {
        let mut planned: Vec<PlannedTx> = Vec::new();
        let mut refreshes = Vec::new();
        let mut pending_hb: Option<(SimTime, usize)> = None; // (created, size)
        for event in workload.events() {
            // Flush a pending heartbeat whose window expired before this event.
            if let Some((created, size)) = pending_hb {
                let deadline = created + self.window;
                if event.at() > deadline {
                    planned.push(PlannedTx {
                        at: deadline,
                        bytes: size,
                    });
                    refreshes.push(deadline);
                    pending_hb = None;
                }
            }
            match event {
                TrafficEvent::Heartbeat(hb) => {
                    // A heartbeat arriving while one is pending supersedes it
                    // (only the newest refresh matters to the server).
                    pending_hb = Some((hb.created_at, hb.size));
                }
                TrafficEvent::Data { at, size } => {
                    let bytes = match pending_hb.take() {
                        Some((_, hb_size)) => {
                            refreshes.push(at); // the heartbeat rides along
                            size + hb_size
                        }
                        None => size,
                    };
                    planned.push(PlannedTx { at, bytes });
                }
            }
        }
        if let Some((created, size)) = pending_hb {
            let at = created + self.window;
            planned.push(PlannedTx { at, bytes: size });
            refreshes.push(at);
        }
        execute(
            self.name(),
            workload,
            &workload.cellular,
            &planned,
            &refreshes,
            0,
            0.0,
        )
    }
}

/// Release the RRC connection immediately after every transfer
/// (RadioJockey-style fast dormancy): the tail energy disappears, but
/// every message pays full establishment signaling plus the release
/// indication — "saves energy with higher signaling overhead" (§VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastDormancy;

impl Strategy for FastDormancy {
    fn name(&self) -> &str {
        "fast-dormancy"
    }

    fn run(&self, workload: &Workload) -> StrategyOutcome {
        // Fast dormancy ⇒ ~no tail: the radio drops straight to IDLE a
        // moment after each transfer.
        let cfg = RrcConfig {
            dch_tail: SimDuration::from_millis(100),
            fach_tail: SimDuration::ZERO,
            ..workload.cellular.clone()
        };
        let mut planned = Vec::new();
        let mut refreshes = Vec::new();
        for event in workload.events() {
            match event {
                TrafficEvent::Heartbeat(hb) => {
                    planned.push(PlannedTx {
                        at: hb.created_at,
                        bytes: hb.size,
                    });
                    refreshes.push(hb.created_at);
                }
                TrafficEvent::Data { at, size } => planned.push(PlannedTx { at, bytes: size }),
            }
        }
        // +1 layer-3 message per transmission: the Signaling Connection
        // Release Indication the device sends to request dormancy.
        execute(self.name(), workload, &cfg, &planned, &refreshes, 1, 0.0)
    }
}

/// The paper's framework, seen from one UE: heartbeats go to a relay
/// over D2D (the relay's aggregated cellular send refreshes the server
/// by the end of each relay period), foreground data still uses the
/// device's own radio.
#[derive(Debug, Clone)]
pub struct D2dForwarding {
    /// D2D technique in use.
    pub tech: TechProfile,
    /// UE–relay distance in metres.
    pub distance_m: f64,
}

impl Default for D2dForwarding {
    fn default() -> Self {
        D2dForwarding {
            tech: TechProfile::wifi_direct(),
            distance_m: 1.0,
        }
    }
}

impl Strategy for D2dForwarding {
    fn name(&self) -> &str {
        "d2d-forwarding"
    }

    fn run(&self, workload: &Workload) -> StrategyOutcome {
        let t0 = SimTime::ZERO;
        // One establishment, then one D2D send per heartbeat.
        let mut d2d_energy = (self.tech.discovery(t0, D2dRole::Initiator).charge()
            + self.tech.connection(t0, D2dRole::Initiator).charge())
        .as_micro_amp_hours();
        let mut planned = Vec::new();
        let mut refreshes = Vec::new();
        let mut forwarded = 0u64;
        for event in workload.events() {
            match event {
                TrafficEvent::Heartbeat(hb) => {
                    d2d_energy += self
                        .tech
                        .send(hb.created_at, hb.size, self.distance_m)
                        .charge()
                        .as_micro_amp_hours();
                    // Algorithm 1 delays the aggregated send up to the
                    // relay period; assume worst-case delivery at +T.
                    refreshes.push(hb.created_at + workload.app.heartbeat_period);
                    forwarded += 1;
                }
                TrafficEvent::Data { at, size } => planned.push(PlannedTx { at, bytes: size }),
            }
        }
        let mut outcome = execute(
            self.name(),
            workload,
            &workload.cellular,
            &planned,
            &refreshes,
            0,
            d2d_energy,
        );
        outcome.heartbeats_delivered = forwarded;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::heartbeats_only(AppProfile::wechat(), 6 * 3600, 3)
    }

    #[test]
    fn original_sends_every_heartbeat() {
        let w = workload();
        let out = Original.run(&w);
        // 6 h of WeChat: ~80 heartbeats.
        assert!(out.cellular_transmissions >= 75 && out.cellular_transmissions <= 85);
        assert_eq!(out.heartbeats_delivered, out.cellular_transmissions);
        assert_eq!(out.offline_secs, 0.0);
        // 8 L3 messages per isolated heartbeat.
        assert_eq!(out.l3_messages, out.cellular_transmissions * 8);
    }

    #[test]
    fn extended_period_trades_signaling_for_presence_risk() {
        let w = workload();
        let x2 = ExtendedPeriod { factor: 2 }.run(&w);
        let x4 = ExtendedPeriod { factor: 4 }.run(&w);
        let original = Original.run(&w);
        assert!(x2.l3_messages < original.l3_messages);
        assert!(x2.device_energy_uah < original.device_energy_uah);
        assert_eq!(x2.offline_secs, 0.0, "×2 still inside the 3T budget");
        // ×4 exceeds the 3T expiration: the session flaps.
        assert!(x4.offline_secs > 0.0);
        assert!(x4.max_presence_gap_secs > x2.max_presence_gap_secs);
    }

    #[test]
    fn fast_dormancy_saves_energy_costs_signaling() {
        let w = workload();
        let original = Original.run(&w);
        let fd = FastDormancy.run(&w);
        assert!(fd.device_energy_uah < original.device_energy_uah * 0.6);
        // On isolated periodic heartbeats the message count is a wash
        // (the SCRI replaces the demotion message)...
        assert!(fd.l3_messages >= original.l3_messages);
        assert_eq!(fd.offline_secs, 0.0);

        // ...the aggravation [26] warns about appears on bursty traffic,
        // where the original system's tail lets clustered transfers share
        // one RRC connection and fast dormancy re-establishes every time.
        let mixed = Workload::mixed(AppProfile::qq(), 12 * 3600, 5);
        let original_mixed = Original.run(&mixed);
        let fd_mixed = FastDormancy.run(&mixed);
        assert!(
            fd_mixed.rrc_connections >= original_mixed.rrc_connections,
            "fast dormancy cannot share connections"
        );
        assert!(fd_mixed.l3_messages > original_mixed.l3_messages);
    }

    #[test]
    fn piggyback_rides_foreground_traffic() {
        let w = Workload::mixed(AppProfile::wechat(), 12 * 3600, 3);
        let original = Original.run(&w);
        let piggy = Piggyback {
            window: SimDuration::from_secs(120),
        }
        .run(&w);
        assert!(
            piggy.cellular_transmissions < original.cellular_transmissions,
            "piggybacking must merge some heartbeats into data transfers"
        );
        assert!(piggy.device_energy_uah < original.device_energy_uah);
        assert_eq!(piggy.offline_secs, 0.0, "delays stay inside 3T");
    }

    #[test]
    fn d2d_forwarding_removes_heartbeat_signaling() {
        let w = workload();
        let original = Original.run(&w);
        let d2d = D2dForwarding::default().run(&w);
        assert_eq!(d2d.l3_messages, 0, "a pure-heartbeat UE emits no L3");
        assert_eq!(d2d.rrc_connections, 0);
        assert!(d2d.device_energy_uah < original.device_energy_uah * 0.6);
        assert_eq!(d2d.offline_secs, 0.0, "delay ≤ T stays within 3T");
    }

    #[test]
    fn d2d_forwarding_still_pays_for_data() {
        let w = Workload::mixed(AppProfile::wechat(), 12 * 3600, 3);
        let d2d = D2dForwarding::default().run(&w);
        assert!(d2d.l3_messages > 0, "foreground data still uses cellular");
    }

    #[test]
    fn presence_stats_basics() {
        let exp = SimDuration::from_secs(100);
        let dur = SimDuration::from_secs(500);
        let (max_gap, offline) =
            presence_stats(&[SimTime::from_secs(50), SimTime::from_secs(300)], exp, dur);
        // Gaps: 50, 250, 200 → max 250; offline: (250−100)+(200−100) = 250.
        assert_eq!(max_gap, 250.0);
        assert_eq!(offline, 250.0);
        let (_, ok) = presence_stats(
            &[SimTime::from_secs(90), SimTime::from_secs(180)],
            exp,
            SimDuration::from_secs(200),
        );
        assert_eq!(ok, 0.0);
    }
}
