//! Baseline and related-work heartbeat strategies.
//!
//! §I and §VI of the paper survey the alternatives to D2D forwarding:
//! extending heartbeat periods, "delaying heartbeat messages and
//! piggybacking them with other messages" (Qian et al.), and RRC-level
//! mechanisms such as fast dormancy (RadioJockey), which "saves energy
//! with higher signaling overhead". To compare the framework against the
//! field, this crate implements each of them over a common workload and
//! radio model behind one [`Strategy`] trait:
//!
//! * [`Original`] — the unmodified system: every message wakes the
//!   cellular radio.
//! * [`ExtendedPeriod`] — multiply the heartbeat period by a factor;
//!   cheap, but factors beyond the server's expiration budget knock the
//!   client offline.
//! * [`Piggyback`] — delay each heartbeat up to a window hoping to ride
//!   an RRC connection opened by foreground traffic.
//! * [`FastDormancy`] — release the RRC connection immediately after
//!   every transfer: kills the tail energy, but every message now pays
//!   full establishment signaling.
//! * [`D2dForwarding`] — the paper's framework, seen from one UE.
//!
//! # Examples
//!
//! ```
//! use hbr_apps::AppProfile;
//! use hbr_baseline::{Original, FastDormancy, Strategy, Workload};
//!
//! let workload = Workload::heartbeats_only(AppProfile::wechat(), 6 * 3600, 1);
//! let original = Original.run(&workload);
//! let dormancy = FastDormancy.run(&workload);
//! // Fast dormancy trades energy for signaling.
//! assert!(dormancy.device_energy_uah < original.device_energy_uah);
//! assert!(dormancy.l3_messages >= original.l3_messages);
//! ```

pub mod strategy;

pub use strategy::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, StrategyOutcome,
    Workload,
};
