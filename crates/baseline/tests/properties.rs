//! Property tests for the strategy engine: whatever the workload, the
//! strategies obey their defining trade-offs.

use hbr_apps::AppProfile;
use hbr_baseline::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, Workload,
};
use proptest::prelude::*;

fn arb_app() -> impl proptest::strategy::Strategy<Value = AppProfile> {
    prop::sample::select(AppProfile::paper_apps())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The original system delivers every heartbeat on time and pays full
    /// signaling for each: L3 = 8 × heartbeats on pure heartbeat streams.
    #[test]
    fn original_full_price(app in arb_app(), seed in any::<u64>(), hours in 2u64..12) {
        let w = Workload::heartbeats_only(app, hours * 3600, seed);
        let out = Original.run(&w);
        prop_assert_eq!(out.offline_secs, 0.0);
        prop_assert_eq!(out.l3_messages, out.heartbeats_delivered * 8);
    }

    /// Extending the period by f divides transmissions by ~f and never
    /// increases signaling; within the 3× expiration budget presence
    /// holds, beyond it the session must flap.
    #[test]
    fn extended_period_tradeoff(
        app in arb_app(),
        seed in any::<u64>(),
        factor in 2u32..6,
    ) {
        let w = Workload::heartbeats_only(app, 12 * 3600, seed);
        let original = Original.run(&w);
        let extended = ExtendedPeriod { factor }.run(&w);
        prop_assert!(extended.l3_messages <= original.l3_messages);
        prop_assert!(extended.device_energy_uah <= original.device_energy_uah + 1.0);
        if factor <= 2 {
            prop_assert_eq!(extended.offline_secs, 0.0, "well within the 3T budget");
        } else if factor >= 4 {
            prop_assert!(extended.offline_secs > 0.0, "beyond the 3T budget");
        }
        // factor == 3 sits exactly on the expiration boundary: heartbeat
        // timer jitter makes it flap marginally, which is itself the
        // argument §III makes against period extension.
    }

    /// Piggybacking never delivers late, never transmits more often than
    /// the original, and keeps every heartbeat.
    #[test]
    fn piggyback_is_safe(app in arb_app(), seed in any::<u64>(), window_frac in 0.1f64..0.9) {
        let w = Workload::mixed(app.clone(), 12 * 3600, seed);
        // A sane deployment bounds the delay window by the heartbeat
        // period, keeping worst-case gaps under 2T < 3T expiration.
        let window = app.heartbeat_period.mul_f64(window_frac);
        let original = Original.run(&w);
        let piggy = Piggyback { window }.run(&w);
        prop_assert!(piggy.cellular_transmissions <= original.cellular_transmissions);
        prop_assert_eq!(piggy.offline_secs, 0.0);
        prop_assert!(
            piggy.max_presence_gap_secs
                <= original.max_presence_gap_secs + window.as_secs_f64() + 1.0
        );
    }

    /// Fast dormancy strictly reduces energy on sparse heartbeat streams
    /// and never reduces signaling below the original.
    #[test]
    fn fast_dormancy_tradeoff(app in arb_app(), seed in any::<u64>()) {
        let w = Workload::heartbeats_only(app, 8 * 3600, seed);
        let original = Original.run(&w);
        let fd = FastDormancy.run(&w);
        prop_assert!(fd.device_energy_uah < original.device_energy_uah);
        prop_assert!(fd.l3_messages >= original.l3_messages);
        prop_assert_eq!(fd.offline_secs, 0.0);
    }

    /// D2D forwarding: zero heartbeat signaling, bounded delay (≤ one
    /// relay period), and cheaper than cellular per delivered heartbeat.
    #[test]
    fn d2d_forwarding_bounds(app in arb_app(), seed in any::<u64>()) {
        let w = Workload::heartbeats_only(app.clone(), 8 * 3600, seed);
        let original = Original.run(&w);
        let d2d = D2dForwarding::default().run(&w);
        prop_assert_eq!(d2d.l3_messages, 0);
        prop_assert_eq!(d2d.rrc_connections, 0);
        prop_assert_eq!(d2d.offline_secs, 0.0, "delay ≤ T < 3T expiration");
        prop_assert!(d2d.device_energy_uah < original.device_energy_uah);
        prop_assert!(
            d2d.max_presence_gap_secs
                <= original.max_presence_gap_secs + app.heartbeat_period.as_secs_f64() + 1.0
        );
    }

    /// Workload materialisation is deterministic in the seed.
    #[test]
    fn workloads_are_deterministic(app in arb_app(), seed in any::<u64>()) {
        let a = Workload::mixed(app.clone(), 6 * 3600, seed).events();
        let b = Workload::mixed(app, 6 * 3600, seed).events();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.at(), y.at());
            prop_assert_eq!(x.is_heartbeat(), y.is_heartbeat());
        }
    }
}
