//! Conformance DAG harness: scripted adversarial interleavings for the
//! delivery protocol.
//!
//! PR 5's reliable-delivery layer surfaced three latent races only
//! through ad-hoc end-to-end driving. This crate makes such
//! interleavings *declarative*: a conformance test is a DAG of events
//! (`perturb`, `inject`, `expect`, `advance`, `require`) with
//! happens-after edges, executed deterministically against the real
//! protocol components — so each race, and each of its legal
//! orderings, is a named, byte-reproducible scenario instead of a
//! lucky seed.
//!
//! Three layers:
//!
//! * [`dag`] — the engine: node kinds, fixed execution priority with
//!   declaration-order tie-breaks, quiescence, and the
//!   [`run_reproducible`] double-run gate.
//! * [`stack`] — a component-level [`System`]: real scheduler, ledger,
//!   feedback tracker, server, tracer and invariant checker behind a
//!   scripted dummy relay.
//! * [`world`] — the full event-driven engine behind the same facade,
//!   with mid-run fault injection
//!   (`hbr_core::world::Scenario::inject_fault`).
//!
//! The protocol components report each step through
//! `hbr_core::hooks::ProtocolHooks`; the harness records them into the
//! scenario's event log without perturbing any RNG stream, which is
//! what keeps clean paths draw-free and scenarios byte-identical
//! across runs and thread counts.
//!
//! See `DESIGN.md` §4.9 for the execution-model contract and
//! `tests/conformance/` for the scenario suite.

pub mod dag;
pub mod stack;
pub mod world;

pub use dag::{run_reproducible, DagReport, NodeId, ScenarioDag, System};
pub use stack::{RelayMode, StackConfig, StackHarness, StackSnapshot, StackView, Stim};
pub use world::{delivery_accounted, WorldHarness, WorldStim, WorldView};
