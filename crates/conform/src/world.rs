//! World-level harness: a full event-driven [`Scenario`] (mobility,
//! discovery, radios, faults) behind the DAG facade.
//!
//! Where the stack harness scripts the relay itself, this harness keeps
//! the *entire* production engine in the loop and interleaves scripted
//! faults against it mid-run via [`Scenario::inject_fault`] — the
//! step-injection seam. The clock is the engine's own virtual clock
//! ([`Scenario::run_until`] is deterministic and resumable), so the
//! same DAG produces the same event sequence every run.

use hbr_core::world::{Scenario, ScenarioConfig, ScenarioReport};
use hbr_sim::fault::FaultKind;
use hbr_sim::telemetry::TelemetryEvent;
use hbr_sim::SimTime;

use crate::dag::System;

/// Scripted stimuli for the world harness.
pub enum WorldStim {
    /// Injects a fault at the absolute instant `at` (must not be in the
    /// engine's past).
    Fault {
        /// When the fault fires.
        at: SimTime,
        /// What happens.
        kind: FaultKind,
    },
}

/// Live aggregates for `expect` predicates, assembled from the engine's
/// epoch pulse and telemetry stream.
#[derive(Debug, Clone)]
pub struct WorldView {
    /// The engine clock.
    pub now: SimTime,
    /// D2D forwards so far.
    pub forwards: u64,
    /// Cellular fallbacks so far.
    pub fallbacks: u64,
    /// Ledger-confirmed deliveries so far.
    pub delivered: u64,
    /// D2D retransmissions scheduled so far.
    pub retries: u64,
    /// Relay handovers observed in the event stream so far.
    pub handovers: u64,
    /// Heartbeats queued behind a cellular outage right now.
    pub outage_queued: u64,
}

/// The world harness: owns the scenario until quiescence consumes it.
pub struct WorldHarness {
    scenario: Option<Scenario>,
    horizon: SimTime,
}

impl WorldHarness {
    /// Builds the engine from a full scenario description. Telemetry
    /// and reliable delivery must be on — the conformance `require`s
    /// read the delivery report and the typed event stream.
    pub fn new(config: ScenarioConfig) -> Self {
        assert!(
            config.reliable_delivery && config.telemetry,
            "conformance world scenarios need reliable_delivery + telemetry"
        );
        let horizon = SimTime::ZERO + config.duration;
        WorldHarness {
            scenario: Some(Scenario::new(config)),
            horizon,
        }
    }

    fn scenario(&self) -> &Scenario {
        self.scenario.as_ref().expect("scenario already quiesced")
    }

    fn scenario_mut(&mut self) -> &mut Scenario {
        self.scenario.as_mut().expect("scenario already quiesced")
    }
}

impl System for WorldHarness {
    type Stimulus = WorldStim;
    type View = WorldView;
    type Snapshot = ScenarioReport;

    fn apply(&mut self, stimulus: &WorldStim) -> String {
        match stimulus {
            WorldStim::Fault { at, kind } => {
                self.scenario_mut().inject_fault(*at, *kind);
                format!("fault {} armed for {at}", kind.label())
            }
        }
    }

    fn advance_to(&mut self, t: SimTime) -> String {
        let scenario = self.scenario_mut();
        scenario.run_until(t);
        let pulse = scenario.pulse();
        format!(
            "clock -> {t}: {} forwards, {} fallbacks, {} delivered, {} retries",
            pulse.forwards, pulse.fallbacks, pulse.delivered, pulse.retries
        )
    }

    fn view(&self) -> WorldView {
        let scenario = self.scenario();
        let pulse = scenario.pulse();
        let handovers = scenario
            .events_so_far()
            .iter()
            .filter(|record| matches!(record.event, TelemetryEvent::Handover { .. }))
            .count() as u64;
        WorldView {
            now: scenario.now(),
            forwards: pulse.forwards,
            fallbacks: pulse.fallbacks,
            delivered: pulse.delivered,
            retries: pulse.retries,
            handovers,
            outage_queued: pulse.outage_queued,
        }
    }

    fn quiesce(&mut self) -> ScenarioReport {
        let mut scenario = self.scenario.take().expect("scenario already quiesced");
        scenario.run_until(self.horizon);
        // `complete` runs the engine's own end-of-run conservation
        // audit (InvariantChecker::on_finish) before reporting.
        scenario.complete()
    }
}

/// The exactly-once ledger identity every conformance world scenario
/// requires: all fates accounted, nothing silently lost, and no live
/// session ever read as dead.
pub fn delivery_accounted(report: &ScenarioReport) -> Result<String, String> {
    let d = report
        .delivery
        .as_ref()
        .ok_or_else(|| String::from("no delivery report (reliable off?)"))?;
    if d.delivered + d.expired + d.dropped_dead + d.in_flight != d.generated {
        return Err(format!("ledger accounting does not balance: {d:?}"));
    }
    if d.false_dead_secs != 0.0 {
        return Err(format!(
            "{} s of false-dead presence: {d:?}",
            d.false_dead_secs
        ));
    }
    Ok(format!(
        "accounted: {} generated = {} delivered + {} expired + {} dead + {} in-flight",
        d.generated, d.delivered, d.expired, d.dropped_dead, d.in_flight
    ))
}
