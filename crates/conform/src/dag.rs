//! The scenario-DAG engine.
//!
//! A conformance scenario is a directed acyclic graph of *event nodes*
//! with happens-after edges. Node kinds:
//!
//! * **perturb** — an adversarial stimulus (fault, clock skew, scripted
//!   peer misbehaviour) applied to the system under test.
//! * **inject** — a protocol stimulus (heartbeat emission, duplicate
//!   delivery, departure notice).
//! * **expect** — a mid-run predicate over the system's live
//!   [`View`](System::View); failures are recorded, not fatal, so one
//!   broken expectation does not mask later ones.
//! * **advance** — moves the virtual clock to an absolute instant,
//!   firing every timer due on the way.
//! * **require** — an end-state predicate over the quiescence
//!   [`Snapshot`](System::Snapshot) (delivery ledger audit, invariant
//!   checker verdict, telemetry counters).
//!
//! # Execution order
//!
//! A node is *ready* when every happens-after predecessor has executed.
//! Among ready nodes the engine picks by **fixed kind priority** —
//! perturb, then inject, then expect, then advance — breaking ties by
//! **declaration order**. The rationale: at one readiness frontier an
//! adversarial perturbation must land before the protocol stimulus it
//! races (that *is* the interleaving being scripted), expectations
//! observe the frontier's state before the clock moves, and the clock
//! moves last. Alternative interleavings of the same race are expressed
//! with explicit edges, not scheduling nondeterminism: the engine is
//! deliberately deterministic so every scenario is byte-reproducible.
//!
//! # Quiescence
//!
//! The scenario is *quiescent* once every non-require node has
//! executed: no stimulus is outstanding and the clock has reached the
//! last scripted instant. Only then does the engine take the snapshot
//! and evaluate `require` nodes, in declaration order. `require`
//! failures (and any recorded `expect` failures) make
//! [`DagReport::assert_ok`] panic with the full event log.

use std::collections::HashSet;

use hbr_sim::SimTime;

/// The system a scenario drives: the real protocol components behind a
/// scripted facade (see `StackHarness` and `WorldHarness`).
pub trait System {
    /// One scripted stimulus (inject and perturb nodes carry these).
    type Stimulus;
    /// Live state visible to mid-run `expect` predicates.
    type View;
    /// Final state visible to `require` predicates at quiescence.
    type Snapshot;

    /// Applies a stimulus, returning a one-line description of what
    /// actually happened (logged into the report — part of the
    /// byte-reproducibility surface).
    fn apply(&mut self, stimulus: &Self::Stimulus) -> String;

    /// Advances the virtual clock to `t`, firing due timers; returns a
    /// one-line summary of the activity.
    fn advance_to(&mut self, t: SimTime) -> String;

    /// The live view for `expect` predicates.
    fn view(&self) -> Self::View;

    /// Consumes remaining activity and produces the final snapshot for
    /// `require` predicates. Called exactly once, at quiescence.
    fn quiesce(&mut self) -> Self::Snapshot;
}

/// Mid-run predicate: `Ok(note)` logs the note, `Err(msg)` records a
/// failure.
pub type ExpectFn<V> = Box<dyn Fn(&V) -> Result<String, String>>;
/// Quiescence predicate over the final snapshot.
pub type RequireFn<S> = Box<dyn Fn(&S) -> Result<String, String>>;

enum NodeKind<S: System> {
    Perturb(S::Stimulus),
    Inject(S::Stimulus),
    Expect(ExpectFn<S::View>),
    Advance(SimTime),
    Require(RequireFn<S::Snapshot>),
}

impl<S: System> NodeKind<S> {
    /// Fixed execution priority among ready nodes (lower runs first);
    /// `require` never enters the ready set — it waits for quiescence.
    fn priority(&self) -> u8 {
        match self {
            NodeKind::Perturb(_) => 0,
            NodeKind::Inject(_) => 1,
            NodeKind::Expect(_) => 2,
            NodeKind::Advance(_) => 3,
            NodeKind::Require(_) => u8::MAX,
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Perturb(_) => "perturb",
            NodeKind::Inject(_) => "inject",
            NodeKind::Expect(_) => "expect",
            NodeKind::Advance(_) => "advance",
            NodeKind::Require(_) => "require",
        }
    }
}

struct Node<S: System> {
    label: String,
    kind: NodeKind<S>,
    deps: Vec<NodeId>,
}

/// Handle to a declared node; also its declaration order.
pub type NodeId = usize;

/// A scenario under construction. Build nodes, wire happens-after
/// edges, then [`run`](ScenarioDag::run) it against a [`System`].
pub struct ScenarioDag<S: System> {
    name: String,
    nodes: Vec<Node<S>>,
}

impl<S: System> ScenarioDag<S> {
    /// An empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioDag {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, label: impl Into<String>, kind: NodeKind<S>) -> NodeId {
        self.nodes.push(Node {
            label: label.into(),
            kind,
            deps: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Declares a protocol stimulus.
    pub fn inject(&mut self, label: impl Into<String>, stimulus: S::Stimulus) -> NodeId {
        self.push(label, NodeKind::Inject(stimulus))
    }

    /// Declares an adversarial stimulus (runs before injections at the
    /// same readiness frontier).
    pub fn perturb(&mut self, label: impl Into<String>, stimulus: S::Stimulus) -> NodeId {
        self.push(label, NodeKind::Perturb(stimulus))
    }

    /// Declares a clock advance to the absolute instant `t`.
    pub fn advance(&mut self, label: impl Into<String>, t: SimTime) -> NodeId {
        self.push(label, NodeKind::Advance(t))
    }

    /// Declares a mid-run expectation over the live view.
    pub fn expect(
        &mut self,
        label: impl Into<String>,
        predicate: impl Fn(&S::View) -> Result<String, String> + 'static,
    ) -> NodeId {
        self.push(label, NodeKind::Expect(Box::new(predicate)))
    }

    /// Declares a quiescence condition over the final snapshot.
    pub fn require(
        &mut self,
        label: impl Into<String>,
        predicate: impl Fn(&S::Snapshot) -> Result<String, String> + 'static,
    ) -> NodeId {
        self.push(label, NodeKind::Require(Box::new(predicate)))
    }

    /// Adds the happens-after edge `before → after`.
    ///
    /// # Panics
    ///
    /// Panics on unknown ids or a self-edge. (Cycles are detected at
    /// [`run`](ScenarioDag::run), which panics naming the stuck nodes.)
    pub fn after(&mut self, before: NodeId, after: NodeId) {
        assert!(
            before < self.nodes.len() && after < self.nodes.len(),
            "edge references undeclared node ({before} -> {after}, {} declared)",
            self.nodes.len()
        );
        assert_ne!(before, after, "self-edge on node {before}");
        if !self.nodes[after].deps.contains(&before) {
            self.nodes[after].deps.push(before);
        }
    }

    /// Chains `ids` in order: each happens after its predecessor.
    pub fn chain(&mut self, ids: &[NodeId]) {
        for pair in ids.windows(2) {
            self.after(pair[0], pair[1]);
        }
    }

    /// Executes the scenario to quiescence and evaluates the `require`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the happens-after edges form a cycle (the stuck nodes
    /// are named). Expectation/requirement *failures* do not panic
    /// here; they are collected in the report for
    /// [`DagReport::assert_ok`].
    pub fn run(self, system: &mut S) -> DagReport {
        let mut report = DagReport {
            name: self.name,
            lines: Vec::new(),
            failures: Vec::new(),
        };
        let mut done: HashSet<NodeId> = HashSet::new();
        let total_runnable = self
            .nodes
            .iter()
            .filter(|n| !matches!(n.kind, NodeKind::Require(_)))
            .count();

        while done.len() < total_runnable {
            let next = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(id, n)| {
                    !matches!(n.kind, NodeKind::Require(_))
                        && !done.contains(id)
                        && n.deps.iter().all(|d| done.contains(d))
                })
                // Fixed kind priority, declaration order as tie-break.
                .min_by_key(|(id, n)| (n.kind.priority(), *id));
            let Some((id, node)) = next else {
                let stuck: Vec<String> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(id, n)| !matches!(n.kind, NodeKind::Require(_)) && !done.contains(id))
                    .map(|(id, n)| format!("#{id} {}", n.label))
                    .collect();
                panic!(
                    "scenario '{}': happens-after edges form a cycle; stuck nodes: {}",
                    report.name,
                    stuck.join(", ")
                );
            };
            let line = match &node.kind {
                NodeKind::Perturb(stimulus) | NodeKind::Inject(stimulus) => system.apply(stimulus),
                NodeKind::Advance(t) => system.advance_to(*t),
                NodeKind::Expect(predicate) => match predicate(&system.view()) {
                    Ok(note) => note,
                    Err(msg) => {
                        report
                            .failures
                            .push(format!("expect '{}': {msg}", node.label));
                        format!("FAILED: {msg}")
                    }
                },
                NodeKind::Require(_) => unreachable!("require nodes never enter the ready set"),
            };
            report.lines.push(format!(
                "#{id:02} {:>7} [{}] {line}",
                node.kind.kind_name(),
                node.label
            ));
            done.insert(id);
        }

        // Quiescence: take the snapshot once, then evaluate requires in
        // declaration order.
        let snapshot = system.quiesce();
        for (id, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Require(predicate) = &node.kind {
                let line = match predicate(&snapshot) {
                    Ok(note) => note,
                    Err(msg) => {
                        report
                            .failures
                            .push(format!("require '{}': {msg}", node.label));
                        format!("FAILED: {msg}")
                    }
                };
                report
                    .lines
                    .push(format!("#{id:02} require [{}] {line}", node.label));
            }
        }
        report
    }
}

/// The executed scenario: an ordered event log plus collected failures.
///
/// The log is part of the conformance contract — running the same
/// scenario twice (or under a different `HBR_THREADS`) must produce a
/// byte-identical [`render`](DagReport::render).
pub struct DagReport {
    name: String,
    lines: Vec<String>,
    failures: Vec<String>,
}

impl DagReport {
    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` when every expect and require held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The collected failures.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// The deterministic textual event log.
    pub fn render(&self) -> String {
        let mut out = format!("scenario: {}\n", self.name);
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(if self.failures.is_empty() {
            "verdict: ok\n"
        } else {
            "verdict: FAILED\n"
        });
        out
    }

    /// Panics with the full event log unless every condition held.
    pub fn assert_ok(&self) {
        assert!(
            self.passed(),
            "scenario '{}' failed:\n  {}\n--- event log ---\n{}",
            self.name,
            self.failures.join("\n  "),
            self.render()
        );
    }
}

/// Runs `build` twice against fresh systems and asserts the two event
/// logs are byte-identical — the reproducibility gate every scenario in
/// `tests/conformance/` passes through.
pub fn run_reproducible<S: System>(build: impl Fn() -> (ScenarioDag<S>, S)) -> DagReport {
    let (dag, mut system) = build();
    let first = dag.run(&mut system);
    let (dag, mut system) = build();
    let second = dag.run(&mut system);
    assert_eq!(
        first.render(),
        second.render(),
        "scenario '{}' is not byte-reproducible",
        first.name()
    );
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy system that just logs what it is told to do.
    #[derive(Default)]
    struct Toy {
        now: SimTime,
        log: Vec<String>,
        quiesced: bool,
    }

    impl System for Toy {
        type Stimulus = &'static str;
        type View = usize;
        type Snapshot = Vec<String>;

        fn apply(&mut self, stimulus: &&'static str) -> String {
            self.log.push((*stimulus).to_string());
            format!("applied {stimulus}")
        }

        fn advance_to(&mut self, t: SimTime) -> String {
            assert!(t >= self.now, "clock must not move backwards");
            self.now = t;
            format!("now {t}")
        }

        fn view(&self) -> usize {
            self.log.len()
        }

        fn quiesce(&mut self) -> Vec<String> {
            assert!(!self.quiesced, "quiesce runs exactly once");
            self.quiesced = true;
            self.log.clone()
        }
    }

    #[test]
    fn priority_orders_one_frontier_and_edges_override() {
        let mut d = ScenarioDag::new("priority");
        // Declared inject-first, but the perturbation must still land
        // first at the same frontier.
        let i = d.inject("i", "inject");
        let p = d.perturb("p", "perturb");
        let e = d.expect("both-landed", |n: &usize| {
            if *n == 2 {
                Ok(String::from("2 stimuli"))
            } else {
                Err(format!("saw {n}"))
            }
        });
        let a = d.advance("advance", SimTime::from_secs(1));
        // A second inject forced *after* the advance by an edge.
        let late = d.inject("late", "late-inject");
        d.after(a, late);
        let _ = (i, p, e);
        let mut toy = Toy::default();
        let report = d.run(&mut toy);
        report.assert_ok();
        assert_eq!(toy.log, vec!["perturb", "inject", "late-inject"]);
        let log = report.render();
        let order: Vec<usize> = ["[p]", "[i]", "[both-landed]", "[advance]", "[late]"]
            .iter()
            .map(|needle| log.find(needle).expect(needle))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "order: {log}");
    }

    #[test]
    fn declaration_order_breaks_ties() {
        let mut d = ScenarioDag::new("ties");
        d.inject("first", "a");
        d.inject("second", "b");
        d.inject("third", "c");
        let mut toy = Toy::default();
        d.run(&mut toy).assert_ok();
        assert_eq!(toy.log, vec!["a", "b", "c"]);
    }

    #[test]
    fn requires_wait_for_quiescence() {
        let mut d = ScenarioDag::new("quiescence");
        // Declared before the injections, but must observe them all.
        d.require("saw-everything", |log: &Vec<String>| {
            if log.len() == 2 {
                Ok(format!("{} stimuli", log.len()))
            } else {
                Err(format!("snapshot taken early: {log:?}"))
            }
        });
        d.inject("one", "x");
        d.inject("two", "y");
        let mut toy = Toy::default();
        d.run(&mut toy).assert_ok();
    }

    #[test]
    fn failures_collect_instead_of_masking() {
        let mut d = ScenarioDag::new("failures");
        d.expect("wrong", |_: &usize| Err(String::from("nope")));
        d.inject("still-runs", "z");
        d.require("also-wrong", |_: &Vec<String>| Err(String::from("nah")));
        let mut toy = Toy::default();
        let report = d.run(&mut toy);
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 2);
        assert_eq!(toy.log, vec!["z"], "later nodes still executed");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_named() {
        let mut d = ScenarioDag::new("cycle");
        let a = d.inject("a", "a");
        let b = d.inject("b", "b");
        d.after(a, b);
        d.after(b, a);
        d.run(&mut Toy::default());
    }

    #[test]
    fn reproducibility_gate_runs_twice() {
        let report = run_reproducible(|| {
            let mut d = ScenarioDag::new("repro");
            d.inject("i", "x");
            d.advance("a", SimTime::from_secs(2));
            d.require("done", |log: &Vec<String>| {
                Ok(format!("{} stimuli", log.len()))
            });
            (d, Toy::default())
        });
        report.assert_ok();
        assert!(report.render().contains("verdict: ok"));
    }
}
