//! Component-level harness: the *real* delivery-protocol stack behind a
//! scripted facade.
//!
//! One UE (the source), one **dummy relay** wrapping the real
//! [`MessageScheduler`] (Algorithm 1 decides flushes; the script only
//! decides whether transfers reach it), and the real [`ImServer`],
//! [`DeliveryLedger`], [`FeedbackTracker`], [`Tracer`] and
//! [`InvariantChecker`]. Time is a virtual clock: `advance_to` fires
//! the due feedback deadlines, ledger retries and scheduler flushes in
//! time order, with a fixed tie order (feedback sweep, then retries,
//! then flushes) so every run is deterministic.
//!
//! RNG discipline matches the production engine: the only stream ever
//! drawn is the dedicated retry stream (backoff jitter), seeded via
//! [`retry_stream_seed`], so clean paths draw nothing and scripted runs
//! are byte-reproducible.

use std::collections::HashSet;

use hbr_apps::{AppId, DeliveryOutcome, Heartbeat, ImServer, MessageId, MessageIdGen};
use hbr_core::hooks::ProtocolHooks;
use hbr_core::{
    BackoffPolicy, DeliveryLedger, FeedbackTracker, InvariantChecker, MessageScheduler,
    ScheduleDecision,
};
use hbr_sim::fault::retry_stream_seed;
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime, Tracer};

use crate::dag::System;

/// How the scripted relay treats incoming transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayMode {
    /// Transfers succeed and reach the scheduler.
    Accepting,
    /// Transfers *appear* to succeed (the UE sees a D2D ack and arms
    /// its feedback deadline) but the payload never reaches the
    /// scheduler — the adversarial case feedback timeouts exist for.
    LosingPayloads,
    /// Transfers fail outright (link refuses); the UE sees the failure
    /// immediately and consults the retry ledger.
    RefusingTransfers,
    /// The relay is gone; transfers fail like
    /// [`RelayMode::RefusingTransfers`].
    Departed,
}

impl RelayMode {
    fn label(self) -> &'static str {
        match self {
            RelayMode::Accepting => "accepting",
            RelayMode::LosingPayloads => "losing-payloads",
            RelayMode::RefusingTransfers => "refusing-transfers",
            RelayMode::Departed => "departed",
        }
    }
}

/// Scripted stimuli for the stack harness. Injections act at the
/// harness's current virtual instant (script an `advance` first to
/// position them in time).
pub enum Stim {
    /// The UE emits a heartbeat (`seq`, expiring `budget` after now)
    /// and forwards it to the relay.
    Emit {
        /// Application sequence number.
        seq: u32,
        /// Freshness budget (`expires_at − created_at`).
        budget: SimDuration,
    },
    /// Sets the relay script.
    Relay(RelayMode),
    /// The relay departs: its buffered batch is handed back, feedback
    /// deadlines are retracted, and every heartbeat re-enters the retry
    /// ledger (or falls back if its budget is exhausted).
    Depart,
    /// The departed relay (or a replacement) is available again and
    /// opens a fresh aggregation period.
    Rejoin,
    /// An adversarial re-sender delivers `copies` fresh-id duplicates
    /// of the last emitted heartbeat straight to the server — the
    /// `(source, app, seq)` dedup layer must swallow every one.
    DuplicateStorm {
        /// Number of fresh-id duplicates.
        copies: u32,
    },
    /// Re-delivers the exact last emitted copy (same message id) to the
    /// server — the id dedup layer must swallow it.
    RedeliverLastCopy,
    /// Records a raw trace entry with an explicit (possibly
    /// non-monotone) stamp — models a handler acting at a transfer's
    /// completion instant behind an already-recorded later entry.
    Mark {
        /// The raw stamp, deliberately allowed to run backwards.
        at: SimTime,
    },
    /// Registers a `[from, to)` window; at quiescence the harness
    /// compares `Tracer::between` against a linear scan over it.
    ProbeWindow {
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
}

/// Tunables for one scripted stack.
pub struct StackConfig {
    /// Seed for the dedicated retry (jitter) stream.
    pub seed: u64,
    /// UE feedback timeout.
    pub feedback_timeout: SimDuration,
    /// Relay aggregation: Algorithm 1's `M`.
    pub capacity: usize,
    /// Relay aggregation period.
    pub period: SimDuration,
    /// Scheduler expiry margin.
    pub margin: SimDuration,
    /// Server-side session expiration.
    pub expiration: SimDuration,
    /// Retry backoff policy.
    pub backoff: BackoffPolicy,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            seed: 1,
            // Production default: must exceed the relay period, or a
            // clean forward times out before the relay even flushes.
            feedback_timeout: SimDuration::from_secs(300),
            capacity: 7,
            period: SimDuration::from_secs(60),
            margin: SimDuration::from_secs(8),
            expiration: SimDuration::from_secs(810),
            backoff: BackoffPolicy::default(),
        }
    }
}

/// Live counters for `expect` predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct StackView {
    /// The virtual clock.
    pub now: SimTime,
    /// Ledger entries not yet retired.
    pub in_flight: usize,
    /// Forwards awaiting relay feedback.
    pub feedback_pending: usize,
    /// Heartbeats buffered at the relay scheduler.
    pub relay_buffered: usize,
    /// Server-accepted heartbeats.
    pub server_delivered: u64,
    /// Server-side duplicate swallows (both dedup layers).
    pub server_duplicates: u64,
    /// Server-side stale rejections.
    pub server_rejected_expired: u64,
    /// Cellular fallbacks performed.
    pub fallbacks: u64,
    /// Feedback confirmations observed by the UE.
    pub confirmed: u64,
    /// D2D retransmissions scheduled so far.
    pub retries: u64,
}

/// Quiescence snapshot for `require` predicates.
pub struct StackSnapshot {
    /// Final counters (same shape as the live view).
    pub view: StackView,
    /// The invariant checker's fate tallies.
    pub audit: hbr_core::DeliveryAudit,
    /// Every protocol step the [`ProtocolHooks`] recorder observed.
    pub hook_log: Vec<String>,
    /// Every server delivery outcome, in order, as `seq:outcome`.
    pub outcomes: Vec<String>,
    /// Retries the ledger planned *past* `liveness_deadline − margin` —
    /// must be empty (the PR 5 liveness-budget fix).
    pub retry_violations: Vec<String>,
    /// `true` iff the tracer ring is non-decreasing in time.
    pub trace_sorted: bool,
    /// Probe windows where `Tracer::between` disagreed with a linear
    /// scan — must be empty (the PR 5 clamp fix).
    pub probe_mismatches: Vec<String>,
    /// Presence gap for the UE session over `[0, now]`, seconds.
    pub offline_secs: f64,
}

/// Hook recorder: every observed protocol step, plus the planned-retry
/// audit used by the liveness `require`s.
#[derive(Default)]
struct Recorder {
    log: Vec<String>,
    /// `(id, attempt, at, liveness_deadline)` for each planned retry.
    planned: Vec<(MessageId, u32, SimTime, SimTime)>,
}

impl ProtocolHooks for Recorder {
    fn on_schedule_decision(&mut self, now: SimTime, hb: &Heartbeat, decision: &ScheduleDecision) {
        self.log
            .push(format!("{now} schedule seq={} {decision:?}", hb.seq));
    }

    fn on_retry_planned(&mut self, id: MessageId, attempt: u32, at: SimTime, liveness: SimTime) {
        self.planned.push((id, attempt, at, liveness));
        self.log
            .push(format!("retry-planned {id} attempt={attempt} at={at}"));
    }

    fn on_retry_exhausted(&mut self, id: MessageId, attempt: u32, now: SimTime) {
        self.log.push(format!(
            "{now} retry-exhausted {id} after attempt={attempt}"
        ));
    }

    fn on_feedback_armed(&mut self, id: MessageId, now: SimTime, deadline: SimTime) {
        self.log
            .push(format!("{now} feedback-armed {id} deadline={deadline}"));
    }

    fn on_feedback_confirmed(&mut self, confirmed: usize) {
        self.log.push(format!("feedback-confirmed n={confirmed}"));
    }

    fn on_feedback_retracted(&mut self, retracted: usize) {
        self.log.push(format!("feedback-retracted n={retracted}"));
    }
}

/// The scripted stack. Implements [`System`]; drive it with a
/// [`ScenarioDag`](crate::ScenarioDag).
pub struct StackHarness {
    config: StackConfig,
    now: SimTime,
    ids: MessageIdGen,
    source: DeviceId,
    app: AppId,
    scheduler: MessageScheduler,
    relay_mode: RelayMode,
    ledger: DeliveryLedger,
    feedback: FeedbackTracker,
    retry_rng: SimRng,
    server: ImServer,
    tracer: Tracer,
    checker: InvariantChecker,
    recorder: Recorder,
    fallbacks: u64,
    confirmed: u64,
    last_emitted: Option<Heartbeat>,
    outcomes: Vec<String>,
    probes: Vec<(SimTime, SimTime)>,
    /// How much of the recorder log has already been folded into
    /// returned event lines (reproducibility surface).
    hook_cursor: usize,
}

impl StackHarness {
    /// Builds the stack; the UE session registers online at `t = 0`.
    pub fn new(config: StackConfig) -> Self {
        let source = DeviceId::new(0);
        let app = AppId::new(0);
        let mut server = ImServer::new(config.expiration);
        server.register(source, app, SimTime::ZERO);
        let mut checker = InvariantChecker::new(true);
        checker.set_context(config.seed, None);
        let scheduler =
            MessageScheduler::new(config.capacity, config.period, config.margin, SimTime::ZERO);
        StackHarness {
            retry_rng: SimRng::seed_from(retry_stream_seed(config.seed)),
            feedback: FeedbackTracker::new(config.feedback_timeout),
            scheduler,
            config,
            now: SimTime::ZERO,
            ids: MessageIdGen::new(),
            source,
            app,
            relay_mode: RelayMode::Accepting,
            ledger: DeliveryLedger::new(),
            server,
            tracer: Tracer::with_capacity(64),
            checker,
            recorder: Recorder::default(),
            fallbacks: 0,
            confirmed: 0,
            last_emitted: None,
            outcomes: Vec::new(),
            probes: Vec::new(),
            hook_cursor: 0,
        }
    }

    /// The hook steps observed since the last call, joined for the
    /// event log.
    fn fresh_hook_steps(&mut self) -> String {
        let fresh = &self.recorder.log[self.hook_cursor..];
        let joined = if fresh.is_empty() {
            String::new()
        } else {
            format!(" | hooks: {}", fresh.join("; "))
        };
        self.hook_cursor = self.recorder.log.len();
        joined
    }

    fn deliver_to_server(&mut self, hb: Heartbeat, at: SimTime, audited: bool) -> DeliveryOutcome {
        let outcome = self.server.deliver_observed(&hb, at);
        self.outcomes.push(format!("seq{}:{outcome}", hb.seq));
        if audited {
            self.checker
                .on_delivery(&hb, at, outcome == DeliveryOutcome::Accepted, &self.tracer);
            if self.ledger.entry(hb.id).is_some() {
                match outcome {
                    DeliveryOutcome::Accepted => self.ledger.server_acked(hb.id),
                    DeliveryOutcome::Expired => self.ledger.expired(hb.id),
                    // A duplicate verdict means another copy already
                    // retired the entry — nothing to do.
                    _ => {}
                }
            }
        }
        outcome
    }

    fn cellular_fallback(&mut self, hb: Heartbeat, at: SimTime) -> DeliveryOutcome {
        self.fallbacks += 1;
        self.tracer
            .record(at, "fallback", format!("seq {}", hb.seq));
        self.deliver_to_server(hb, at, true)
    }

    /// One transfer attempt UE → relay under the current script.
    fn try_forward(&mut self, hb: Heartbeat, at: SimTime) -> String {
        match self.relay_mode {
            RelayMode::Accepting | RelayMode::LosingPayloads => {
                self.ledger.d2d_acked(hb.id);
                let deadline = self.feedback.on_forward_with(hb, at, &mut self.recorder);
                if self.relay_mode == RelayMode::LosingPayloads {
                    return format!(
                        "seq{} acked but payload lost; feedback due {deadline}",
                        hb.seq
                    );
                }
                let decision = self.scheduler.on_arrival_with(at, hb, &mut self.recorder);
                match decision {
                    ScheduleDecision::Flush(reason) => {
                        let flushed = self.flush_relay(at);
                        format!("seq{} buffered; {reason:?} flushed {flushed}", hb.seq)
                    }
                    ScheduleDecision::Pend => format!("seq{} buffered at relay", hb.seq),
                    ScheduleDecision::Rejected => {
                        // The relay already flushed this period; treat as
                        // a failed transfer so the ledger recovers it.
                        self.feedback.retract_with([hb.id], &mut self.recorder);
                        self.recover(hb, at)
                    }
                }
            }
            RelayMode::RefusingTransfers | RelayMode::Departed => {
                let mode = self.relay_mode.label();
                let recovery = self.recover(hb, at);
                format!("seq{} transfer refused ({mode}); {recovery}", hb.seq)
            }
        }
    }

    /// Transfer failed or timed out: plan a D2D retry, or fall back.
    fn recover(&mut self, hb: Heartbeat, at: SimTime) -> String {
        let planned = self.ledger.plan_retry_with(
            hb.id,
            at,
            &self.config.backoff,
            FeedbackTracker::RESCUE_MARGIN,
            &mut self.retry_rng,
            &mut self.recorder,
        );
        match planned {
            Some(when) => format!("retry planned {when}"),
            None => {
                let outcome = self.cellular_fallback(hb, at);
                format!("fell back to cellular ({outcome})")
            }
        }
    }

    /// The relay flushes its batch to the server at `at`.
    fn flush_relay(&mut self, at: SimTime) -> String {
        let batch = self.scheduler.take_batch_at(at);
        let ids: Vec<MessageId> = batch.iter().map(|hb| hb.id).collect();
        let mut accepted = 0usize;
        for hb in batch {
            if self.deliver_to_server(hb, at, true) == DeliveryOutcome::Accepted {
                accepted += 1;
            }
        }
        // Relay feedback confirms the flush; the UE retires its timers.
        self.ledger.feedback_confirmed(ids.iter().copied());
        self.confirmed +=
            self.feedback
                .on_delivered_with(ids.iter().copied(), &mut self.recorder) as u64;
        // The dummy relay immediately opens its next period.
        self.scheduler.begin_period(at);
        format!("{accepted}/{} accepted", ids.len())
    }

    /// The earliest due instant among the three timer sources.
    fn next_due(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            next = match (next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        consider(self.feedback.next_deadline());
        consider(self.ledger.next_retry());
        if self.scheduler.is_collecting() && self.scheduler.buffered().next().is_some() {
            consider(Some(self.scheduler.next_deadline()));
        }
        next
    }
}

impl System for StackHarness {
    type Stimulus = Stim;
    type View = StackView;
    type Snapshot = StackSnapshot;

    fn apply(&mut self, stimulus: &Stim) -> String {
        let at = self.now;
        let line = match stimulus {
            Stim::Emit { seq, budget } => {
                let hb = Heartbeat {
                    id: self.ids.next_id(),
                    app: self.app,
                    source: self.source,
                    seq: *seq,
                    size: 74,
                    created_at: at,
                    expires_at: at + *budget,
                };
                self.checker.on_emitted(&hb);
                self.ledger.track(hb);
                self.last_emitted = Some(hb);
                self.tracer.record(at, "emit", format!("seq {seq}"));
                self.try_forward(hb, at)
            }
            Stim::Relay(mode) => {
                self.relay_mode = *mode;
                format!("relay now {}", mode.label())
            }
            Stim::Depart => {
                self.relay_mode = RelayMode::Departed;
                let batch = self.scheduler.take_batch();
                let retracted = self
                    .feedback
                    .retract_with(batch.iter().map(|hb| hb.id), &mut self.recorder);
                let mut recoveries = Vec::new();
                for hb in batch {
                    self.ledger.relay_failed(hb.id, DeviceId::new(1));
                    recoveries.push(format!("seq{}: {}", hb.seq, self.recover(hb, at)));
                }
                format!(
                    "relay departed; retracted {retracted}, requeued [{}]",
                    recoveries.join(", ")
                )
            }
            Stim::Rejoin => {
                self.relay_mode = RelayMode::Accepting;
                self.scheduler.begin_period(at);
                String::from("relay rejoined; fresh period")
            }
            Stim::DuplicateStorm { copies } => {
                let last = self.last_emitted.expect("storm needs a prior emit");
                let mut swallowed = Vec::new();
                for _ in 0..*copies {
                    let copy = Heartbeat {
                        id: self.ids.next_id(),
                        ..last
                    };
                    // Adversarial traffic: not an emitted heartbeat, so
                    // it bypasses the checker/ledger on purpose.
                    swallowed.push(self.deliver_to_server(copy, at, false).to_string());
                }
                format!("storm of {copies}: [{}]", swallowed.join(", "))
            }
            Stim::RedeliverLastCopy => {
                let last = self.last_emitted.expect("redeliver needs a prior emit");
                let outcome = self.deliver_to_server(last, at, true);
                format!("redelivered same copy: {outcome}")
            }
            Stim::Mark { at: raw } => {
                self.tracer.record(*raw, "mark", "scripted");
                format!("marked raw stamp {raw}")
            }
            Stim::ProbeWindow { from, to } => {
                self.probes.push((*from, *to));
                format!("probe window [{from}, {to})")
            }
        };
        // Fold freshly observed hook steps into the logged line so they
        // are part of the byte-reproducibility surface.
        let hooks = self.fresh_hook_steps();
        format!("{line}{hooks}")
    }

    fn advance_to(&mut self, t: SimTime) -> String {
        assert!(
            t >= self.now,
            "advance_to({t}) behind the clock ({})",
            self.now
        );
        let mut fired = 0usize;
        while let Some(due) = self.next_due() {
            if due > t {
                break;
            }
            self.now = self.now.max(due);
            fired += 1;
            // Tie order at one instant: feedback sweeps, then ledger
            // retries, then scheduler flushes.
            let expired = self.feedback.take_expired(due);
            if !expired.is_empty() {
                for pending in expired {
                    self.tracer.record(
                        due,
                        "feedback-timeout",
                        format!("seq {}", pending.heartbeat.seq),
                    );
                    if self.ledger.entry(pending.heartbeat.id).is_some() {
                        self.recover(pending.heartbeat, due);
                    }
                }
                continue;
            }
            let due_retries = self.ledger.take_due(due);
            if !due_retries.is_empty() {
                for hb in due_retries {
                    self.tracer.record(due, "retry", format!("seq {}", hb.seq));
                    self.try_forward(hb, due);
                }
                continue;
            }
            if self.scheduler.flush_due(due).is_some() {
                self.flush_relay(due);
            }
        }
        self.now = t;
        let hooks = self.fresh_hook_steps();
        format!("clock -> {t} ({fired} timer(s) fired){hooks}")
    }

    fn view(&self) -> StackView {
        StackView {
            now: self.now,
            in_flight: self.ledger.in_flight(),
            feedback_pending: self.feedback.pending_count(),
            relay_buffered: self.scheduler.buffered().count(),
            server_delivered: self.server.delivered(),
            server_duplicates: self.server.duplicates(),
            server_rejected_expired: self.server.rejected_expired(),
            fallbacks: self.fallbacks,
            confirmed: self.confirmed,
            retries: self.ledger.stats().retries,
        }
    }

    fn quiesce(&mut self) -> StackSnapshot {
        // Conservation: everything still in flight must sit in a real
        // buffer. Panics (with seed context) on silent loss.
        let mut surviving: HashSet<MessageId> = HashSet::new();
        surviving.extend(self.scheduler.buffered().map(|hb| hb.id));
        surviving.extend(self.feedback.pending_ids());
        surviving.extend(self.ledger.in_flight_ids());
        self.checker.on_finish(&surviving, &self.tracer);

        let margin = FeedbackTracker::RESCUE_MARGIN;
        let retry_violations = self
            .recorder
            .planned
            .iter()
            .filter(|(_, _, at, liveness)| {
                *at > SimTime::ZERO
                    + liveness
                        .saturating_since(SimTime::ZERO)
                        .saturating_sub(margin)
            })
            .map(|(id, attempt, at, liveness)| {
                format!("{id} attempt {attempt} planned {at} past liveness {liveness}")
            })
            .collect();

        let times: Vec<SimTime> = self.tracer.iter().map(|e| e.time).collect();
        let trace_sorted = times.windows(2).all(|w| w[0] <= w[1]);
        let probe_mismatches = self
            .probes
            .iter()
            .filter_map(|&(from, to)| {
                let fast = self.tracer.between(from, to).count();
                let slow = times.iter().filter(|&&t| t >= from && t < to).count();
                (fast != slow)
                    .then(|| format!("between({from}, {to}) = {fast}, linear scan = {slow}"))
            })
            .collect();

        StackSnapshot {
            view: self.view(),
            audit: self.checker.delivery_audit(),
            hook_log: std::mem::take(&mut self.recorder.log),
            outcomes: self.outcomes.clone(),
            retry_violations,
            trace_sorted,
            probe_mismatches,
            offline_secs: self
                .server
                .offline_time(self.source, self.app, SimTime::ZERO, self.now)
                .as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::ScenarioDag;

    #[test]
    fn clean_forward_confirms_without_rng_draws() {
        let mut d = ScenarioDag::new("clean-forward");
        d.inject(
            "emit",
            Stim::Emit {
                seq: 1,
                budget: SimDuration::from_secs(810),
            },
        );
        // The relay period (60 s) elapses and flushes the batch.
        d.advance("period", SimTime::from_secs(61));
        d.require("delivered-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.view.fallbacks == 0 && s.view.retries == 0 {
                Ok(String::from("1 delivery, 0 retries, 0 fallbacks"))
            } else {
                Err(format!(
                    "delivered={} retries={} fallbacks={}",
                    s.view.server_delivered, s.view.retries, s.view.fallbacks
                ))
            }
        });
        d.require("accounted", |s: &StackSnapshot| {
            if s.audit.delivered == 1 && s.audit.in_flight == 0 {
                Ok(String::from("audit balanced"))
            } else {
                Err(format!("audit {:?}", s.audit))
            }
        });
        let mut stack = StackHarness::new(StackConfig::default());
        d.run(&mut stack).assert_ok();
    }

    #[test]
    fn lost_payload_is_rescued_by_feedback_timeout() {
        let mut d = ScenarioDag::new("lost-payload");
        d.perturb("lossy", Stim::Relay(RelayMode::LosingPayloads));
        d.inject(
            "emit",
            Stim::Emit {
                seq: 1,
                budget: SimDuration::from_secs(810),
            },
        );
        d.advance("drain", SimTime::from_secs(810));
        d.require("exactly-once", |s: &StackSnapshot| {
            if s.view.server_delivered == 1 && s.audit.delivered == 1 {
                Ok(format!(
                    "delivered once after {} retries + {} fallback(s)",
                    s.view.retries, s.view.fallbacks
                ))
            } else {
                Err(format!("view {:?} audit {:?}", s.view, s.audit))
            }
        });
        d.require("liveness-budget-respected", |s: &StackSnapshot| {
            if s.retry_violations.is_empty() {
                Ok(String::from("no retry past liveness"))
            } else {
                Err(s.retry_violations.join("; "))
            }
        });
        let mut stack = StackHarness::new(StackConfig::default());
        d.run(&mut stack).assert_ok();
    }
}
