//! Property tests for mobility invariants.

use hbr_mobility::{Field, Mobility, PathLoss, Position};
use hbr_mobility::model::Bounds;
use hbr_sim::{DeviceId, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Random-waypoint devices never leave their bounds, whatever the
    /// sequence of advance instants.
    #[test]
    fn waypoint_confined(
        seed in any::<u64>(),
        steps in proptest::collection::vec(1u64..600, 1..60),
    ) {
        let bounds = Bounds::square(80.0);
        let mut m = Mobility::random_waypoint(
            Position::new(40.0, 40.0), bounds, 0.5, 1.5, 10.0,
        );
        let mut rng = SimRng::seed_from(seed);
        let mut t = SimTime::ZERO;
        for s in steps {
            t += hbr_sim::SimDuration::from_secs(s);
            m.advance_to(t, &mut rng);
            prop_assert!(bounds.contains(m.position()));
        }
    }

    /// Total displacement never exceeds max speed × elapsed time.
    #[test]
    fn speed_limit_respected(seed in any::<u64>(), secs in 1u64..2000) {
        let start = Position::new(50.0, 50.0);
        let max_speed = 1.5;
        let mut m = Mobility::random_waypoint(
            start, Bounds::square(100.0), 0.5, max_speed, 0.0,
        );
        let mut rng = SimRng::seed_from(seed);
        m.advance_to(SimTime::from_secs(secs), &mut rng);
        let travelled = m.position().distance_to(start);
        prop_assert!(travelled <= max_speed * secs as f64 + 1e-6);
    }

    /// Distance estimation from a clean RSSI is exact for any geometry.
    #[test]
    fn rssi_inversion_exact(d in 1.0f64..400.0) {
        let ch = PathLoss::indoor_wifi();
        let est = ch.estimate_distance(ch.rssi_at(d));
        prop_assert!((est - d).abs() / d < 1e-9);
    }

    /// Neighbour lists are sorted by distance and contain only in-range ids.
    #[test]
    fn neighbours_sorted(points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..30)) {
        let field: Field = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (DeviceId::new(i as u32), Mobility::stationary(Position::new(x, y))))
            .collect();
        let centre = DeviceId::new(0);
        let radius = 40.0;
        let ns = field.neighbours_within(centre, radius);
        let mut last = 0.0;
        for (id, d) in &ns {
            prop_assert!(*id != centre);
            prop_assert!(*d <= radius);
            prop_assert!(*d >= last);
            last = *d;
        }
    }
}
