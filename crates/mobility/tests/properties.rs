//! Property tests for mobility invariants.

use hbr_mobility::model::Bounds;
use hbr_mobility::{Field, Mobility, PathLoss, Position};
use hbr_sim::{DeviceId, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Random-waypoint devices never leave their bounds, whatever the
    /// sequence of advance instants.
    #[test]
    fn waypoint_confined(
        seed in any::<u64>(),
        steps in proptest::collection::vec(1u64..600, 1..60),
    ) {
        let bounds = Bounds::square(80.0);
        let mut m = Mobility::random_waypoint(
            Position::new(40.0, 40.0), bounds, 0.5, 1.5, 10.0,
        );
        let mut rng = SimRng::seed_from(seed);
        let mut t = SimTime::ZERO;
        for s in steps {
            t += hbr_sim::SimDuration::from_secs(s);
            m.advance_to(t, &mut rng);
            prop_assert!(bounds.contains(m.position()));
        }
    }

    /// Total displacement never exceeds max speed × elapsed time.
    #[test]
    fn speed_limit_respected(seed in any::<u64>(), secs in 1u64..2000) {
        let start = Position::new(50.0, 50.0);
        let max_speed = 1.5;
        let mut m = Mobility::random_waypoint(
            start, Bounds::square(100.0), 0.5, max_speed, 0.0,
        );
        let mut rng = SimRng::seed_from(seed);
        m.advance_to(SimTime::from_secs(secs), &mut rng);
        let travelled = m.position().distance_to(start);
        prop_assert!(travelled <= max_speed * secs as f64 + 1e-6);
    }

    /// Distance estimation from a clean RSSI is exact for any geometry.
    #[test]
    fn rssi_inversion_exact(d in 1.0f64..400.0) {
        let ch = PathLoss::indoor_wifi();
        let est = ch.estimate_distance(ch.rssi_at(d));
        prop_assert!((est - d).abs() / d < 1e-9);
    }

    /// Neighbour lists are sorted by distance and contain only in-range ids.
    #[test]
    fn neighbours_sorted(points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..30)) {
        let field: Field = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (DeviceId::new(i as u32), Mobility::stationary(Position::new(x, y))))
            .collect();
        let centre = DeviceId::new(0);
        let radius = 40.0;
        let ns = field.neighbours_within(centre, radius);
        let mut last = 0.0;
        for (id, d) in &ns {
            prop_assert!(*id != centre);
            prop_assert!(*d <= radius);
            prop_assert!(*d >= last);
            last = *d;
        }
    }

    /// The grid-indexed `neighbours_within` is exactly the brute-force
    /// scan for any random cloud, query radius and centre — including
    /// after `advance_to` moves walkers (which rebuilds the cached
    /// index), and for untracked devices (both return nothing).
    #[test]
    fn grid_equals_scan(
        points in proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..60),
        radius in 0.0f64..90.0,
        seed in any::<u64>(),
        advance_secs in 0u64..180,
    ) {
        let mut field: Field = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (DeviceId::new(i as u32), Mobility::stationary(Position::new(x, y))))
            .collect();
        // A walker and a drifting device so advancing genuinely moves
        // positions (stationary clouds would never exercise the rebuild).
        let walker = DeviceId::new(10_000);
        field.insert(
            walker,
            Mobility::random_waypoint(Position::new(100.0, 100.0), Bounds::square(200.0), 0.5, 1.5, 5.0),
        );
        field.insert(DeviceId::new(10_001), Mobility::linear(Position::new(0.0, 0.0), (1.3, 0.7)));
        if advance_secs > 0 {
            let mut rng = SimRng::seed_from(seed);
            field.advance_to(SimTime::from_secs(advance_secs), &mut rng);
        }
        for i in 0..points.len() {
            let id = DeviceId::new(i as u32);
            prop_assert_eq!(
                field.neighbours_within(id, radius),
                field.neighbours_within_scan(id, radius)
            );
        }
        prop_assert_eq!(
            field.neighbours_within(walker, radius),
            field.neighbours_within_scan(walker, radius)
        );
        // Untracked devices: both paths agree on "no neighbours".
        let untracked = DeviceId::new(99_999);
        prop_assert!(field.neighbours_within(untracked, radius).is_empty());
        prop_assert!(field.neighbours_within_scan(untracked, radius).is_empty());
    }

    /// Exact-tie distances (lattice clouds put many devices at equal
    /// range) break by ascending id identically in both paths, and the
    /// grid honours a radius far smaller or larger than its cell.
    #[test]
    fn grid_tie_breaking_matches_scan(
        n in 2usize..30,
        radius in 0.0f64..12.0,
    ) {
        // A 3×3-spaced lattice with duplicated cells: ids i and i+n sit
        // on the same point, so every distance appears at least twice.
        let field: Field = (0..2 * n)
            .map(|i| {
                let k = i % n;
                let pos = Position::new((k % 3) as f64 * 3.0, ((k / 3) % 3) as f64 * 3.0);
                (DeviceId::new(i as u32), Mobility::stationary(pos))
            })
            .collect();
        for i in 0..2 * n {
            let id = DeviceId::new(i as u32);
            let grid = field.neighbours_within(id, radius);
            prop_assert_eq!(&grid, &field.neighbours_within_scan(id, radius));
            // Ties are ordered by id: any equal-distance run ascends.
            for w in grid.windows(2) {
                if w[0].1 == w[1].1 {
                    prop_assert!(w[0].0 < w[1].0);
                }
            }
        }
    }
}
