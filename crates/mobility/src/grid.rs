//! A uniform-grid spatial index for neighbourhood queries.
//!
//! The paper's detection sweep asks, for every matching UE, "which
//! devices sit within D2D range?" A linear scan answers that in O(n)
//! per query — O(n²) per sweep — which caps crowd sizes long before the
//! densities the related aggregation/trunking studies evaluate at.
//! [`SpatialGrid`] buckets devices into square cells whose side equals
//! the discovery radius, so a query touches only the 3×3 cell
//! neighbourhood around the querying device: O(local density) instead
//! of O(n).
//!
//! The index is a *snapshot* of device positions; [`Field`](crate::Field)
//! owns one as a cache, rebuilding it whenever positions change. Queries
//! with a radius other than the cell side stay correct — the scan just
//! widens to however many cell rings the radius needs.

use std::collections::HashMap;

use hbr_sim::DeviceId;

use crate::position::Position;

/// A uniform grid of square cells indexing device positions.
///
/// # Examples
///
/// ```
/// use hbr_mobility::grid::SpatialGrid;
/// use hbr_mobility::Position;
/// use hbr_sim::DeviceId;
///
/// let grid = SpatialGrid::build(
///     20.0,
///     [
///         (DeviceId::new(0), Position::ORIGIN),
///         (DeviceId::new(1), Position::new(6.0, 8.0)),
///         (DeviceId::new(2), Position::new(100.0, 0.0)),
///     ],
/// );
/// let near = grid.neighbours_within(DeviceId::new(0), Position::ORIGIN, 20.0);
/// assert_eq!(near, vec![(DeviceId::new(1), 10.0)]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_m: f64,
    cells: HashMap<(i64, i64), Vec<(DeviceId, Position)>>,
    len: usize,
}

impl SpatialGrid {
    /// Builds an index over `points` with square cells of side `cell_m`.
    /// A non-finite or non-positive `cell_m` falls back to 1 m cells.
    pub fn build(cell_m: f64, points: impl IntoIterator<Item = (DeviceId, Position)>) -> Self {
        let cell_m = if cell_m.is_finite() && cell_m > 0.0 {
            cell_m
        } else {
            1.0
        };
        let mut cells: HashMap<(i64, i64), Vec<(DeviceId, Position)>> = HashMap::new();
        let mut len = 0;
        for (id, pos) in points {
            cells
                .entry(Self::key_for(cell_m, pos))
                .or_default()
                .push((id, pos));
            len += 1;
        }
        SpatialGrid { cell_m, cells, len }
    }

    /// The cell side in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of indexed devices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index holds no devices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key_for(cell_m: f64, pos: Position) -> (i64, i64) {
        // Positions are bounded by the deployment area, so the cast
        // cannot overflow in practice; saturating keeps pathological
        // coordinates from wrapping.
        (
            (pos.x / cell_m).floor() as i64,
            (pos.y / cell_m).floor() as i64,
        )
    }

    /// All indexed devices other than `centre_id` within `radius` metres
    /// of `centre`, sorted by ascending distance with ties broken by
    /// device id — the same contract as
    /// [`Field::neighbours_within`](crate::Field::neighbours_within).
    ///
    /// Only the cells overlapping the query disc are scanned: for the
    /// canonical `radius == cell_m` query that is the 3×3 neighbourhood
    /// around the centre's cell.
    pub fn neighbours_within(
        &self,
        centre_id: DeviceId,
        centre: Position,
        radius: f64,
    ) -> Vec<(DeviceId, f64)> {
        if !radius.is_finite() || radius < 0.0 {
            return Vec::new();
        }
        let (cx, cy) = Self::key_for(self.cell_m, centre);
        let reach = (radius / self.cell_m).ceil() as i64;
        let mut out: Vec<(DeviceId, f64)> = Vec::new();
        for gx in (cx - reach)..=(cx + reach) {
            for gy in (cy - reach)..=(cy + reach) {
                let Some(bucket) = self.cells.get(&(gx, gy)) else {
                    continue;
                };
                for &(id, pos) in bucket {
                    if id == centre_id {
                        continue;
                    }
                    let d = centre.distance_to(pos);
                    if d <= radius {
                        out.push((id, d));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId::new(i)
    }

    fn grid_of(cell: f64, points: &[(u32, f64, f64)]) -> SpatialGrid {
        SpatialGrid::build(
            cell,
            points
                .iter()
                .map(|&(i, x, y)| (dev(i), Position::new(x, y))),
        )
    }

    #[test]
    fn matches_linear_scan_semantics() {
        let grid = grid_of(
            20.0,
            &[
                (0, 0.0, 0.0),
                (1, 10.0, 0.0),
                (2, 5.0, 0.0),
                (3, 100.0, 0.0),
            ],
        );
        let n = grid.neighbours_within(dev(0), Position::ORIGIN, 20.0);
        assert_eq!(n, vec![(dev(2), 5.0), (dev(1), 10.0)]);
    }

    #[test]
    fn ties_break_by_id() {
        let grid = grid_of(5.0, &[(0, 0.0, 0.0), (2, 1.0, 0.0), (1, -1.0, 0.0)]);
        let n = grid.neighbours_within(dev(0), Position::ORIGIN, 5.0);
        assert_eq!(n, vec![(dev(1), 1.0), (dev(2), 1.0)]);
    }

    #[test]
    fn radius_larger_than_cell_widens_the_scan() {
        // 1 m cells, 50 m query: devices many rings away must be found.
        let grid = grid_of(1.0, &[(0, 0.0, 0.0), (1, 49.0, 0.0), (2, 51.0, 0.0)]);
        let n = grid.neighbours_within(dev(0), Position::ORIGIN, 50.0);
        assert_eq!(n, vec![(dev(1), 49.0)]);
    }

    #[test]
    fn radius_smaller_than_cell_stays_exact() {
        let grid = grid_of(100.0, &[(0, 0.0, 0.0), (1, 3.0, 4.0), (2, 30.0, 0.0)]);
        let n = grid.neighbours_within(dev(0), Position::ORIGIN, 10.0);
        assert_eq!(n, vec![(dev(1), 5.0)]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let grid = grid_of(10.0, &[(0, -5.0, -5.0), (1, -14.0, -5.0), (2, 4.0, -5.0)]);
        let n = grid.neighbours_within(dev(0), Position::new(-5.0, -5.0), 10.0);
        assert_eq!(n, vec![(dev(1), 9.0), (dev(2), 9.0)]);
    }

    #[test]
    fn degenerate_cell_sizes_fall_back() {
        let grid = grid_of(0.0, &[(0, 0.0, 0.0), (1, 0.5, 0.0)]);
        assert_eq!(grid.cell_m(), 1.0);
        let n = grid.neighbours_within(dev(0), Position::ORIGIN, 1.0);
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn zero_radius_finds_only_coincident() {
        let grid = grid_of(1.0, &[(0, 2.0, 2.0), (1, 2.0, 2.0), (2, 2.1, 2.0)]);
        let n = grid.neighbours_within(dev(0), Position::new(2.0, 2.0), 0.0);
        assert_eq!(n, vec![(dev(1), 0.0)]);
    }

    #[test]
    fn len_and_empty() {
        let grid = grid_of(1.0, &[]);
        assert!(grid.is_empty());
        let grid = grid_of(1.0, &[(0, 0.0, 0.0)]);
        assert_eq!(grid.len(), 1);
        assert!(!grid.is_empty());
    }
}
