//! Planar positions in metres.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in the 2-D simulation plane, in metres.
///
/// # Examples
///
/// ```
/// use hbr_mobility::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East–west coordinate in metres.
    pub x: f64,
    /// North–south coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin of the plane.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from coordinates in metres.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is NaN.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(
            !x.is_nan() && !y.is_nan(),
            "Position coordinates must not be NaN"
        );
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Linear interpolation: the point a fraction `t ∈ [0, 1]` of the way
    /// towards `target` (`t` is clamped).
    pub fn lerp(self, target: Position, t: f64) -> Position {
        let t = t.clamp(0.0, 1.0);
        Position {
            x: self.x + (target.x - self.x) * t,
            y: self.y + (target.y - self.y) * t,
        }
    }

    /// The point reached by walking `distance` metres from `self` towards
    /// `target`, stopping at `target` if the distance overshoots.
    pub fn step_towards(self, target: Position, distance: f64) -> Position {
        let full = self.distance_to(target);
        if full <= distance || full == 0.0 {
            target
        } else {
            self.lerp(target, distance / full)
        }
    }
}

impl Add for Position {
    type Output = Position;

    fn add(self, rhs: Position) -> Position {
        Position {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Position {
    type Output = Position;

    fn sub(self, rhs: Position) -> Position {
        Position {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Mul<f64> for Position {
    type Output = Position;

    fn mul(self, rhs: f64) -> Position {
        Position {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}m, {:.2}m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(Position::ORIGIN.distance_to(Position::new(3.0, 4.0)), 5.0);
        assert_eq!(Position::ORIGIN.distance_to(Position::ORIGIN), 0.0);
    }

    #[test]
    fn lerp_clamps() {
        let a = Position::ORIGIN;
        let b = Position::new(10.0, 0.0);
        assert_eq!(a.lerp(b, 0.5), Position::new(5.0, 0.0));
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
    }

    #[test]
    fn step_towards_stops_at_target() {
        let a = Position::ORIGIN;
        let b = Position::new(10.0, 0.0);
        assert_eq!(a.step_towards(b, 4.0), Position::new(4.0, 0.0));
        assert_eq!(a.step_towards(b, 40.0), b);
        assert_eq!(b.step_towards(b, 1.0), b, "degenerate zero-length walk");
    }

    #[test]
    fn vector_arithmetic() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(3.0, 5.0);
        assert_eq!(a + b, Position::new(4.0, 7.0));
        assert_eq!(b - a, Position::new(2.0, 3.0));
        assert_eq!(a * 2.0, Position::new(2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Position::new(f64::NAN, 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", Position::new(1.5, -2.0)), "(1.50m, -2.00m)");
    }
}
