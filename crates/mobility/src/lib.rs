//! Positions, mobility and radio-range estimation.
//!
//! The paper's framework cares about smartphone movement for exactly two
//! reasons:
//!
//! 1. **Relay matching** — a UE ranks discovered relays by the *relative
//!    distance* estimated from D2D discovery signal strength (§III-C), and
//!    prefers the nearest to reduce the chance of disconnection.
//! 2. **Session survival** — a D2D pair disconnects when the devices drift
//!    past the technology's communication range (§III-A, §V-C), forcing the
//!    UE onto the cellular fallback path.
//!
//! This crate provides the minimal substrate for both: 2-D [`Position`]s, a
//! family of [`Mobility`] models (static crowds for the stadium scenario,
//! random waypoint for ambient movement, linear walks for controlled range
//! sweeps), a log-distance [`rssi`] path-loss model with its inverse
//! estimator, and a [`Field`] that tracks every device and answers
//! neighbourhood queries.
//!
//! # Examples
//!
//! ```
//! use hbr_mobility::{Field, Mobility, Position};
//! use hbr_sim::{DeviceId, SimRng, SimTime};
//!
//! let mut field = Field::new();
//! field.insert(DeviceId::new(0), Mobility::stationary(Position::new(0.0, 0.0)));
//! field.insert(DeviceId::new(1), Mobility::stationary(Position::new(3.0, 4.0)));
//!
//! let mut rng = SimRng::seed_from(1);
//! field.advance_to(SimTime::from_secs(60), &mut rng);
//! let d = field.distance(DeviceId::new(0), DeviceId::new(1)).unwrap();
//! assert_eq!(d, 5.0);
//! ```

pub mod field;
pub mod grid;
pub mod model;
pub mod position;
pub mod rssi;

pub use field::Field;
pub use grid::SpatialGrid;
pub use model::Mobility;
pub use position::Position;
pub use rssi::{PathLoss, Rssi};
