//! Mobility models.
//!
//! Three models cover the scenarios in the paper's evaluation:
//!
//! * [`Mobility::stationary`] — phones resting on desks or in pockets in a
//!   static crowd (the controlled 1 m / multi-UE experiments of §V-A).
//! * [`Mobility::random_waypoint`] — ambient pedestrian movement inside a
//!   bounded area, the standard model for opportunistic-contact studies.
//! * [`Mobility::linear`] — a constant-velocity walk, used for the
//!   communication-distance sweep (Fig. 12) and for forcing out-of-range
//!   disconnections in failure-injection tests.
//!
//! Models are advanced lazily: [`Mobility::advance_to`] moves the internal
//! state from its last-updated instant to the requested instant, so the
//! field only pays for movement when somebody asks for a position.

use hbr_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::position::Position;

/// Axis-aligned rectangular area used to bound random-waypoint movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Minimum corner (inclusive).
    pub min: Position,
    /// Maximum corner (inclusive).
    pub max: Position,
}

impl Bounds {
    /// Creates bounds from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` does not lie (component-wise) at or below `max`.
    pub fn new(min: Position, max: Position) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Bounds min corner must be <= max corner"
        );
        Bounds { min, max }
    }

    /// A square area with the given side length anchored at the origin.
    pub fn square(side: f64) -> Self {
        Bounds::new(Position::ORIGIN, Position::new(side, side))
    }

    /// `true` if `p` lies inside (or on the edge of) the area.
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Uniformly random point inside the area.
    pub fn sample(&self, rng: &mut SimRng) -> Position {
        let x = if self.min.x == self.max.x {
            self.min.x
        } else {
            rng.range(self.min.x..self.max.x)
        };
        let y = if self.min.y == self.max.y {
            self.min.y
        } else {
            rng.range(self.min.y..self.max.y)
        };
        Position::new(x, y)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Kind {
    Stationary,
    RandomWaypoint {
        bounds: Bounds,
        /// Walking speed range in m/s (typical pedestrians: 0.5–1.5).
        speed_min: f64,
        speed_max: f64,
        /// Pause at each waypoint, in seconds.
        pause_secs: f64,
        /// Current leg: destination and speed; `None` while pausing.
        leg: Option<(Position, f64)>,
        /// Remaining pause time in seconds (only meaningful without a leg).
        pause_left: f64,
    },
    Linear {
        /// Velocity in m/s per axis.
        velocity: (f64, f64),
    },
    Path {
        /// Remaining `(waypoint, speed m/s, pause s)` legs.
        legs: Vec<(Position, f64, f64)>,
        /// Index of the current leg.
        current: usize,
        /// Remaining pause at the current waypoint, seconds.
        pause_left: f64,
    },
}

/// A per-device movement process that can be advanced through time.
///
/// # Examples
///
/// ```
/// use hbr_mobility::{Mobility, Position};
/// use hbr_sim::{SimRng, SimTime};
///
/// // A device walking east at 1 m/s.
/// let mut walker = Mobility::linear(Position::ORIGIN, (1.0, 0.0));
/// let mut rng = SimRng::seed_from(0);
/// walker.advance_to(SimTime::from_secs(12), &mut rng);
/// assert_eq!(walker.position(), Position::new(12.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mobility {
    position: Position,
    updated_at: SimTime,
    kind: Kind,
}

impl Mobility {
    /// A device that never moves — the dense-crowd / lab-bench case.
    pub fn stationary(position: Position) -> Self {
        Mobility {
            position,
            updated_at: SimTime::ZERO,
            kind: Kind::Stationary,
        }
    }

    /// Random-waypoint movement inside `bounds` with speeds drawn uniformly
    /// from `[speed_min, speed_max]` m/s and `pause_secs` of rest at each
    /// waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty, non-positive or not finite, if
    /// `pause_secs` is negative, or if `start` lies outside `bounds`.
    pub fn random_waypoint(
        start: Position,
        bounds: Bounds,
        speed_min: f64,
        speed_max: f64,
        pause_secs: f64,
    ) -> Self {
        assert!(
            speed_min.is_finite() && speed_max.is_finite() && speed_min > 0.0,
            "random_waypoint speeds must be finite and positive"
        );
        assert!(speed_min <= speed_max, "speed_min must be <= speed_max");
        assert!(pause_secs >= 0.0, "pause_secs must be non-negative");
        assert!(bounds.contains(start), "start must lie inside bounds");
        Mobility {
            position: start,
            updated_at: SimTime::ZERO,
            kind: Kind::RandomWaypoint {
                bounds,
                speed_min,
                speed_max,
                pause_secs,
                leg: None,
                pause_left: 0.0,
            },
        }
    }

    /// Scripted movement: walk to each waypoint in turn at the leg's
    /// speed, pause there, then continue; stop for good at the last one.
    /// This is how scenario authors model commutes ("home → bus stop →
    /// office") without a stochastic model.
    ///
    /// # Panics
    ///
    /// Panics if any leg's speed is not positive and finite or a pause is
    /// negative.
    pub fn waypoint_path(start: Position, legs: Vec<(Position, f64, f64)>) -> Self {
        for (i, (_, speed, pause)) in legs.iter().enumerate() {
            assert!(
                speed.is_finite() && *speed > 0.0,
                "leg {i}: speed must be positive and finite"
            );
            assert!(*pause >= 0.0, "leg {i}: pause must be non-negative");
        }
        Mobility {
            position: start,
            updated_at: SimTime::ZERO,
            kind: Kind::Path {
                legs,
                current: 0,
                pause_left: 0.0,
            },
        }
    }

    /// Constant-velocity movement (m/s per axis), unbounded.
    pub fn linear(start: Position, velocity: (f64, f64)) -> Self {
        assert!(
            velocity.0.is_finite() && velocity.1.is_finite(),
            "linear velocity must be finite"
        );
        Mobility {
            position: start,
            updated_at: SimTime::ZERO,
            kind: Kind::Linear { velocity },
        }
    }

    /// The position as of the last [`advance_to`](Mobility::advance_to).
    pub fn position(&self) -> Position {
        self.position
    }

    /// The instant the position was last brought up to date.
    pub fn updated_at(&self) -> SimTime {
        self.updated_at
    }

    /// Moves the model forward to `now`. Earlier instants are ignored (the
    /// model never rewinds), so callers may advance opportunistically.
    pub fn advance_to(&mut self, now: SimTime, rng: &mut SimRng) {
        let Some(elapsed) = now.checked_since(self.updated_at) else {
            return;
        };
        if elapsed.is_zero() {
            return;
        }
        let mut remaining = elapsed.as_secs_f64();
        match &mut self.kind {
            Kind::Stationary => {}
            Kind::Linear { velocity } => {
                self.position = Position::new(
                    self.position.x + velocity.0 * remaining,
                    self.position.y + velocity.1 * remaining,
                );
            }
            Kind::Path {
                legs,
                current,
                pause_left,
            } => {
                while remaining > 1e-9 && *current < legs.len() {
                    if *pause_left > 0.0 {
                        let used = pause_left.min(remaining);
                        *pause_left -= used;
                        remaining -= used;
                        continue;
                    }
                    let (dest, speed, pause) = legs[*current];
                    let dist_left = self.position.distance_to(dest);
                    let time_needed = dist_left / speed;
                    if time_needed > remaining {
                        self.position = self.position.step_towards(dest, speed * remaining);
                        remaining = 0.0;
                    } else {
                        self.position = dest;
                        remaining -= time_needed;
                        *pause_left = pause;
                        *current += 1;
                    }
                }
            }
            Kind::RandomWaypoint {
                bounds,
                speed_min,
                speed_max,
                pause_secs,
                leg,
                pause_left,
            } => {
                // Alternate pause → walk legs until the elapsed budget is used.
                while remaining > 1e-9 {
                    match leg {
                        None => {
                            if *pause_left > remaining {
                                *pause_left -= remaining;
                                remaining = 0.0;
                            } else {
                                remaining -= *pause_left;
                                *pause_left = 0.0;
                                let dest = bounds.sample(rng);
                                let speed = if speed_min == speed_max {
                                    *speed_min
                                } else {
                                    rng.range(*speed_min..*speed_max)
                                };
                                *leg = Some((dest, speed));
                            }
                        }
                        Some((dest, speed)) => {
                            let dist_left = self.position.distance_to(*dest);
                            let time_needed = dist_left / *speed;
                            if time_needed > remaining {
                                self.position =
                                    self.position.step_towards(*dest, *speed * remaining);
                                remaining = 0.0;
                            } else {
                                self.position = *dest;
                                remaining -= time_needed;
                                *leg = None;
                                *pause_left = *pause_secs;
                            }
                        }
                    }
                }
            }
        }
        self.updated_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from(99)
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = Mobility::stationary(Position::new(2.0, 3.0));
        m.advance_to(SimTime::from_secs(1_000_000), &mut rng());
        assert_eq!(m.position(), Position::new(2.0, 3.0));
    }

    #[test]
    fn linear_moves_proportionally() {
        let mut m = Mobility::linear(Position::ORIGIN, (2.0, -1.0));
        m.advance_to(SimTime::from_secs(10), &mut rng());
        assert_eq!(m.position(), Position::new(20.0, -10.0));
        // Advancing again continues from where it left off.
        m.advance_to(SimTime::from_secs(15), &mut rng());
        assert_eq!(m.position(), Position::new(30.0, -15.0));
    }

    #[test]
    fn advance_never_rewinds() {
        let mut m = Mobility::linear(Position::ORIGIN, (1.0, 0.0));
        m.advance_to(SimTime::from_secs(10), &mut rng());
        let p = m.position();
        m.advance_to(SimTime::from_secs(5), &mut rng());
        assert_eq!(m.position(), p);
        assert_eq!(m.updated_at(), SimTime::from_secs(10));
    }

    #[test]
    fn random_waypoint_stays_in_bounds() {
        let bounds = Bounds::square(50.0);
        let mut m = Mobility::random_waypoint(Position::new(25.0, 25.0), bounds, 0.5, 1.5, 30.0);
        let mut r = rng();
        let mut t = SimTime::ZERO;
        for _ in 0..500 {
            t += SimDuration::from_secs(7);
            m.advance_to(t, &mut r);
            assert!(
                bounds.contains(m.position()),
                "escaped bounds at {t}: {}",
                m.position()
            );
        }
    }

    #[test]
    fn random_waypoint_actually_moves() {
        let bounds = Bounds::square(100.0);
        let start = Position::new(50.0, 50.0);
        let mut m = Mobility::random_waypoint(start, bounds, 1.0, 1.0, 0.0);
        m.advance_to(SimTime::from_secs(120), &mut rng());
        assert!(
            m.position().distance_to(start) > 0.0,
            "expected movement after two minutes without pauses"
        );
    }

    #[test]
    fn random_waypoint_respects_pause() {
        let bounds = Bounds::square(100.0);
        let start = Position::new(50.0, 50.0);
        // Pause far longer than the advance window: device must not move.
        let mut m = Mobility::random_waypoint(start, bounds, 1.0, 1.0, 3_600.0);
        let mut r = rng();
        // Force the model into its initial pause (pause_left starts at 0, so
        // the first advance samples a leg immediately; give it a tiny step
        // first to complete a leg is complex — instead verify total travel
        // is bounded by speed × time).
        m.advance_to(SimTime::from_secs(30), &mut r);
        assert!(m.position().distance_to(start) <= 30.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "inside bounds")]
    fn waypoint_start_outside_bounds_panics() {
        Mobility::random_waypoint(
            Position::new(-1.0, 0.0),
            Bounds::square(10.0),
            1.0,
            1.0,
            0.0,
        );
    }

    #[test]
    fn waypoint_path_walks_pauses_and_stops() {
        // Origin → (10,0) at 1 m/s, pause 5 s → (10,10) at 2 m/s, stay.
        let mut m = Mobility::waypoint_path(
            Position::ORIGIN,
            vec![
                (Position::new(10.0, 0.0), 1.0, 5.0),
                (Position::new(10.0, 10.0), 2.0, 0.0),
            ],
        );
        let mut r = rng();
        m.advance_to(SimTime::from_secs(4), &mut r);
        assert_eq!(m.position(), Position::new(4.0, 0.0), "mid-leg 1");
        m.advance_to(SimTime::from_secs(12), &mut r);
        assert_eq!(m.position(), Position::new(10.0, 0.0), "pausing at wp 1");
        m.advance_to(SimTime::from_secs(17), &mut r);
        // Pause ends at t=15; 2 s walking at 2 m/s = 4 m up.
        assert_eq!(m.position(), Position::new(10.0, 4.0));
        m.advance_to(SimTime::from_secs(1000), &mut r);
        assert_eq!(m.position(), Position::new(10.0, 10.0), "parked at the end");
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn waypoint_path_rejects_zero_speed() {
        Mobility::waypoint_path(Position::ORIGIN, vec![(Position::new(1.0, 0.0), 0.0, 0.0)]);
    }

    #[test]
    fn bounds_sampling_uniform_enough() {
        let bounds = Bounds::new(Position::new(10.0, 10.0), Position::new(20.0, 20.0));
        let mut r = rng();
        for _ in 0..200 {
            assert!(bounds.contains(bounds.sample(&mut r)));
        }
    }

    #[test]
    fn degenerate_bounds_sample_is_fixed() {
        let p = Position::new(5.0, 5.0);
        let bounds = Bounds::new(p, p);
        assert_eq!(bounds.sample(&mut rng()), p);
    }
}
