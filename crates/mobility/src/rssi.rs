//! Signal strength ⇄ distance, the paper's relay-ranking signal.
//!
//! §III-C: *"We can obtain the relative distances between the UE and the
//! discovered relays through signal strength in D2D discovery."* We model
//! the standard log-distance path-loss channel
//!
//! ```text
//! RSSI(d) = P_tx − PL(d₀) − 10·n·log₁₀(d/d₀) + X_σ
//! ```
//!
//! with exponent `n` ≈ 3 indoors and optional log-normal shadowing `X_σ`.
//! [`PathLoss::estimate_distance`] inverts the deterministic part, which is
//! exactly what a phone can do: a noisy, monotone proxy for range that is
//! good enough for *ranking* relays even when the absolute estimate is off.

use hbr_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Received signal strength in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Rssi(pub f64);

impl Rssi {
    /// The raw dBm value.
    pub fn dbm(self) -> f64 {
        self.0
    }
}

/// Log-distance path-loss channel model.
///
/// # Examples
///
/// ```
/// use hbr_mobility::PathLoss;
///
/// let channel = PathLoss::indoor_wifi();
/// let near = channel.rssi_at(1.0);
/// let far = channel.rssi_at(10.0);
/// assert!(near.dbm() > far.dbm());
///
/// // The inverse estimator recovers the distance of a clean measurement.
/// let est = channel.estimate_distance(channel.rssi_at(5.0));
/// assert!((est - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance, in dB.
    pub loss_at_reference_db: f64,
    /// Reference distance in metres (conventionally 1 m).
    pub reference_m: f64,
    /// Path-loss exponent: ~2 free space, ~3 indoor, ~4 obstructed.
    pub exponent: f64,
    /// Log-normal shadowing standard deviation in dB (0 disables noise).
    pub shadowing_sigma_db: f64,
}

impl PathLoss {
    /// Typical 2.4 GHz Wi-Fi Direct indoor channel: 15 dBm transmit power,
    /// 40 dB loss at 1 m, exponent 3, 2 dB shadowing.
    pub fn indoor_wifi() -> Self {
        PathLoss {
            tx_power_dbm: 15.0,
            loss_at_reference_db: 40.0,
            reference_m: 1.0,
            exponent: 3.0,
            shadowing_sigma_db: 2.0,
        }
    }

    /// Bluetooth class-2 channel: 4 dBm transmit power, same indoor geometry.
    pub fn bluetooth() -> Self {
        PathLoss {
            tx_power_dbm: 4.0,
            loss_at_reference_db: 40.0,
            reference_m: 1.0,
            exponent: 3.0,
            shadowing_sigma_db: 2.0,
        }
    }

    /// Deterministic RSSI at `distance_m` metres (no shadowing).
    ///
    /// Distances below the reference distance are clamped to it, matching
    /// the model's validity region.
    pub fn rssi_at(&self, distance_m: f64) -> Rssi {
        let d = distance_m.max(self.reference_m);
        Rssi(
            self.tx_power_dbm
                - self.loss_at_reference_db
                - 10.0 * self.exponent * (d / self.reference_m).log10(),
        )
    }

    /// RSSI at `distance_m` with log-normal shadowing noise drawn from `rng`.
    pub fn measure(&self, distance_m: f64, rng: &mut SimRng) -> Rssi {
        let clean = self.rssi_at(distance_m);
        if self.shadowing_sigma_db == 0.0 {
            clean
        } else {
            Rssi(rng.normal(clean.0, self.shadowing_sigma_db))
        }
    }

    /// Inverts the deterministic model: the distance at which a clean
    /// measurement would produce `rssi`. This is the phone-side distance
    /// estimator used for relay ranking.
    pub fn estimate_distance(&self, rssi: Rssi) -> f64 {
        let loss = self.tx_power_dbm - self.loss_at_reference_db - rssi.0;
        self.reference_m * 10f64.powf(loss / (10.0 * self.exponent))
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::indoor_wifi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_monotonically_decreases_with_distance() {
        let ch = PathLoss::indoor_wifi();
        let mut last = f64::INFINITY;
        for d in [1.0, 2.0, 5.0, 10.0, 50.0, 200.0] {
            let r = ch.rssi_at(d).dbm();
            assert!(r < last, "rssi should fall with distance");
            last = r;
        }
    }

    #[test]
    fn estimate_inverts_clean_measurements() {
        let ch = PathLoss::indoor_wifi();
        for d in [1.0, 3.0, 7.5, 30.0] {
            let est = ch.estimate_distance(ch.rssi_at(d));
            assert!((est - d).abs() < 1e-9, "estimate {est} for true {d}");
        }
    }

    #[test]
    fn sub_reference_distances_clamp() {
        let ch = PathLoss::indoor_wifi();
        assert_eq!(ch.rssi_at(0.1), ch.rssi_at(1.0));
        assert_eq!(ch.rssi_at(0.0), ch.rssi_at(1.0));
    }

    #[test]
    fn shadowing_preserves_ranking_on_average() {
        let ch = PathLoss::indoor_wifi();
        let mut rng = hbr_sim::SimRng::seed_from(3);
        let mut near_wins = 0;
        let trials = 200;
        for _ in 0..trials {
            let near = ch.measure(2.0, &mut rng).dbm();
            let far = ch.measure(12.0, &mut rng).dbm();
            if near > far {
                near_wins += 1;
            }
        }
        assert!(
            near_wins > trials * 9 / 10,
            "ranking should survive 2 dB shadowing most of the time ({near_wins}/{trials})"
        );
    }

    #[test]
    fn zero_sigma_measure_is_deterministic() {
        let ch = PathLoss {
            shadowing_sigma_db: 0.0,
            ..PathLoss::indoor_wifi()
        };
        let mut rng = hbr_sim::SimRng::seed_from(3);
        assert_eq!(ch.measure(4.0, &mut rng), ch.rssi_at(4.0));
    }

    #[test]
    fn bluetooth_is_weaker_than_wifi() {
        let d = 5.0;
        assert!(PathLoss::bluetooth().rssi_at(d).dbm() < PathLoss::indoor_wifi().rssi_at(d).dbm());
    }
}
