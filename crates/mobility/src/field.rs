//! The deployment field: every device's mobility track in one place.

use std::cell::RefCell;
use std::collections::BTreeMap;

use hbr_sim::{DeviceId, SimRng, SimTime};

use crate::grid::SpatialGrid;
use crate::model::Mobility;
use crate::position::Position;

/// Tracks the mobility model of every device and answers position,
/// distance and neighbourhood queries at the current simulation time.
///
/// Devices are stored in a `BTreeMap` so iteration order (and therefore
/// any randomness consumed while advancing models) is deterministic.
///
/// # Examples
///
/// ```
/// use hbr_mobility::{Field, Mobility, Position};
/// use hbr_sim::{DeviceId, SimRng, SimTime};
///
/// let mut field = Field::new();
/// field.insert(DeviceId::new(0), Mobility::stationary(Position::ORIGIN));
/// field.insert(DeviceId::new(1), Mobility::stationary(Position::new(6.0, 8.0)));
/// field.insert(DeviceId::new(2), Mobility::stationary(Position::new(100.0, 0.0)));
///
/// let near = field.neighbours_within(DeviceId::new(0), 20.0);
/// assert_eq!(near, vec![(DeviceId::new(1), 10.0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Field {
    tracks: BTreeMap<DeviceId, Mobility>,
    now: SimTime,
    /// Spatial index over current positions, built lazily on the first
    /// neighbourhood query and kept until a position changes. Interior
    /// mutability lets read-only queries populate the cache.
    grid: RefCell<Option<SpatialGrid>>,
}

impl Field {
    /// Creates an empty field at time zero.
    pub fn new() -> Self {
        Field::default()
    }

    /// Registers (or replaces) the mobility model for `device`.
    pub fn insert(&mut self, device: DeviceId, mobility: Mobility) {
        self.tracks.insert(device, mobility);
        *self.grid.get_mut() = None;
    }

    /// Removes a device's track, returning it if present.
    pub fn remove(&mut self, device: DeviceId) -> Option<Mobility> {
        let removed = self.tracks.remove(&device);
        if removed.is_some() {
            *self.grid.get_mut() = None;
        }
        removed
    }

    /// Number of tracked devices.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` if no devices are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The instant the field was last advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances every device's mobility model to `now`. Instants at or
    /// before the current field time are no-ops — the field never rewinds.
    pub fn advance_to(&mut self, now: SimTime, rng: &mut SimRng) {
        if now <= self.now {
            return;
        }
        for mobility in self.tracks.values_mut() {
            mobility.advance_to(now, rng);
        }
        self.now = now;
        // Positions moved: rebuild the spatial index in place if a query
        // already established one (keeping its cell size), otherwise let
        // the next query size it to its radius.
        let grid = self.grid.get_mut();
        if let Some(cell_m) = grid.as_ref().map(SpatialGrid::cell_m) {
            *grid = Some(SpatialGrid::build(
                cell_m,
                self.tracks.iter().map(|(id, m)| (*id, m.position())),
            ));
        }
    }

    /// The position of `device` as of the last advance, if it is tracked.
    pub fn position(&self, device: DeviceId) -> Option<Position> {
        self.tracks.get(&device).map(Mobility::position)
    }

    /// Distance in metres between two tracked devices.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Option<f64> {
        Some(self.position(a)?.distance_to(self.position(b)?))
    }

    /// All other devices within `radius` metres of `device`, sorted by
    /// ascending distance (ties broken by device id for determinism).
    /// Returns an empty vector if `device` is not tracked.
    ///
    /// Answered from a uniform-grid [`SpatialGrid`] index built lazily
    /// over the current positions and cached until the next
    /// [`advance_to`](Field::advance_to) / [`insert`](Field::insert) /
    /// [`remove`](Field::remove), so a detection sweep over the whole
    /// field costs O(n · local density) instead of O(n²). The result is
    /// identical to [`neighbours_within_scan`](Field::neighbours_within_scan).
    pub fn neighbours_within(&self, device: DeviceId, radius: f64) -> Vec<(DeviceId, f64)> {
        let Some(centre) = self.position(device) else {
            return Vec::new();
        };
        if radius.is_nan() || radius < 0.0 {
            return Vec::new();
        }
        if radius.is_infinite() {
            // An unbounded query touches everything anyway; the grid
            // cannot help.
            return self.neighbours_within_scan(device, radius);
        }
        let mut cache = self.grid.borrow_mut();
        // Cells far narrower or wider than the query radius degrade the
        // scan back towards O(n); resize when out of proportion. The
        // steady state — the world querying one discovery radius — never
        // rebuilds here.
        let unsuitable = |g: &SpatialGrid| {
            radius > 0.0 && (g.cell_m() < radius / 8.0 || g.cell_m() > radius * 8.0)
        };
        if cache.as_ref().is_none_or(unsuitable) {
            *cache = Some(SpatialGrid::build(
                radius.max(1.0),
                self.tracks.iter().map(|(id, m)| (*id, m.position())),
            ));
        }
        cache
            .as_ref()
            .expect("grid cache was just populated")
            .neighbours_within(device, centre, radius)
    }

    /// Reference implementation of [`neighbours_within`](Field::neighbours_within)
    /// as a full linear scan. Kept for equivalence tests and as the
    /// baseline the `bench_neighbours` bench measures the grid against.
    pub fn neighbours_within_scan(&self, device: DeviceId, radius: f64) -> Vec<(DeviceId, f64)> {
        let Some(centre) = self.position(device) else {
            return Vec::new();
        };
        let mut out: Vec<(DeviceId, f64)> = self
            .tracks
            .iter()
            .filter(|(id, _)| **id != device)
            .map(|(id, m)| (*id, centre.distance_to(m.position())))
            .filter(|(_, d)| *d <= radius)
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterates over `(device, position)` pairs in device-id order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, Position)> + '_ {
        self.tracks.iter().map(|(id, m)| (*id, m.position()))
    }
}

impl Extend<(DeviceId, Mobility)> for Field {
    fn extend<T: IntoIterator<Item = (DeviceId, Mobility)>>(&mut self, iter: T) {
        for (id, m) in iter {
            self.insert(id, m);
        }
    }
}

impl FromIterator<(DeviceId, Mobility)> for Field {
    fn from_iter<T: IntoIterator<Item = (DeviceId, Mobility)>>(iter: T) -> Self {
        let mut f = Field::new();
        f.extend(iter);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId::new(i)
    }

    fn static_field(positions: &[(u32, f64, f64)]) -> Field {
        positions
            .iter()
            .map(|&(i, x, y)| (dev(i), Mobility::stationary(Position::new(x, y))))
            .collect()
    }

    #[test]
    fn positions_and_distances() {
        let field = static_field(&[(0, 0.0, 0.0), (1, 3.0, 4.0)]);
        assert_eq!(field.position(dev(0)), Some(Position::ORIGIN));
        assert_eq!(field.distance(dev(0), dev(1)), Some(5.0));
        assert_eq!(field.distance(dev(0), dev(9)), None);
        assert_eq!(field.position(dev(9)), None);
    }

    #[test]
    fn neighbours_sorted_and_filtered() {
        let field = static_field(&[
            (0, 0.0, 0.0),
            (1, 10.0, 0.0),
            (2, 5.0, 0.0),
            (3, 100.0, 0.0),
        ]);
        let n = field.neighbours_within(dev(0), 20.0);
        assert_eq!(n, vec![(dev(2), 5.0), (dev(1), 10.0)]);
        assert!(field.neighbours_within(dev(9), 20.0).is_empty());
    }

    #[test]
    fn neighbour_ties_break_by_id() {
        let field = static_field(&[(0, 0.0, 0.0), (2, 1.0, 0.0), (1, -1.0, 0.0)]);
        let n = field.neighbours_within(dev(0), 5.0);
        assert_eq!(n, vec![(dev(1), 1.0), (dev(2), 1.0)]);
    }

    #[test]
    fn advance_moves_walkers() {
        let mut field = Field::new();
        field.insert(dev(0), Mobility::linear(Position::ORIGIN, (1.0, 0.0)));
        field.insert(dev(1), Mobility::stationary(Position::new(50.0, 0.0)));
        let mut rng = SimRng::seed_from(1);
        field.advance_to(SimTime::from_secs(30), &mut rng);
        assert_eq!(field.position(dev(0)), Some(Position::new(30.0, 0.0)));
        assert_eq!(field.distance(dev(0), dev(1)), Some(20.0));
        assert_eq!(field.now(), SimTime::from_secs(30));
    }

    #[test]
    fn remove_and_len() {
        let mut field = static_field(&[(0, 0.0, 0.0), (1, 1.0, 1.0)]);
        assert_eq!(field.len(), 2);
        assert!(field.remove(dev(0)).is_some());
        assert!(field.remove(dev(0)).is_none());
        assert_eq!(field.len(), 1);
        assert!(!field.is_empty());
    }

    #[test]
    fn grid_and_scan_agree_across_mutations() {
        let mut field = static_field(&[(0, 0.0, 0.0), (1, 3.0, 0.0), (2, 9.0, 9.0)]);
        field.insert(
            dev(3),
            Mobility::linear(Position::new(20.0, 0.0), (-1.0, 0.0)),
        );
        for radius in [0.0, 2.0, 10.0, 50.0] {
            assert_eq!(
                field.neighbours_within(dev(0), radius),
                field.neighbours_within_scan(dev(0), radius),
                "radius {radius} before advancing"
            );
        }
        // Moving devices must invalidate (and rebuild) the cached index.
        let mut rng = SimRng::seed_from(4);
        field.advance_to(SimTime::from_secs(15), &mut rng);
        assert_eq!(
            field.neighbours_within(dev(0), 10.0),
            field.neighbours_within_scan(dev(0), 10.0),
        );
        assert!(field
            .neighbours_within(dev(0), 10.0)
            .iter()
            .any(|&(id, _)| id == dev(3)));
        // So must removal.
        field.remove(dev(1));
        assert_eq!(
            field.neighbours_within(dev(0), 10.0),
            field.neighbours_within_scan(dev(0), 10.0),
        );
    }

    #[test]
    fn degenerate_radii_are_safe() {
        let field = static_field(&[(0, 0.0, 0.0), (1, 1.0, 0.0)]);
        assert!(field.neighbours_within(dev(0), f64::NAN).is_empty());
        assert!(field.neighbours_within(dev(0), -1.0).is_empty());
        assert_eq!(field.neighbours_within(dev(0), f64::INFINITY).len(), 1);
    }

    #[test]
    fn iter_is_in_id_order() {
        let field = static_field(&[(2, 0.0, 0.0), (0, 1.0, 0.0), (1, 2.0, 0.0)]);
        let ids: Vec<_> = field.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
