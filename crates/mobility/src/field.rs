//! The deployment field: every device's mobility track in one place.

use std::collections::BTreeMap;

use hbr_sim::{DeviceId, SimRng, SimTime};

use crate::model::Mobility;
use crate::position::Position;

/// Tracks the mobility model of every device and answers position,
/// distance and neighbourhood queries at the current simulation time.
///
/// Devices are stored in a `BTreeMap` so iteration order (and therefore
/// any randomness consumed while advancing models) is deterministic.
///
/// # Examples
///
/// ```
/// use hbr_mobility::{Field, Mobility, Position};
/// use hbr_sim::{DeviceId, SimRng, SimTime};
///
/// let mut field = Field::new();
/// field.insert(DeviceId::new(0), Mobility::stationary(Position::ORIGIN));
/// field.insert(DeviceId::new(1), Mobility::stationary(Position::new(6.0, 8.0)));
/// field.insert(DeviceId::new(2), Mobility::stationary(Position::new(100.0, 0.0)));
///
/// let near = field.neighbours_within(DeviceId::new(0), 20.0);
/// assert_eq!(near, vec![(DeviceId::new(1), 10.0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Field {
    tracks: BTreeMap<DeviceId, Mobility>,
    now: SimTime,
}

impl Field {
    /// Creates an empty field at time zero.
    pub fn new() -> Self {
        Field::default()
    }

    /// Registers (or replaces) the mobility model for `device`.
    pub fn insert(&mut self, device: DeviceId, mobility: Mobility) {
        self.tracks.insert(device, mobility);
    }

    /// Removes a device's track, returning it if present.
    pub fn remove(&mut self, device: DeviceId) -> Option<Mobility> {
        self.tracks.remove(&device)
    }

    /// Number of tracked devices.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` if no devices are tracked.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The instant the field was last advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances every device's mobility model to `now`. Instants at or
    /// before the current field time are no-ops — the field never rewinds.
    pub fn advance_to(&mut self, now: SimTime, rng: &mut SimRng) {
        if now <= self.now {
            return;
        }
        for mobility in self.tracks.values_mut() {
            mobility.advance_to(now, rng);
        }
        self.now = now;
    }

    /// The position of `device` as of the last advance, if it is tracked.
    pub fn position(&self, device: DeviceId) -> Option<Position> {
        self.tracks.get(&device).map(Mobility::position)
    }

    /// Distance in metres between two tracked devices.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> Option<f64> {
        Some(self.position(a)?.distance_to(self.position(b)?))
    }

    /// All other devices within `radius` metres of `device`, sorted by
    /// ascending distance (ties broken by device id for determinism).
    /// Returns an empty vector if `device` is not tracked.
    pub fn neighbours_within(&self, device: DeviceId, radius: f64) -> Vec<(DeviceId, f64)> {
        let Some(centre) = self.position(device) else {
            return Vec::new();
        };
        let mut out: Vec<(DeviceId, f64)> = self
            .tracks
            .iter()
            .filter(|(id, _)| **id != device)
            .map(|(id, m)| (*id, centre.distance_to(m.position())))
            .filter(|(_, d)| *d <= radius)
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Iterates over `(device, position)` pairs in device-id order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, Position)> + '_ {
        self.tracks.iter().map(|(id, m)| (*id, m.position()))
    }
}

impl Extend<(DeviceId, Mobility)> for Field {
    fn extend<T: IntoIterator<Item = (DeviceId, Mobility)>>(&mut self, iter: T) {
        for (id, m) in iter {
            self.insert(id, m);
        }
    }
}

impl FromIterator<(DeviceId, Mobility)> for Field {
    fn from_iter<T: IntoIterator<Item = (DeviceId, Mobility)>>(iter: T) -> Self {
        let mut f = Field::new();
        f.extend(iter);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId::new(i)
    }

    fn static_field(positions: &[(u32, f64, f64)]) -> Field {
        positions
            .iter()
            .map(|&(i, x, y)| (dev(i), Mobility::stationary(Position::new(x, y))))
            .collect()
    }

    #[test]
    fn positions_and_distances() {
        let field = static_field(&[(0, 0.0, 0.0), (1, 3.0, 4.0)]);
        assert_eq!(field.position(dev(0)), Some(Position::ORIGIN));
        assert_eq!(field.distance(dev(0), dev(1)), Some(5.0));
        assert_eq!(field.distance(dev(0), dev(9)), None);
        assert_eq!(field.position(dev(9)), None);
    }

    #[test]
    fn neighbours_sorted_and_filtered() {
        let field = static_field(&[
            (0, 0.0, 0.0),
            (1, 10.0, 0.0),
            (2, 5.0, 0.0),
            (3, 100.0, 0.0),
        ]);
        let n = field.neighbours_within(dev(0), 20.0);
        assert_eq!(n, vec![(dev(2), 5.0), (dev(1), 10.0)]);
        assert!(field.neighbours_within(dev(9), 20.0).is_empty());
    }

    #[test]
    fn neighbour_ties_break_by_id() {
        let field = static_field(&[(0, 0.0, 0.0), (2, 1.0, 0.0), (1, -1.0, 0.0)]);
        let n = field.neighbours_within(dev(0), 5.0);
        assert_eq!(n, vec![(dev(1), 1.0), (dev(2), 1.0)]);
    }

    #[test]
    fn advance_moves_walkers() {
        let mut field = Field::new();
        field.insert(dev(0), Mobility::linear(Position::ORIGIN, (1.0, 0.0)));
        field.insert(dev(1), Mobility::stationary(Position::new(50.0, 0.0)));
        let mut rng = SimRng::seed_from(1);
        field.advance_to(SimTime::from_secs(30), &mut rng);
        assert_eq!(field.position(dev(0)), Some(Position::new(30.0, 0.0)));
        assert_eq!(field.distance(dev(0), dev(1)), Some(20.0));
        assert_eq!(field.now(), SimTime::from_secs(30));
    }

    #[test]
    fn remove_and_len() {
        let mut field = static_field(&[(0, 0.0, 0.0), (1, 1.0, 1.0)]);
        assert_eq!(field.len(), 2);
        assert!(field.remove(dev(0)).is_some());
        assert!(field.remove(dev(0)).is_none());
        assert_eq!(field.len(), 1);
        assert!(!field.is_empty());
    }

    #[test]
    fn iter_is_in_id_order() {
        let field = static_field(&[(2, 0.0, 0.0), (0, 1.0, 0.0), (1, 2.0, 0.0)]);
        let ids: Vec<_> = field.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
