//! Property tests for energy accounting invariants.

use hbr_energy::{CurrentProfile, EnergyMeter, MicroAmpHours, MilliAmps, Phase, PowerMonitor};
use hbr_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop::sample::select(Phase::ALL.to_vec())
}

prop_compose! {
    fn arb_segment()(
        start_ms in 0u64..100_000,
        dur_ms in 1u64..60_000,
        current in 0.0f64..2_000.0,
        phase in arb_phase(),
    ) -> (SimTime, SimDuration, MilliAmps, Phase) {
        (
            SimTime::from_millis(start_ms),
            SimDuration::from_millis(dur_ms),
            MilliAmps::new(current),
            phase,
        )
    }
}

proptest! {
    /// The meter total always equals the sum of phase totals (energy is
    /// conserved across attribution).
    #[test]
    fn phases_partition_total(segs in proptest::collection::vec(arb_segment(), 1..40)) {
        let mut meter = EnergyMeter::new();
        for (start, dur, current, phase) in segs {
            meter.apply(start, &CurrentProfile::constant(current, dur, phase));
        }
        let by_phase: f64 = Phase::ALL
            .iter()
            .map(|p| meter.phase_total(*p).as_micro_amp_hours())
            .sum();
        let total = meter.total().as_micro_amp_hours();
        prop_assert!((by_phase - total).abs() < 1e-6 * total.max(1.0));
    }

    /// Windowed charge is additive: [a,b) + [b,c) == [a,c).
    #[test]
    fn windows_are_additive(
        segs in proptest::collection::vec(arb_segment(), 1..20),
        cut_ms in 0u64..200_000,
    ) {
        let mut meter = EnergyMeter::new();
        for (start, dur, current, phase) in segs {
            meter.apply(start, &CurrentProfile::constant(current, dur, phase));
        }
        let a = SimTime::ZERO;
        let b = SimTime::from_millis(cut_ms);
        let c = SimTime::from_millis(400_000);
        let left = meter.charge_between(a, b).as_micro_amp_hours();
        let right = meter.charge_between(b, c).as_micro_amp_hours();
        let whole = meter.charge_between(a, c).as_micro_amp_hours();
        prop_assert!((left + right - whole).abs() < 1e-6 * whole.max(1.0));
    }

    /// The sampled Power Monitor integral converges to the exact integral
    /// within one sample of peak current per segment boundary.
    #[test]
    fn monitor_close_to_exact(segs in proptest::collection::vec(arb_segment(), 1..10)) {
        let mut meter = EnergyMeter::new();
        let mut peak = 0.0f64;
        for (start, dur, current, phase) in &segs {
            meter.apply(*start, &CurrentProfile::constant(*current, *dur, *phase));
            peak = peak.max(current.as_milli_amps());
        }
        let monitor = PowerMonitor::paper_instrument();
        let end = meter.end_time() + SimDuration::from_secs(1);
        let sampled = monitor.measure(&meter, SimTime::ZERO, end).as_micro_amp_hours();
        let exact = meter.total().as_micro_amp_hours();
        // Each segment contributes at most 2 boundary samples of error.
        let bound = MilliAmps::new(peak.max(1.0))
            .over(SimDuration::from_millis(200))
            .as_micro_amp_hours()
            * segs.len() as f64;
        prop_assert!(
            (sampled - exact).abs() <= bound,
            "sampled {sampled} vs exact {exact}, bound {bound}"
        );
    }

    /// Merging meters adds their totals exactly.
    #[test]
    fn merge_adds_totals(
        a_segs in proptest::collection::vec(arb_segment(), 0..10),
        b_segs in proptest::collection::vec(arb_segment(), 0..10),
    ) {
        let mut a = EnergyMeter::new();
        for (start, dur, current, phase) in a_segs {
            a.apply(start, &CurrentProfile::constant(current, dur, phase));
        }
        let mut b = EnergyMeter::new();
        for (start, dur, current, phase) in b_segs {
            b.apply(start, &CurrentProfile::constant(current, dur, phase));
        }
        let before = a.total().as_micro_amp_hours() + b.total().as_micro_amp_hours();
        a.merge(&b);
        prop_assert!((a.total().as_micro_amp_hours() - before).abs() < 1e-9 * before.max(1.0));
    }

    /// A battery never reports a negative remaining charge or a level
    /// outside [0, 1].
    #[test]
    fn battery_bounds(capacity in 1.0f64..10_000.0, drains in proptest::collection::vec(0.0f64..5_000.0, 0..20)) {
        let mut battery = hbr_energy::Battery::new(MicroAmpHours::new(capacity));
        for d in drains {
            battery.drain(MicroAmpHours::new(d));
            let level = battery.level();
            prop_assert!((0.0..=1.0).contains(&level));
            prop_assert!(battery.remaining() <= battery.capacity());
        }
    }
}
