//! Piecewise-constant current profiles.
//!
//! A radio operation (an RRC cycle, a D2D discovery scan, a transfer)
//! describes its electrical cost as a [`CurrentProfile`]: a sequence of
//! `(offset, duration, current, phase)` segments relative to the moment the
//! operation starts. The device's [`EnergyMeter`](crate::EnergyMeter)
//! anchors the profile at an absolute instant and accumulates it.

use hbr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::phase::Phase;
use crate::units::{MicroAmpHours, MilliAmps};

/// One constant-current stretch within a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start offset relative to the profile anchor.
    pub offset: SimDuration,
    /// How long the current flows.
    pub duration: SimDuration,
    /// The current drawn during the segment.
    pub current: MilliAmps,
    /// The activity this energy is attributed to.
    pub phase: Phase,
}

impl Segment {
    /// Charge contributed by this segment.
    pub fn charge(&self) -> MicroAmpHours {
        self.current.over(self.duration)
    }

    /// End offset relative to the profile anchor.
    pub fn end(&self) -> SimDuration {
        self.offset + self.duration
    }
}

/// A relative, piecewise-constant current draw describing one operation.
///
/// Segments may overlap (e.g. a baseline floor underneath a transfer
/// spike); overlapping currents are additive, exactly as a shunt resistor
/// would see them.
///
/// # Examples
///
/// ```
/// use hbr_energy::{CurrentProfile, MilliAmps, Phase};
/// use hbr_sim::SimDuration;
///
/// // A D2D send: 0.2 s spike at 600 mA, then 0.3 s settle at 150 mA.
/// let profile = CurrentProfile::builder()
///     .then(MilliAmps::new(600.0), SimDuration::from_millis(200), Phase::D2dSend)
///     .then(MilliAmps::new(150.0), SimDuration::from_millis(300), Phase::D2dSend)
///     .build();
/// assert_eq!(profile.total_duration(), SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CurrentProfile {
    segments: Vec<Segment>,
}

impl CurrentProfile {
    /// An empty profile drawing no current.
    pub fn empty() -> Self {
        CurrentProfile::default()
    }

    /// A single-segment profile starting at offset zero.
    pub fn constant(current: MilliAmps, duration: SimDuration, phase: Phase) -> Self {
        CurrentProfile {
            segments: vec![Segment {
                offset: SimDuration::ZERO,
                duration,
                current,
                phase,
            }],
        }
    }

    /// Starts building a profile of consecutive segments.
    pub fn builder() -> CurrentProfileBuilder {
        CurrentProfileBuilder {
            cursor: SimDuration::ZERO,
            segments: Vec::new(),
        }
    }

    /// Adds a segment at an explicit offset (may overlap others).
    pub fn push(&mut self, segment: Segment) {
        self.segments.push(segment);
    }

    /// The segments of this profile, in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Sum of all segment charges.
    pub fn total_charge(&self) -> MicroAmpHours {
        self.segments.iter().map(Segment::charge).sum()
    }

    /// The offset at which the last segment ends (the operation latency).
    pub fn total_duration(&self) -> SimDuration {
        self.segments
            .iter()
            .map(Segment::end)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Returns a copy of the profile with every segment shifted later by
    /// `delay` — used to chain operations.
    pub fn delayed_by(&self, delay: SimDuration) -> CurrentProfile {
        CurrentProfile {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    offset: s.offset + delay,
                    ..*s
                })
                .collect(),
        }
    }

    /// Merges another profile into this one at the given extra offset.
    pub fn merge(&mut self, other: &CurrentProfile, at: SimDuration) {
        for s in other.segments() {
            self.push(Segment {
                offset: s.offset + at,
                ..*s
            });
        }
    }

    /// Anchors the profile at `start`, yielding absolute-time segments.
    pub fn anchored_at(&self, start: SimTime) -> impl Iterator<Item = (SimTime, Segment)> + '_ {
        self.segments.iter().map(move |s| (start + s.offset, *s))
    }
}

/// Builder producing back-to-back segments; see
/// [`CurrentProfile::builder`].
#[derive(Debug)]
pub struct CurrentProfileBuilder {
    cursor: SimDuration,
    segments: Vec<Segment>,
}

impl CurrentProfileBuilder {
    /// Appends a segment immediately after the previous one.
    pub fn then(mut self, current: MilliAmps, duration: SimDuration, phase: Phase) -> Self {
        self.segments.push(Segment {
            offset: self.cursor,
            duration,
            current,
            phase,
        });
        self.cursor += duration;
        self
    }

    /// Appends a silent gap (no current) before the next segment.
    pub fn gap(mut self, duration: SimDuration) -> Self {
        self.cursor += duration;
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> CurrentProfile {
        CurrentProfile {
            segments: self.segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(x: f64) -> MilliAmps {
        MilliAmps::new(x)
    }

    #[test]
    fn builder_chains_offsets() {
        let p = CurrentProfile::builder()
            .then(ma(100.0), SimDuration::from_secs(1), Phase::D2dDiscovery)
            .gap(SimDuration::from_secs(2))
            .then(ma(200.0), SimDuration::from_secs(3), Phase::D2dSend)
            .build();
        let segs = p.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].offset, SimDuration::ZERO);
        assert_eq!(segs[1].offset, SimDuration::from_secs(3));
        assert_eq!(p.total_duration(), SimDuration::from_secs(6));
    }

    #[test]
    fn charge_sums_segments() {
        let p = CurrentProfile::builder()
            .then(ma(360.0), SimDuration::from_secs(10), Phase::CellularActive)
            .then(ma(360.0), SimDuration::from_secs(10), Phase::CellularTail)
            .build();
        // 360 mA × 20 s = 2000 µAh
        assert!((p.total_charge().as_micro_amp_hours() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn delayed_by_shifts_everything() {
        let p = CurrentProfile::constant(ma(100.0), SimDuration::from_secs(1), Phase::Baseline);
        let d = p.delayed_by(SimDuration::from_secs(5));
        assert_eq!(d.segments()[0].offset, SimDuration::from_secs(5));
        assert_eq!(d.total_duration(), SimDuration::from_secs(6));
        assert_eq!(d.total_charge(), p.total_charge());
    }

    #[test]
    fn merge_overlays() {
        let mut base =
            CurrentProfile::constant(ma(10.0), SimDuration::from_secs(10), Phase::Baseline);
        let spike = CurrentProfile::constant(ma(500.0), SimDuration::from_secs(1), Phase::D2dSend);
        base.merge(&spike, SimDuration::from_secs(4));
        assert_eq!(base.segments().len(), 2);
        assert_eq!(base.segments()[1].offset, SimDuration::from_secs(4));
    }

    #[test]
    fn empty_profile_is_inert() {
        let p = CurrentProfile::empty();
        assert_eq!(p.total_charge(), MicroAmpHours::ZERO);
        assert_eq!(p.total_duration(), SimDuration::ZERO);
    }

    #[test]
    fn anchoring_produces_absolute_times() {
        let p = CurrentProfile::builder()
            .then(ma(1.0), SimDuration::from_secs(1), Phase::Baseline)
            .then(ma(2.0), SimDuration::from_secs(1), Phase::Baseline)
            .build();
        let anchored: Vec<_> = p.anchored_at(SimTime::from_secs(100)).collect();
        assert_eq!(anchored[0].0, SimTime::from_secs(100));
        assert_eq!(anchored[1].0, SimTime::from_secs(101));
    }
}
