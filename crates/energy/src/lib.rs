//! Energy accounting: the simulated Monsoon Power Monitor.
//!
//! The paper measures energy by sampling a phone's instantaneous current
//! every 0.1 s at a constant 3.7 V supply and integrating to µAh (§V-A,
//! Fig. 5). This crate reproduces that *measurement pipeline* so the rest
//! of the workspace can be evaluated the same way the paper's prototype
//! was:
//!
//! * [`MilliAmps`] / [`MicroAmpHours`] — the units the paper reports.
//! * [`Phase`] — which activity the current belongs to (D2D discovery,
//!   connection, forwarding, cellular tail, …), so we can regenerate the
//!   per-phase breakdowns of Table III/IV.
//! * [`CurrentProfile`] — a piecewise-constant current draw emitted by a
//!   radio operation (e.g. "spike to 620 mA for 0.4 s, then tail at
//!   430 mA for 7 s").
//! * [`EnergyMeter`] — one per device; accumulates profiles and answers
//!   exact integrals, per-phase totals and instantaneous-current queries.
//! * [`PowerMonitor`] — samples a meter on a fixed grid like the real
//!   instrument, producing the current traces of Figs. 6–7.
//! * [`Battery`] — finite charge for failure injection (a relay dying
//!   mid-session, §III-A).
//!
//! # Examples
//!
//! ```
//! use hbr_energy::{CurrentProfile, EnergyMeter, MilliAmps, Phase};
//! use hbr_sim::{SimDuration, SimTime};
//!
//! let mut meter = EnergyMeter::new();
//! let spike = CurrentProfile::constant(
//!     MilliAmps::new(600.0),
//!     SimDuration::from_millis(500),
//!     Phase::D2dSend,
//! );
//! meter.apply(SimTime::ZERO, &spike);
//!
//! // 600 mA for 0.5 s = 600 * 0.5/3600 * 1000 µAh ≈ 83.33 µAh
//! let total = meter.total().as_micro_amp_hours();
//! assert!((total - 83.333).abs() < 0.01);
//! ```

pub mod battery;
pub mod meter;
pub mod monitor;
pub mod phase;
pub mod profile;
pub mod units;

pub use battery::Battery;
pub use meter::EnergyMeter;
pub use monitor::{PowerMonitor, Sample};
pub use phase::{Phase, PhaseGroup};
pub use profile::{CurrentProfile, Segment};
pub use units::{MicroAmpHours, MilliAmps, SUPPLY_VOLTAGE};
