//! Electrical units used throughout the evaluation.
//!
//! The paper reports instantaneous current in mA (Figs. 6, 7, 12, 13) and
//! integrated charge in µAh (Tables III, IV; Figs. 8–11) at a constant
//! 3.7 V supply, so those are the canonical units here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use hbr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The Power Monitor's constant supply voltage, in volts (§V-A).
pub const SUPPLY_VOLTAGE: f64 = 3.7;

/// Instantaneous current in milliamps.
///
/// # Examples
///
/// ```
/// use hbr_energy::MilliAmps;
/// use hbr_sim::SimDuration;
///
/// let tail = MilliAmps::new(430.0);
/// let charge = tail.over(SimDuration::from_secs(36));
/// assert!((charge.as_micro_amp_hours() - 4300.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliAmps(f64);

/// Integrated charge in micro-amp-hours (the paper's energy unit at fixed
/// supply voltage).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MicroAmpHours(f64);

impl MilliAmps {
    /// Zero current.
    pub const ZERO: MilliAmps = MilliAmps(0.0);

    /// Creates a current value.
    ///
    /// # Panics
    ///
    /// Panics if `ma` is negative or not finite — a device never feeds
    /// charge back into the Power Monitor.
    pub fn new(ma: f64) -> Self {
        assert!(
            ma.is_finite() && ma >= 0.0,
            "current must be finite and non-negative, got {ma} mA"
        );
        MilliAmps(ma)
    }

    /// The raw mA value.
    pub fn as_milli_amps(self) -> f64 {
        self.0
    }

    /// Charge accumulated by drawing this current for `duration`:
    /// `µAh = mA × hours × 1000`.
    pub fn over(self, duration: SimDuration) -> MicroAmpHours {
        MicroAmpHours(self.0 * duration.as_secs_f64() / 3600.0 * 1000.0)
    }
}

impl MicroAmpHours {
    /// Zero charge.
    pub const ZERO: MicroAmpHours = MicroAmpHours(0.0);

    /// Creates a charge value.
    ///
    /// # Panics
    ///
    /// Panics if `uah` is negative or not finite.
    pub fn new(uah: f64) -> Self {
        assert!(
            uah.is_finite() && uah >= 0.0,
            "charge must be finite and non-negative, got {uah} µAh"
        );
        MicroAmpHours(uah)
    }

    /// The raw µAh value.
    pub fn as_micro_amp_hours(self) -> f64 {
        self.0
    }

    /// Energy in millijoules at the given supply voltage.
    ///
    /// `µAh → mAh /1000 → coulombs ×3.6 → joules ×V → mJ ×1000`, which
    /// collapses to `mJ = µAh × 3.6 × V`.
    pub fn to_millijoules(self, volts: f64) -> f64 {
        self.0 * 3.6 * volts
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, rhs: MicroAmpHours) -> MicroAmpHours {
        MicroAmpHours((self.0 - rhs.0).max(0.0))
    }

    /// The fraction `self / total`, or 0 when `total` is zero. Useful for
    /// "saved energy %" style report lines.
    pub fn fraction_of(self, total: MicroAmpHours) -> f64 {
        if total.0 == 0.0 {
            0.0
        } else {
            self.0 / total.0
        }
    }
}

impl Add for MicroAmpHours {
    type Output = MicroAmpHours;

    fn add(self, rhs: MicroAmpHours) -> MicroAmpHours {
        MicroAmpHours(self.0 + rhs.0)
    }
}

impl AddAssign for MicroAmpHours {
    fn add_assign(&mut self, rhs: MicroAmpHours) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroAmpHours {
    type Output = MicroAmpHours;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`MicroAmpHours::saturating_sub`] when order is not known.
    fn sub(self, rhs: MicroAmpHours) -> MicroAmpHours {
        MicroAmpHours::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for MicroAmpHours {
    type Output = MicroAmpHours;

    fn mul(self, rhs: f64) -> MicroAmpHours {
        MicroAmpHours::new(self.0 * rhs)
    }
}

impl Div<f64> for MicroAmpHours {
    type Output = MicroAmpHours;

    fn div(self, rhs: f64) -> MicroAmpHours {
        MicroAmpHours::new(self.0 / rhs)
    }
}

impl Sum for MicroAmpHours {
    fn sum<I: Iterator<Item = MicroAmpHours>>(iter: I) -> MicroAmpHours {
        iter.fold(MicroAmpHours::ZERO, Add::add)
    }
}

impl Add for MilliAmps {
    type Output = MilliAmps;

    fn add(self, rhs: MilliAmps) -> MilliAmps {
        MilliAmps(self.0 + rhs.0)
    }
}

impl AddAssign for MilliAmps {
    fn add_assign(&mut self, rhs: MilliAmps) {
        self.0 += rhs.0;
    }
}

impl Sum for MilliAmps {
    fn sum<I: Iterator<Item = MilliAmps>>(iter: I) -> MilliAmps {
        iter.fold(MilliAmps::ZERO, Add::add)
    }
}

impl Mul<f64> for MilliAmps {
    type Output = MilliAmps;

    fn mul(self, rhs: f64) -> MilliAmps {
        MilliAmps::new(self.0 * rhs)
    }
}

impl fmt::Display for MilliAmps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}mA", self.0)
    }
}

impl fmt::Display for MicroAmpHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}µAh", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_integration_matches_hand_math() {
        // 600 mA for 8 s: 600 * 8 / 3600 * 1000 = 1333.33 µAh.
        let e = MilliAmps::new(600.0).over(SimDuration::from_secs(8));
        assert!((e.as_micro_amp_hours() - 1333.333).abs() < 0.01);
    }

    #[test]
    fn zero_duration_zero_charge() {
        assert_eq!(
            MilliAmps::new(999.0).over(SimDuration::ZERO),
            MicroAmpHours::ZERO
        );
    }

    #[test]
    fn arithmetic() {
        let a = MicroAmpHours::new(10.0);
        let b = MicroAmpHours::new(4.0);
        assert_eq!(a + b, MicroAmpHours::new(14.0));
        assert_eq!(a - b, MicroAmpHours::new(6.0));
        assert_eq!(b.saturating_sub(a), MicroAmpHours::ZERO);
        assert_eq!(a * 2.0, MicroAmpHours::new(20.0));
        assert_eq!(a / 2.0, MicroAmpHours::new(5.0));
        assert_eq!(b.fraction_of(a), 0.4);
        assert_eq!(b.fraction_of(MicroAmpHours::ZERO), 0.0);
    }

    #[test]
    fn sums() {
        let total: MicroAmpHours = (1..=3).map(|i| MicroAmpHours::new(i as f64)).sum();
        assert_eq!(total, MicroAmpHours::new(6.0));
        let amps: MilliAmps = vec![MilliAmps::new(1.0), MilliAmps::new(2.5)]
            .into_iter()
            .sum();
        assert_eq!(amps, MilliAmps::new(3.5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_current_rejected() {
        MilliAmps::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_charge_subtraction_panics() {
        let _ = MicroAmpHours::new(1.0) - MicroAmpHours::new(2.0);
    }

    #[test]
    fn millijoule_conversion() {
        // 1000 µAh at 3.7 V = 1 mAh × 3.6 C/mAh × 3.7 V = 13.32 J = 13320 mJ.
        let e = MicroAmpHours::new(1000.0);
        assert!((e.to_millijoules(SUPPLY_VOLTAGE) - 13_320.0).abs() < 1e-6);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", MilliAmps::new(430.25)), "430.2mA");
        assert_eq!(format!("{}", MicroAmpHours::new(132.239)), "132.24µAh");
    }
}
