//! Finite battery state, for failure injection.
//!
//! §III-A motivates the fallback mechanism with relays that "ran out of
//! battery … before all the collected heartbeat messages are sent to BS".
//! A [`Battery`] tracks remaining charge against an
//! [`EnergyMeter`](crate::EnergyMeter) so
//! scenarios can model exactly that.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::MicroAmpHours;

/// A device battery with finite capacity.
///
/// # Examples
///
/// ```
/// use hbr_energy::{Battery, MicroAmpHours};
///
/// let mut battery = Battery::with_capacity_mah(2600.0); // Galaxy S4 pack
/// battery.drain(MicroAmpHours::new(1_000_000.0));
/// assert!((battery.level() - 0.615).abs() < 0.001);
/// assert!(!battery.is_depleted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: MicroAmpHours,
    drained: MicroAmpHours,
}

impl Battery {
    /// Creates a full battery with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: MicroAmpHours) -> Self {
        assert!(
            capacity > MicroAmpHours::ZERO,
            "battery capacity must be positive"
        );
        Battery {
            capacity,
            drained: MicroAmpHours::ZERO,
        }
    }

    /// Creates a full battery with a capacity in mAh (the usual datasheet
    /// unit; the Galaxy S4 used in the paper ships a 2600 mAh pack).
    pub fn with_capacity_mah(mah: f64) -> Self {
        Battery::new(MicroAmpHours::new(mah * 1000.0))
    }

    /// Rated capacity.
    pub fn capacity(&self) -> MicroAmpHours {
        self.capacity
    }

    /// Charge drained so far (clamped to capacity).
    pub fn drained(&self) -> MicroAmpHours {
        self.drained
    }

    /// Charge remaining.
    pub fn remaining(&self) -> MicroAmpHours {
        self.capacity.saturating_sub(self.drained)
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn level(&self) -> f64 {
        self.remaining().fraction_of(self.capacity)
    }

    /// Removes charge from the battery. Draining past empty clamps at
    /// zero remaining and marks the battery depleted.
    pub fn drain(&mut self, amount: MicroAmpHours) {
        let new_total = self.drained + amount;
        self.drained = if new_total > self.capacity {
            self.capacity
        } else {
            new_total
        };
    }

    /// `true` once the battery has been fully drained.
    pub fn is_depleted(&self) -> bool {
        self.remaining() == MicroAmpHours::ZERO
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "battery {:.1}% of {}",
            self.level() * 100.0,
            self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_and_depletes() {
        let mut b = Battery::new(MicroAmpHours::new(100.0));
        assert_eq!(b.level(), 1.0);
        b.drain(MicroAmpHours::new(30.0));
        assert_eq!(b.remaining(), MicroAmpHours::new(70.0));
        assert!(!b.is_depleted());
        b.drain(MicroAmpHours::new(500.0));
        assert!(b.is_depleted());
        assert_eq!(b.remaining(), MicroAmpHours::ZERO);
        assert_eq!(b.drained(), b.capacity());
    }

    #[test]
    fn mah_constructor() {
        let b = Battery::with_capacity_mah(2.0);
        assert_eq!(b.capacity(), MicroAmpHours::new(2000.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Battery::new(MicroAmpHours::ZERO);
    }

    #[test]
    fn display_mentions_level() {
        let b = Battery::new(MicroAmpHours::new(10.0));
        assert!(format!("{b}").contains("100.0%"));
    }
}
