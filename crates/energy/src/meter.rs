//! Per-device energy accumulation.

use std::collections::BTreeMap;

use hbr_sim::{SimDuration, SimTime};

use crate::phase::{Phase, PhaseGroup};
use crate::profile::{CurrentProfile, Segment};
use crate::units::{MicroAmpHours, MilliAmps};

/// Accumulates every current segment a device draws over a scenario and
/// answers the questions the evaluation asks: total charge, per-phase
/// breakdowns (Table III/IV), instantaneous current (Figs. 6–7) and
/// windowed integrals.
///
/// # Examples
///
/// ```
/// use hbr_energy::{CurrentProfile, EnergyMeter, MilliAmps, Phase, PhaseGroup};
/// use hbr_sim::{SimDuration, SimTime};
///
/// let mut meter = EnergyMeter::new();
/// meter.apply(
///     SimTime::ZERO,
///     &CurrentProfile::constant(
///         MilliAmps::new(360.0),
///         SimDuration::from_secs(10),
///         Phase::D2dDiscovery,
///     ),
/// );
/// assert!((meter.total().as_micro_amp_hours() - 1000.0).abs() < 1e-9);
/// assert_eq!(meter.group_total(PhaseGroup::Discovery), meter.total());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    segments: Vec<(SimTime, Segment)>,
    by_phase: BTreeMap<Phase, MicroAmpHours>,
    total: MicroAmpHours,
    compact: bool,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Creates a meter that keeps only the running totals, dropping the
    /// raw segment log.
    ///
    /// Aggregate queries — [`EnergyMeter::total`], [`EnergyMeter::phase_total`],
    /// [`EnergyMeter::group_breakdown`] — return exactly what a full
    /// meter would (same values, same accumulation order), but windowed
    /// queries ([`EnergyMeter::current_at`], [`EnergyMeter::charge_between`])
    /// see no segments. The crowd engine uses this so a million-device
    /// fleet's meters stay O(1) each instead of growing with every
    /// radio burst.
    pub fn compact() -> Self {
        EnergyMeter {
            compact: true,
            ..EnergyMeter::default()
        }
    }

    /// Records one absolute-time segment.
    pub fn add_segment(&mut self, start: SimTime, segment: Segment) {
        let charge = segment.charge();
        debug_assert!(
            charge.as_micro_amp_hours().is_finite() && charge >= MicroAmpHours::ZERO,
            "energy segments must carry finite, non-negative charge (got {charge:?})"
        );
        *self
            .by_phase
            .entry(segment.phase)
            .or_insert(MicroAmpHours::ZERO) += charge;
        self.total += charge;
        if !self.compact {
            self.segments.push((start + segment.offset, segment));
        }
    }

    /// Anchors a whole profile at `start` and records every segment.
    pub fn apply(&mut self, start: SimTime, profile: &CurrentProfile) {
        for segment in profile.segments() {
            self.add_segment(start, *segment);
        }
    }

    /// Total charge drawn so far.
    pub fn total(&self) -> MicroAmpHours {
        self.total
    }

    /// Charge attributed to one fine-grained phase.
    pub fn phase_total(&self, phase: Phase) -> MicroAmpHours {
        self.by_phase
            .get(&phase)
            .copied()
            .unwrap_or(MicroAmpHours::ZERO)
    }

    /// Charge attributed to a paper-level phase group.
    pub fn group_total(&self, group: PhaseGroup) -> MicroAmpHours {
        Phase::ALL
            .iter()
            .filter(|p| p.group() == group)
            .map(|p| self.phase_total(*p))
            .sum()
    }

    /// Per-group breakdown in display order, omitting empty groups — the
    /// Table III rows for one device.
    pub fn group_breakdown(&self) -> Vec<(PhaseGroup, MicroAmpHours)> {
        PhaseGroup::ALL
            .iter()
            .filter_map(|g| {
                let c = self.group_total(*g);
                (c > MicroAmpHours::ZERO).then_some((*g, c))
            })
            .collect()
    }

    /// Per-phase breakdown in display order, omitting empty phases.
    pub fn breakdown(&self) -> Vec<(Phase, MicroAmpHours)> {
        Phase::ALL
            .iter()
            .filter_map(|p| {
                let c = self.phase_total(*p);
                (c > MicroAmpHours::ZERO).then_some((*p, c))
            })
            .collect()
    }

    /// Instantaneous current at `t`: the sum of all segments covering `t`
    /// (half-open intervals `[start, end)`), exactly what a shunt sees.
    pub fn current_at(&self, t: SimTime) -> MilliAmps {
        self.segments
            .iter()
            .filter(|(start, seg)| {
                let end = start.saturating_add(seg.duration);
                *start <= t && t < end
            })
            .map(|(_, seg)| seg.current)
            .sum()
    }

    /// Exact integral of the current between `from` and `to` (half-open),
    /// accounting for partial segment overlap.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn charge_between(&self, from: SimTime, to: SimTime) -> MicroAmpHours {
        assert!(from <= to, "charge_between requires from <= to");
        self.segments
            .iter()
            .map(|(start, seg)| {
                let seg_end = start.saturating_add(seg.duration);
                let lo = (*start).max(from);
                let hi = seg_end.min(to);
                match hi.checked_since(lo) {
                    Some(overlap) if !overlap.is_zero() => seg.current.over(overlap),
                    _ => MicroAmpHours::ZERO,
                }
            })
            .sum()
    }

    /// The instant the last recorded segment ends — the extent of the
    /// meter's timeline.
    pub fn end_time(&self) -> SimTime {
        self.segments
            .iter()
            .map(|(start, seg)| start.saturating_add(seg.duration))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of recorded segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Merges all segments of `other` into this meter (e.g. whole-system
    /// totals across devices).
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (start, seg) in &other.segments {
            // `add_segment` re-applies the offset, so strip it here.
            let anchored = Segment {
                offset: SimDuration::ZERO,
                ..*seg
            };
            self.add_segment(*start, anchored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(x: f64) -> MilliAmps {
        MilliAmps::new(x)
    }

    fn constant(current: f64, secs: u64, phase: Phase) -> CurrentProfile {
        CurrentProfile::constant(ma(current), SimDuration::from_secs(secs), phase)
    }

    #[test]
    fn totals_and_phases() {
        let mut m = EnergyMeter::new();
        m.apply(SimTime::ZERO, &constant(360.0, 10, Phase::D2dSend));
        m.apply(
            SimTime::from_secs(10),
            &constant(720.0, 5, Phase::CellularActive),
        );
        assert!((m.total().as_micro_amp_hours() - 2000.0).abs() < 1e-9);
        assert!((m.phase_total(Phase::D2dSend).as_micro_amp_hours() - 1000.0).abs() < 1e-9);
        assert!((m.group_total(PhaseGroup::Cellular).as_micro_amp_hours() - 1000.0).abs() < 1e-9);
        assert_eq!(m.phase_total(Phase::Baseline), MicroAmpHours::ZERO);
        assert_eq!(m.breakdown().len(), 2);
    }

    #[test]
    fn instantaneous_current_sums_overlaps() {
        let mut m = EnergyMeter::new();
        m.apply(SimTime::ZERO, &constant(100.0, 10, Phase::Baseline));
        m.apply(SimTime::from_secs(4), &constant(500.0, 2, Phase::D2dSend));
        assert_eq!(m.current_at(SimTime::from_secs(1)), ma(100.0));
        assert_eq!(m.current_at(SimTime::from_secs(5)), ma(600.0));
        assert_eq!(
            m.current_at(SimTime::from_secs(6)),
            ma(100.0),
            "half-open end"
        );
        assert_eq!(m.current_at(SimTime::from_secs(10)), MilliAmps::ZERO);
    }

    #[test]
    fn windowed_charge_handles_partial_overlap() {
        let mut m = EnergyMeter::new();
        m.apply(SimTime::from_secs(10), &constant(360.0, 10, Phase::D2dSend));
        // Window covers half the segment: 360 mA × 5 s = 500 µAh.
        let half = m.charge_between(SimTime::from_secs(15), SimTime::from_secs(60));
        assert!((half.as_micro_amp_hours() - 500.0).abs() < 1e-9);
        // Disjoint window sees nothing.
        assert_eq!(
            m.charge_between(SimTime::ZERO, SimTime::from_secs(10)),
            MicroAmpHours::ZERO
        );
        // Full window equals the total.
        assert_eq!(
            m.charge_between(SimTime::ZERO, SimTime::from_secs(100)),
            m.total()
        );
    }

    #[test]
    #[should_panic(expected = "from <= to")]
    fn reversed_window_panics() {
        EnergyMeter::new().charge_between(SimTime::from_secs(2), SimTime::from_secs(1));
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.apply(SimTime::ZERO, &constant(100.0, 36, Phase::D2dSend));
        let mut b = EnergyMeter::new();
        b.apply(SimTime::ZERO, &constant(100.0, 36, Phase::D2dReceive));
        a.merge(&b);
        assert!((a.total().as_micro_amp_hours() - 2000.0).abs() < 1e-9);
        assert_eq!(a.segment_count(), 2);
        assert_eq!(a.current_at(SimTime::from_secs(1)), ma(200.0));
    }

    #[test]
    fn end_time_tracks_latest_segment() {
        let mut m = EnergyMeter::new();
        assert_eq!(m.end_time(), SimTime::ZERO);
        m.apply(SimTime::from_secs(5), &constant(1.0, 10, Phase::Baseline));
        m.apply(SimTime::from_secs(2), &constant(1.0, 1, Phase::Baseline));
        assert_eq!(m.end_time(), SimTime::from_secs(15));
    }

    #[test]
    fn profile_offsets_are_respected() {
        let profile = CurrentProfile::builder()
            .gap(SimDuration::from_secs(5))
            .then(ma(100.0), SimDuration::from_secs(1), Phase::D2dSend)
            .build();
        let mut m = EnergyMeter::new();
        m.apply(SimTime::from_secs(10), &profile);
        assert_eq!(m.current_at(SimTime::from_secs(12)), MilliAmps::ZERO);
        assert_eq!(m.current_at(SimTime::from_secs(15)), ma(100.0));
    }
}
