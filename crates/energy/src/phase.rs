//! Activity phases for energy attribution.
//!
//! Table III of the paper breaks a D2D session's energy into *Discovery*,
//! *Connection* and *Forwarding*; the cellular side has promotion, active
//! transfer and the long tail (Fig. 7). Tagging every current segment with
//! a [`Phase`] lets the reports regenerate those breakdowns exactly.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Fine-grained activity that a current segment is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// OS / screen-off floor current, always flowing.
    Baseline,
    /// Scanning for D2D peers (Wi-Fi Direct `discoverPeers`).
    D2dDiscovery,
    /// Group-owner negotiation + link establishment.
    D2dConnection,
    /// Keeping an established D2D group alive between transfers.
    D2dIdle,
    /// Transmitting application data over the D2D link (UE side).
    D2dSend,
    /// Receiving application data over the D2D link (relay side).
    D2dReceive,
    /// RRC connection establishment (IDLE → CONNECTED / DCH promotion).
    CellularPromotion,
    /// Active cellular transfer.
    CellularActive,
    /// High-power lingering after a cellular transfer (the tail problem).
    CellularTail,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 9] = [
        Phase::Baseline,
        Phase::D2dDiscovery,
        Phase::D2dConnection,
        Phase::D2dIdle,
        Phase::D2dSend,
        Phase::D2dReceive,
        Phase::CellularPromotion,
        Phase::CellularActive,
        Phase::CellularTail,
    ];

    /// The paper-level grouping this phase reports under.
    pub fn group(self) -> PhaseGroup {
        match self {
            Phase::Baseline => PhaseGroup::Baseline,
            Phase::D2dDiscovery => PhaseGroup::Discovery,
            Phase::D2dConnection => PhaseGroup::Connection,
            Phase::D2dIdle | Phase::D2dSend | Phase::D2dReceive => PhaseGroup::Forwarding,
            Phase::CellularPromotion | Phase::CellularActive | Phase::CellularTail => {
                PhaseGroup::Cellular
            }
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Baseline => "baseline",
            Phase::D2dDiscovery => "d2d-discovery",
            Phase::D2dConnection => "d2d-connection",
            Phase::D2dIdle => "d2d-idle",
            Phase::D2dSend => "d2d-send",
            Phase::D2dReceive => "d2d-receive",
            Phase::CellularPromotion => "cell-promotion",
            Phase::CellularActive => "cell-active",
            Phase::CellularTail => "cell-tail",
        };
        f.write_str(name)
    }
}

/// The coarse breakdown used in the paper's Table III: Discovery /
/// Connection / Forwarding, plus cellular and the always-on baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PhaseGroup {
    /// Always-on floor.
    Baseline,
    /// D2D peer discovery.
    Discovery,
    /// D2D connection establishment.
    Connection,
    /// D2D data exchange (send, receive, group keep-alive).
    Forwarding,
    /// Everything on the cellular interface.
    Cellular,
}

impl PhaseGroup {
    /// All groups, in display order.
    pub const ALL: [PhaseGroup; 5] = [
        PhaseGroup::Baseline,
        PhaseGroup::Discovery,
        PhaseGroup::Connection,
        PhaseGroup::Forwarding,
        PhaseGroup::Cellular,
    ];

    /// The group's name as a static label for metrics and events.
    pub fn label(self) -> &'static str {
        match self {
            PhaseGroup::Baseline => "Baseline",
            PhaseGroup::Discovery => "Discovery",
            PhaseGroup::Connection => "Connection",
            PhaseGroup::Forwarding => "Forwarding",
            PhaseGroup::Cellular => "Cellular",
        }
    }
}

impl fmt::Display for PhaseGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_phase_has_a_group() {
        for phase in Phase::ALL {
            // Exercise the mapping; the match in `group` is exhaustive so
            // this is mostly a guard against display regressions.
            let _ = phase.group();
            assert!(!format!("{phase}").is_empty());
        }
        for group in PhaseGroup::ALL {
            assert!(!format!("{group}").is_empty());
        }
    }

    #[test]
    fn table3_mapping() {
        assert_eq!(Phase::D2dDiscovery.group(), PhaseGroup::Discovery);
        assert_eq!(Phase::D2dConnection.group(), PhaseGroup::Connection);
        assert_eq!(Phase::D2dSend.group(), PhaseGroup::Forwarding);
        assert_eq!(Phase::D2dReceive.group(), PhaseGroup::Forwarding);
        assert_eq!(Phase::CellularTail.group(), PhaseGroup::Cellular);
    }
}
