//! The emulated Monsoon Power Monitor.
//!
//! §V-A: *"we ran the prototype … and captured the instant current every
//! 0.1 seconds through Power Monitor … with the constant voltage 3.7 V."*
//! [`PowerMonitor`] reproduces that instrument: it samples an
//! [`EnergyMeter`]'s instantaneous current on a fixed grid and integrates
//! the samples, which is what the paper's figures and tables actually show.

use hbr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::meter::EnergyMeter;
use crate::units::{MicroAmpHours, MilliAmps};

/// One sampled point of a current trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sampling instant.
    pub time: SimTime,
    /// Current observed at that instant.
    pub current: MilliAmps,
}

/// Samples an [`EnergyMeter`] at a fixed interval, like the Monsoon
/// instrument on the lab bench.
///
/// # Examples
///
/// ```
/// use hbr_energy::{CurrentProfile, EnergyMeter, MilliAmps, Phase, PowerMonitor};
/// use hbr_sim::{SimDuration, SimTime};
///
/// let mut meter = EnergyMeter::new();
/// meter.apply(
///     SimTime::ZERO,
///     &CurrentProfile::constant(
///         MilliAmps::new(360.0),
///         SimDuration::from_secs(1),
///         Phase::D2dSend,
///     ),
/// );
///
/// let monitor = PowerMonitor::paper_instrument();
/// let trace = monitor.trace(&meter, SimTime::ZERO, SimTime::from_secs(2));
/// assert_eq!(trace.len(), 21); // 0.0s..=2.0s at 0.1s steps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerMonitor {
    interval: SimDuration,
}

impl PowerMonitor {
    /// Creates a monitor with a custom sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        PowerMonitor { interval }
    }

    /// The paper's instrument: 0.1 s sampling (§V-A).
    pub fn paper_instrument() -> Self {
        PowerMonitor::new(SimDuration::from_millis(100))
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Samples the meter's instantaneous current on `[from, to]`
    /// inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn trace(&self, meter: &EnergyMeter, from: SimTime, to: SimTime) -> Vec<Sample> {
        assert!(from <= to, "trace requires from <= to");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            out.push(Sample {
                time: t,
                current: meter.current_at(t),
            });
            if t >= to {
                break;
            }
            t = (t + self.interval).min(to);
        }
        out
    }

    /// Riemann integration of a sampled trace (left rule), the way the
    /// bench software turns a current log into µAh.
    pub fn integrate(&self, trace: &[Sample]) -> MicroAmpHours {
        trace
            .windows(2)
            .map(|w| w[0].current.over(w[1].time - w[0].time))
            .sum()
    }

    /// Convenience: trace + integrate in one call.
    pub fn measure(&self, meter: &EnergyMeter, from: SimTime, to: SimTime) -> MicroAmpHours {
        self.integrate(&self.trace(meter, from, to))
    }
}

impl Default for PowerMonitor {
    fn default() -> Self {
        PowerMonitor::paper_instrument()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::profile::CurrentProfile;

    fn spike_meter() -> EnergyMeter {
        let mut m = EnergyMeter::new();
        m.apply(
            SimTime::from_secs(1),
            &CurrentProfile::constant(
                MilliAmps::new(500.0),
                SimDuration::from_secs(2),
                Phase::D2dSend,
            ),
        );
        m
    }

    #[test]
    fn trace_grid_is_inclusive() {
        let monitor = PowerMonitor::paper_instrument();
        let trace = monitor.trace(&spike_meter(), SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(trace.len(), 11);
        assert_eq!(trace.first().unwrap().time, SimTime::ZERO);
        assert_eq!(trace.last().unwrap().time, SimTime::from_secs(1));
    }

    #[test]
    fn sampled_integral_matches_exact_for_grid_aligned_profiles() {
        let meter = spike_meter();
        let monitor = PowerMonitor::paper_instrument();
        let sampled = monitor.measure(&meter, SimTime::ZERO, SimTime::from_secs(5));
        let exact = meter.total();
        let err = (sampled.as_micro_amp_hours() - exact.as_micro_amp_hours()).abs();
        assert!(err < 1e-6, "sampled {sampled} vs exact {exact} (err {err})");
    }

    #[test]
    fn sampled_integral_close_for_unaligned_profiles() {
        let mut meter = EnergyMeter::new();
        meter.apply(
            SimTime::from_millis(123),
            &CurrentProfile::constant(
                MilliAmps::new(700.0),
                SimDuration::from_millis(1517),
                Phase::CellularActive,
            ),
        );
        let monitor = PowerMonitor::paper_instrument();
        let sampled = monitor.measure(&meter, SimTime::ZERO, SimTime::from_secs(3));
        let exact = meter.total();
        // The instrument may be off by up to two samples' worth of charge.
        let bound = MilliAmps::new(700.0)
            .over(SimDuration::from_millis(200))
            .as_micro_amp_hours();
        assert!(
            (sampled.as_micro_amp_hours() - exact.as_micro_amp_hours()).abs() <= bound,
            "sampled {sampled} too far from exact {exact}"
        );
    }

    #[test]
    fn trace_observes_spike_shape() {
        let monitor = PowerMonitor::paper_instrument();
        let trace = monitor.trace(&spike_meter(), SimTime::ZERO, SimTime::from_secs(4));
        let peak = trace
            .iter()
            .map(|s| s.current.as_milli_amps())
            .fold(0.0, f64::max);
        assert_eq!(peak, 500.0);
        assert_eq!(trace.first().unwrap().current, MilliAmps::ZERO);
        assert_eq!(trace.last().unwrap().current, MilliAmps::ZERO);
    }

    #[test]
    fn custom_interval() {
        let monitor = PowerMonitor::new(SimDuration::from_secs(1));
        let trace = monitor.trace(&spike_meter(), SimTime::ZERO, SimTime::from_secs(4));
        assert_eq!(trace.len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        PowerMonitor::new(SimDuration::ZERO);
    }

    #[test]
    fn empty_trace_integrates_to_zero() {
        let monitor = PowerMonitor::paper_instrument();
        assert_eq!(monitor.integrate(&[]), MicroAmpHours::ZERO);
    }
}
