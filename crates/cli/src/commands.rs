//! Command implementations for the `hbr` binary.

use hbr_apps::AppProfile;
use hbr_baseline::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, Workload,
};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_core::fleet::FleetBuilder;
use hbr_core::world::{Mode, Scenario, ScenarioConfig, ScenarioReport};
use hbr_sim::fault::FaultPlan;
use hbr_sim::SimDuration;

use crate::args::{Command, CrowdMode, USAGE};

/// Dispatches a parsed command.
pub fn run(command: Command) {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Quickstart {
            ues,
            transmissions,
            distance,
        } => quickstart(ues, transmissions, distance),
        Command::Crowd {
            phones,
            relays,
            hours,
            area,
            seed,
            push_mins,
            mode,
            faults,
            trace,
        } => crowd(
            phones, relays, hours, area, seed, push_mins, mode, faults, trace,
        ),
        Command::Strategies { app, hours, seed } => strategies(&app, hours, seed),
    }
}

fn quickstart(ues: usize, transmissions: u32, distance: f64) {
    let run = ControlledExperiment::new(ExperimentConfig {
        ue_count: ues,
        transmissions,
        distance_m: distance,
        ..ExperimentConfig::default()
    })
    .run();
    println!("bench: {ues} UE(s) × {transmissions} forwarded heartbeat(s) at {distance} m\n");
    println!(
        "UE energy        : {:>9.0} µAh  (original {:>9.0} µAh, saving {:.1}%)",
        run.ue_energy(),
        run.original_device_energy(),
        run.ue_saving() * 100.0
    );
    println!(
        "system energy    : {:>9.0} µAh  (original {:>9.0} µAh, saving {:.1}%)",
        run.system_energy(),
        run.original_system_energy(),
        run.system_saving() * 100.0
    );
    println!(
        "layer-3 messages : {:>9}      (original {:>9}, saving {:.1}%)",
        run.framework_l3(),
        run.original_l3(),
        run.signaling_saving() * 100.0
    );
    println!(
        "RRC connections  : {:>9}      (original {:>9})",
        run.relay_rrc_connections, run.original_rrc_connections
    );
    if run.d2d_failures > 0 {
        println!("d2d fallbacks    : {:>9}", run.d2d_failures);
    }
}

#[allow(clippy::too_many_arguments)]
fn build_crowd(
    phones: usize,
    relays: usize,
    hours: u64,
    area: f64,
    seed: u64,
    push_mins: u64,
    mode: Mode,
    faults: &FaultPlan,
    trace: usize,
) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(hours * 3600), seed);
    config.mode = mode;
    config.faults = faults.clone();
    config.trace_capacity = trace;
    if push_mins > 0 {
        config.push_interval = Some(SimDuration::from_secs(push_mins * 60));
    }
    for spec in FleetBuilder::new(phones, relays)
        .area_side_m(area)
        .build(seed)
    {
        config.add_device(spec);
    }
    Scenario::new(config).run()
}

#[allow(clippy::too_many_arguments)]
fn crowd(
    phones: usize,
    relays: usize,
    hours: u64,
    area: f64,
    seed: u64,
    push_mins: u64,
    mode: CrowdMode,
    faults: FaultPlan,
    trace: usize,
) {
    println!("crowd: {phones} phones ({relays} relays), {area} m side, {hours} h, seed {seed}\n");
    if !faults.is_empty() {
        println!("fault plan: {} scheduled event(s)\n", faults.events().len());
    }
    let runs: Vec<(&str, Mode)> = match mode {
        CrowdMode::D2d => vec![("d2d-framework", Mode::D2dFramework)],
        CrowdMode::Original => vec![("original", Mode::OriginalCellular)],
        CrowdMode::Both => vec![
            ("original", Mode::OriginalCellular),
            ("d2d-framework", Mode::D2dFramework),
        ],
    };
    // `both` runs two full scenarios; they are independent, so let the
    // sweep harness put each on its own core. Reports come back in run
    // order, keeping the printout identical to the sequential loop.
    let reports: Vec<ScenarioReport> = hbr_bench::run_sweep(seed, runs.clone(), |&(_, m), _| {
        build_crowd(
            phones, relays, hours, area, seed, push_mins, m, &faults, trace,
        )
    });
    for ((name, _), report) in runs.iter().zip(&reports) {
        println!("── {name} ──");
        print!("{}", report.render());
        println!();
    }
    if reports.len() == 2 {
        let (base, fw) = (&reports[0], &reports[1]);
        println!("── comparison ──");
        println!(
            "signaling saving : {:.1}%",
            (1.0 - fw.total_l3 as f64 / base.total_l3 as f64) * 100.0
        );
        println!(
            "energy saving    : {:.1}%",
            (1.0 - fw.total_energy_uah / base.total_energy_uah) * 100.0
        );
    }
}

fn strategies(app_name: &str, hours: u64, seed: u64) {
    let Some(app) = AppProfile::by_name(app_name) else {
        eprintln!("unknown app {app_name}; try wechat, qq, whatsapp or facebook");
        return;
    };
    println!(
        "strategies: {} mixed workload, {hours} h, seed {seed}\n",
        app.name
    );
    let workload = Workload::mixed(app.clone(), hours * 3600, seed);
    let all: Vec<Box<dyn Strategy>> = vec![
        Box::new(Original),
        Box::new(ExtendedPeriod { factor: 2 }),
        Box::new(Piggyback {
            window: app.heartbeat_period / 2,
        }),
        Box::new(FastDormancy),
        Box::new(D2dForwarding::default()),
    ];
    println!(
        "{:<16} {:>12} {:>9} {:>7} {:>11} {:>10}",
        "strategy", "energy µAh", "L3 msgs", "RRC", "max gap s", "offline s"
    );
    for strategy in &all {
        let out = strategy.run(&workload);
        println!(
            "{:<16} {:>12.0} {:>9} {:>7} {:>11.0} {:>10.0}",
            out.name,
            out.device_energy_uah,
            out.l3_messages,
            out.rrc_connections,
            out.max_presence_gap_secs,
            out.offline_secs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs() {
        run(Command::Quickstart {
            ues: 1,
            transmissions: 2,
            distance: 1.0,
        });
    }

    #[test]
    fn small_crowd_runs_both_modes() {
        run(Command::Crowd {
            phones: 6,
            relays: 2,
            hours: 1,
            area: 15.0,
            seed: 3,
            push_mins: 0,
            mode: CrowdMode::Both,
            faults: FaultPlan::new(),
            trace: 0,
        });
    }

    #[test]
    fn faulted_crowd_runs_with_trace() {
        let faults = crate::args::parse_fault_spec("outage@600+120,blackout@1800+60").unwrap();
        run(Command::Crowd {
            phones: 6,
            relays: 2,
            hours: 1,
            area: 15.0,
            seed: 3,
            push_mins: 0,
            mode: CrowdMode::D2d,
            faults,
            trace: 200,
        });
    }

    #[test]
    fn strategies_handles_known_and_unknown_apps() {
        run(Command::Strategies {
            app: "qq".into(),
            hours: 2,
            seed: 1,
        });
        run(Command::Strategies {
            app: "not-an-app".into(),
            hours: 2,
            seed: 1,
        });
    }

    #[test]
    fn help_prints() {
        run(Command::Help);
    }
}
