//! Command implementations for the `hbr` binary.

use hbr_apps::AppProfile;
use hbr_baseline::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, Workload,
};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_core::world::{Mode, ScenarioReport};
use hbr_sim::fault::FaultPlan;

use crate::args::{Command, CrowdMode, USAGE};

/// Dispatches a parsed command.
pub fn run(command: Command) {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Quickstart {
            ues,
            transmissions,
            distance,
        } => quickstart(ues, transmissions, distance),
        Command::Crowd {
            phones,
            relays,
            hours,
            area,
            seed,
            push_mins,
            mode,
            faults,
            trace,
            shards,
            metrics_out,
            events_out,
            slo_out,
        } => crowd(
            phones,
            relays,
            hours,
            area,
            seed,
            push_mins,
            mode,
            faults,
            trace,
            shards,
            metrics_out,
            events_out,
            slo_out,
        ),
        Command::Strategies { app, hours, seed } => strategies(&app, hours, seed),
        Command::Timeline {
            file,
            around,
            window,
            device,
        } => {
            if let Err(message) = crate::timeline::run(&file, around, window, device) {
                eprintln!("error: {message}");
            }
        }
    }
}

fn quickstart(ues: usize, transmissions: u32, distance: f64) {
    let run = ControlledExperiment::new(ExperimentConfig {
        ue_count: ues,
        transmissions,
        distance_m: distance,
        ..ExperimentConfig::default()
    })
    .run();
    println!("bench: {ues} UE(s) × {transmissions} forwarded heartbeat(s) at {distance} m\n");
    println!(
        "UE energy        : {:>9.0} µAh  (original {:>9.0} µAh, saving {:.1}%)",
        run.ue_energy(),
        run.original_device_energy(),
        run.ue_saving() * 100.0
    );
    println!(
        "system energy    : {:>9.0} µAh  (original {:>9.0} µAh, saving {:.1}%)",
        run.system_energy(),
        run.original_system_energy(),
        run.system_saving() * 100.0
    );
    println!(
        "layer-3 messages : {:>9}      (original {:>9}, saving {:.1}%)",
        run.framework_l3(),
        run.original_l3(),
        run.signaling_saving() * 100.0
    );
    println!(
        "RRC connections  : {:>9}      (original {:>9})",
        run.relay_rrc_connections, run.original_rrc_connections
    );
    if run.d2d_failures > 0 {
        println!("d2d fallbacks    : {:>9}", run.d2d_failures);
    }
}

#[allow(clippy::too_many_arguments)]
fn crowd(
    phones: usize,
    relays: usize,
    hours: u64,
    area: f64,
    seed: u64,
    push_mins: u64,
    mode: CrowdMode,
    faults: FaultPlan,
    trace: usize,
    shards: Option<usize>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    slo_out: Option<String>,
) {
    println!("crowd: {phones} phones ({relays} relays), {area} m side, {hours} h, seed {seed}\n");
    let grid = hbr_bench::cell_grid(area);
    match shards {
        Some(s) => println!("engine: {grid}×{grid} cell grid, {s} shard(s)\n"),
        None => println!("engine: {grid}×{grid} cell grid, auto shards\n"),
    }
    if !faults.is_empty() {
        println!("fault plan: {} scheduled event(s)\n", faults.events().len());
    }
    let telemetry = metrics_out.is_some() || events_out.is_some();
    let runs: Vec<(&str, Mode)> = match mode {
        CrowdMode::D2d => vec![("d2d-framework", Mode::D2dFramework)],
        CrowdMode::Original => vec![("original", Mode::OriginalCellular)],
        CrowdMode::Both => vec![
            ("original", Mode::OriginalCellular),
            ("d2d-framework", Mode::D2dFramework),
        ],
    };
    // Each mode goes through the sharded engine, which already spreads
    // its cells over worker threads — run the modes sequentially so the
    // two thread pools never compete. The merged reports are
    // byte-identical at any shard count.
    let reports: Vec<ScenarioReport> = runs
        .iter()
        .map(|&(_, m)| {
            hbr_bench::run_crowd(&hbr_bench::CrowdConfig {
                phones,
                relays,
                hours,
                area_side_m: area,
                seed,
                push_mins,
                mode: m,
                faults: faults.clone(),
                trace_capacity: trace,
                telemetry,
                reliable: true,
                shards,
            })
        })
        .collect();
    for ((name, _), report) in runs.iter().zip(&reports) {
        println!("── {name} ──");
        print!("{}", report.render());
        println!();
    }
    write_telemetry(
        &runs,
        &reports,
        metrics_out.as_deref(),
        events_out.as_deref(),
    );
    write_slo(&runs, &reports, slo_out.as_deref());
    if reports.len() == 2 {
        let (base, fw) = (&reports[0], &reports[1]);
        println!("── comparison ──");
        println!(
            "signaling saving : {:.1}%",
            (1.0 - fw.total_l3 as f64 / base.total_l3 as f64) * 100.0
        );
        println!(
            "energy saving    : {:.1}%",
            (1.0 - fw.total_energy_uah / base.total_energy_uah) * 100.0
        );
    }
}

/// Writes the telemetry files a `crowd` run was asked for: the merged
/// metrics snapshot as JSON (plus a `.prom` sibling in Prometheus text)
/// and the run-labelled event stream as JSONL. Reports arrive in run
/// order from the sweep, so both files are byte-identical across thread
/// counts and reruns.
fn write_telemetry(
    runs: &[(&str, Mode)],
    reports: &[ScenarioReport],
    metrics_out: Option<&str>,
    events_out: Option<&str>,
) {
    if let Some(path) = metrics_out {
        let merged = hbr_bench::merge_snapshots(reports.iter().map(|r| &r.metrics));
        let prom_path = std::path::Path::new(path).with_extension("prom");
        let mut json = merged.to_json();
        json.push('\n');
        match std::fs::write(path, json)
            .and_then(|()| std::fs::write(&prom_path, merged.to_prometheus()))
        {
            Ok(()) => println!("metrics  : wrote {path} and {}", prom_path.display()),
            Err(e) => eprintln!("error: cannot write metrics to {path}: {e}"),
        }
    }
    if let Some(path) = events_out {
        let mut out = String::new();
        let mut lines = 0usize;
        for ((name, _), report) in runs.iter().zip(reports) {
            for record in &report.events {
                // Label each line with its run so `hbr timeline` can keep
                // the `both`-mode streams apart. The injected key stays
                // flat JSON, parseable by `parse_jsonl_line`.
                let line = record.to_jsonl();
                out.push_str(&format!("{{\"run\":\"{name}\",{}\n", &line[1..]));
                lines += 1;
            }
        }
        match std::fs::write(path, out) {
            Ok(()) => println!("events   : wrote {path} ({lines} event line(s))"),
            Err(e) => eprintln!("error: cannot write events to {path}: {e}"),
        }
    }
}

/// Writes the delivery-SLO report of the d2d run as one line of
/// deterministic JSON. Crowd runs always carry the reliable-delivery
/// ledger, so the report exists whenever a d2d leg ran; `--mode
/// original` has none, which is reported instead of writing an empty
/// file. The line is byte-identical across shard counts and reruns, so
/// CI can `cmp` two runs directly.
fn write_slo(runs: &[(&str, Mode)], reports: &[ScenarioReport], slo_out: Option<&str>) {
    let Some(path) = slo_out else { return };
    let Some((_, report)) = runs
        .iter()
        .zip(reports)
        .find(|((_, m), _)| *m == Mode::D2dFramework)
    else {
        eprintln!("error: --slo-out needs a d2d run, but only the original baseline ran");
        return;
    };
    let Some(d) = &report.delivery else {
        eprintln!("error: the d2d run carried no delivery ledger; cannot write {path}");
        return;
    };
    let json = format!(
        "{{\"generated\":{},\"delivered\":{},\"duplicates\":{},\"expired\":{},\
         \"dropped_dead\":{},\"in_flight\":{},\"retries\":{},\"handovers\":{},\
         \"requeued\":{},\"delivery_ratio\":{:.6},\"false_dead_seconds\":{:.3}}}\n",
        d.generated,
        d.delivered,
        report.duplicates,
        d.expired,
        d.dropped_dead,
        d.in_flight,
        d.retries,
        d.handovers,
        d.requeued,
        d.ratio(),
        d.false_dead_secs,
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("slo      : wrote {path}"),
        Err(e) => eprintln!("error: cannot write SLO report to {path}: {e}"),
    }
}

fn strategies(app_name: &str, hours: u64, seed: u64) {
    let Some(app) = AppProfile::by_name(app_name) else {
        eprintln!("unknown app {app_name}; try wechat, qq, whatsapp or facebook");
        return;
    };
    println!(
        "strategies: {} mixed workload, {hours} h, seed {seed}\n",
        app.name
    );
    let workload = Workload::mixed(app.clone(), hours * 3600, seed);
    let all: Vec<Box<dyn Strategy>> = vec![
        Box::new(Original),
        Box::new(ExtendedPeriod { factor: 2 }),
        Box::new(Piggyback {
            window: app.heartbeat_period / 2,
        }),
        Box::new(FastDormancy),
        Box::new(D2dForwarding::default()),
    ];
    println!(
        "{:<16} {:>12} {:>9} {:>7} {:>11} {:>10}",
        "strategy", "energy µAh", "L3 msgs", "RRC", "max gap s", "offline s"
    );
    for strategy in &all {
        let out = strategy.run(&workload);
        println!(
            "{:<16} {:>12.0} {:>9} {:>7} {:>11.0} {:>10.0}",
            out.name,
            out.device_energy_uah,
            out.l3_messages,
            out.rrc_connections,
            out.max_presence_gap_secs,
            out.offline_secs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs() {
        run(Command::Quickstart {
            ues: 1,
            transmissions: 2,
            distance: 1.0,
        });
    }

    #[test]
    fn small_crowd_runs_both_modes() {
        run(Command::Crowd {
            phones: 6,
            relays: 2,
            hours: 1,
            area: 15.0,
            seed: 3,
            push_mins: 0,
            mode: CrowdMode::Both,
            faults: FaultPlan::new(),
            trace: 0,
            shards: None,
            metrics_out: None,
            events_out: None,
            slo_out: None,
        });
    }

    #[test]
    fn faulted_crowd_runs_with_trace() {
        let faults = crate::args::parse_fault_spec("outage@600+120,blackout@1800+60").unwrap();
        run(Command::Crowd {
            phones: 6,
            relays: 2,
            hours: 1,
            area: 15.0,
            seed: 3,
            push_mins: 0,
            mode: CrowdMode::D2d,
            faults,
            trace: 200,
            shards: None,
            metrics_out: None,
            events_out: None,
            slo_out: None,
        });
    }

    #[test]
    fn crowd_writes_telemetry_files_and_timeline_reads_them() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("hbr_cli_test_{}.json", std::process::id()));
        let prom = metrics.with_extension("prom");
        let events = dir.join(format!("hbr_cli_test_{}.jsonl", std::process::id()));
        let faults = crate::args::parse_fault_spec("outage@600+120").unwrap();
        run(Command::Crowd {
            phones: 6,
            relays: 2,
            hours: 1,
            area: 15.0,
            seed: 3,
            push_mins: 0,
            mode: CrowdMode::Both,
            faults,
            trace: 0,
            shards: None,
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            events_out: Some(events.to_string_lossy().into_owned()),
            slo_out: None,
        });
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("hbr_flush_total"));
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_text.contains("hbr_rrc_dwell_seconds_bucket"));
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.lines().all(|l| l.starts_with("{\"run\":\"")));
        assert!(jsonl.contains("\"run\":\"original\""));
        assert!(jsonl.contains("\"run\":\"d2d-framework\""));
        assert!(jsonl.contains("\"event\":\"fault\""));
        // The timeline command consumes exactly what crowd produced.
        run(Command::Timeline {
            file: events.to_string_lossy().into_owned(),
            around: Some(600),
            window: 120,
            device: None,
        });
        for p in [&metrics, &prom, &events] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn crowd_writes_a_deterministic_slo_report() {
        let dir = std::env::temp_dir();
        let slo_a = dir.join(format!("hbr_cli_slo_a_{}.json", std::process::id()));
        let slo_b = dir.join(format!("hbr_cli_slo_b_{}.json", std::process::id()));
        let crowd = |slo: &std::path::Path, shards: Option<usize>| {
            run(Command::Crowd {
                phones: 6,
                relays: 2,
                hours: 1,
                area: 15.0,
                seed: 3,
                push_mins: 0,
                mode: CrowdMode::D2d,
                faults: crate::args::parse_fault_spec("outage@600+120").unwrap(),
                trace: 0,
                shards,
                metrics_out: None,
                events_out: None,
                slo_out: Some(slo.to_string_lossy().into_owned()),
            });
        };
        crowd(&slo_a, Some(1));
        crowd(&slo_b, Some(2));
        let a = std::fs::read_to_string(&slo_a).unwrap();
        let b = std::fs::read_to_string(&slo_b).unwrap();
        assert_eq!(a, b, "SLO report must not depend on the shard count");
        for key in [
            "\"generated\":",
            "\"delivered\":",
            "\"duplicates\":0",
            "\"delivery_ratio\":",
            "\"false_dead_seconds\":",
        ] {
            assert!(a.contains(key), "missing {key} in SLO report: {a}");
        }
        for p in [&slo_a, &slo_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn strategies_handles_known_and_unknown_apps() {
        run(Command::Strategies {
            app: "qq".into(),
            hours: 2,
            seed: 1,
        });
        run(Command::Strategies {
            app: "not-an-app".into(),
            hours: 2,
            seed: 1,
        });
    }

    #[test]
    fn help_prints() {
        run(Command::Help);
    }
}
