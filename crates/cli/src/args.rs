//! Argument parsing for the `hbr` binary — std-only, no dependencies.

/// Printed on `hbr help` and on any parse error.
pub const USAGE: &str = "\
hbr — D2D heartbeat relaying framework (ICDCS'17 reproduction)

USAGE:
    hbr quickstart [--ues N] [--transmissions N] [--distance METRES]
        Reproduce the headline numbers for one relay bench run.

    hbr crowd [--phones N] [--relays N] [--hours H] [--area METRES]
              [--seed S] [--push-mins M] [--mode d2d|original|both]
        Run a crowd scenario and print the operator console.

    hbr strategies [--app wechat|qq|whatsapp|facebook] [--hours H] [--seed S]
        Compare every heartbeat strategy on one app's mixed workload.

    hbr help
        Show this text.";

/// A parsed `hbr` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// The controlled-bench quickstart.
    Quickstart {
        /// Number of UEs.
        ues: usize,
        /// Forwarded heartbeats per UE.
        transmissions: u32,
        /// UE–relay distance in metres.
        distance: f64,
    },
    /// A crowd scenario through the event-driven world.
    Crowd {
        /// Total phones.
        phones: usize,
        /// Volunteer relays among them.
        relays: usize,
        /// Scenario length in hours.
        hours: u64,
        /// Deployment area side, metres.
        area: f64,
        /// Scenario seed.
        seed: u64,
        /// Mean minutes between pushes (0 disables).
        push_mins: u64,
        /// Which system(s) to run.
        mode: CrowdMode,
    },
    /// The strategy comparison table.
    Strategies {
        /// App profile name.
        app: String,
        /// Workload length in hours.
        hours: u64,
        /// Workload seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// Which transport system(s) a `crowd` run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrowdMode {
    /// The framework only.
    D2d,
    /// The unmodified baseline only.
    Original,
    /// Both, with a comparison footer.
    Both,
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown subcommands, unknown
/// flags, missing values or unparsable numbers.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(sub) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "quickstart" => {
            let mut ues = 1usize;
            let mut transmissions = 7u32;
            let mut distance = 1.0f64;
            parse_flags(rest, |flag, value| match flag {
                "--ues" => set(value, &mut ues),
                "--transmissions" => set(value, &mut transmissions),
                "--distance" => set(value, &mut distance),
                _ => Err(format!("unknown flag {flag} for quickstart")),
            })?;
            if ues == 0 || transmissions == 0 {
                return Err("--ues and --transmissions must be positive".into());
            }
            if !(distance.is_finite() && distance > 0.0) {
                return Err("--distance must be a positive number of metres".into());
            }
            Ok(Command::Quickstart {
                ues,
                transmissions,
                distance,
            })
        }
        "crowd" => {
            let mut phones = 40usize;
            let mut relays = 8usize;
            let mut hours = 2u64;
            let mut area = 40.0f64;
            let mut seed = 7u64;
            let mut push_mins = 0u64;
            let mut mode = CrowdMode::Both;
            parse_flags(rest, |flag, value| match flag {
                "--phones" => set(value, &mut phones),
                "--relays" => set(value, &mut relays),
                "--hours" => set(value, &mut hours),
                "--area" => set(value, &mut area),
                "--seed" => set(value, &mut seed),
                "--push-mins" => set(value, &mut push_mins),
                "--mode" => {
                    mode = match value {
                        "d2d" => CrowdMode::D2d,
                        "original" => CrowdMode::Original,
                        "both" => CrowdMode::Both,
                        other => return Err(format!("unknown mode {other}")),
                    };
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for crowd")),
            })?;
            if phones == 0 || hours == 0 {
                return Err("--phones and --hours must be positive".into());
            }
            if relays > phones {
                return Err("--relays cannot exceed --phones".into());
            }
            Ok(Command::Crowd {
                phones,
                relays,
                hours,
                area,
                seed,
                push_mins,
                mode,
            })
        }
        "strategies" => {
            let mut app = "wechat".to_string();
            let mut hours = 24u64;
            let mut seed = 2017u64;
            parse_flags(rest, |flag, value| match flag {
                "--app" => {
                    app = value.to_string();
                    Ok(())
                }
                "--hours" => set(value, &mut hours),
                "--seed" => set(value, &mut seed),
                _ => Err(format!("unknown flag {flag} for strategies")),
            })?;
            if hours == 0 {
                return Err("--hours must be positive".into());
            }
            Ok(Command::Strategies { app, hours, seed })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn set<T: std::str::FromStr>(value: &str, slot: &mut T) -> Result<(), String> {
    *slot = value
        .parse()
        .map_err(|_| format!("cannot parse value {value}"))?;
    Ok(())
}

fn parse_flags<F>(rest: &[String], mut apply: F) -> Result<(), String>
where
    F: FnMut(&str, &str) -> Result<(), String>,
{
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        if !flag.starts_with("--") {
            return Err(format!("expected a --flag, got {flag}"));
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        apply(flag, value)?;
        i += 2;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_are_sane() {
        assert_eq!(
            parse(&argv("quickstart")).unwrap(),
            Command::Quickstart {
                ues: 1,
                transmissions: 7,
                distance: 1.0
            }
        );
        match parse(&argv("crowd")).unwrap() {
            Command::Crowd {
                phones,
                relays,
                mode,
                ..
            } => {
                assert_eq!(phones, 40);
                assert_eq!(relays, 8);
                assert_eq!(mode, CrowdMode::Both);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flags_override() {
        let cmd = parse(&argv(
            "crowd --phones 100 --relays 20 --hours 3 --mode d2d --push-mins 30",
        ))
        .unwrap();
        match cmd {
            Command::Crowd {
                phones,
                relays,
                hours,
                push_mins,
                mode,
                ..
            } => {
                assert_eq!((phones, relays, hours, push_mins), (100, 20, 3, 30));
                assert_eq!(mode, CrowdMode::D2d);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("crowd --phones")).is_err());
        assert!(parse(&argv("crowd --phones ten")).is_err());
        assert!(parse(&argv("crowd --relays 50 --phones 10")).is_err());
        assert!(parse(&argv("crowd --mode sideways")).is_err());
        assert!(parse(&argv("quickstart --distance -4")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn help_parses() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }
}
