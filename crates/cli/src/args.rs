//! Argument parsing for the `hbr` binary — std-only, no dependencies.

use hbr_sim::fault::{FaultKind, FaultPlan};
use hbr_sim::{DeviceId, SimDuration, SimTime};

/// Printed on `hbr help` and on any parse error.
pub const USAGE: &str = "\
hbr — D2D heartbeat relaying framework (ICDCS'17 reproduction)

USAGE:
    hbr quickstart [--ues N] [--transmissions N] [--distance METRES]
        Reproduce the headline numbers for one relay bench run.

    hbr crowd [--phones N] [--relays N] [--hours H] [--area METRES]
              [--seed S] [--push-mins M] [--mode d2d|original|both]
              [--shards S] [--faults SPEC] [--trace N]
              [--metrics-out FILE] [--events-out FILE] [--slo-out FILE]
        Run a crowd scenario and print the operator console.
        --devices is accepted as an alias for --phones.

        --shards splits the fleet into per-cell engines that run on S
        worker threads with deterministic epoch barriers; the output is
        byte-identical at any shard count (default: auto — one worker
        per core, capped by the cell count).

        --metrics-out writes the merged telemetry snapshot to FILE as
        JSON and, next to it, as Prometheus text (extension .prom);
        --events-out writes the typed event stream as JSONL, one
        run-labelled event per line. Either flag turns telemetry on;
        both files are byte-identical across thread counts and reruns.

        --slo-out writes the delivery-SLO report of the d2d run as
        JSON: generated/delivered/duplicate counts, retries, handovers,
        the delivery ratio and false-dead seconds. Byte-identical
        across thread counts, so CI can cmp-gate it.

        --faults injects a deterministic fault schedule; SPEC is a
        comma-separated list of events (times/durations in seconds,
        devices by index):
            outage@AT+DUR           cellular outage for everyone
            blackout@AT+DUR         discovery blackout (no matching)
            drop@AT+DUR:DEV         device's D2D link down for DUR
            depart@AT+REJOIN:DEV    relay departs, back after REJOIN
                                    (REJOIN 0 = never returns)
            degrade@AT+DUR:DEV=P    link suffers extra loss P in [0,1]
            loss@AT+DUR:DEV=P       payloads lost in transit w.p. P
        --trace N keeps the last N trace entries and prints how many
        were evicted.

    hbr strategies [--app wechat|qq|whatsapp|facebook] [--hours H] [--seed S]
        Compare every heartbeat strategy on one app's mixed workload.

    hbr timeline FILE [--around SECS] [--window SECS] [--device N]
        Explain a window of an --events-out JSONL file as a causal,
        human-readable timeline. --around centres the window (--window
        half-width, default 120 s; omit --around to show everything);
        --device keeps one device's events plus global faults.

    hbr help
        Show this text.";

/// A parsed `hbr` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// The controlled-bench quickstart.
    Quickstart {
        /// Number of UEs.
        ues: usize,
        /// Forwarded heartbeats per UE.
        transmissions: u32,
        /// UE–relay distance in metres.
        distance: f64,
    },
    /// A crowd scenario through the event-driven world.
    Crowd {
        /// Total phones.
        phones: usize,
        /// Volunteer relays among them.
        relays: usize,
        /// Scenario length in hours.
        hours: u64,
        /// Deployment area side, metres.
        area: f64,
        /// Scenario seed.
        seed: u64,
        /// Mean minutes between pushes (0 disables).
        push_mins: u64,
        /// Which system(s) to run.
        mode: CrowdMode,
        /// Deterministic fault schedule (empty = clean run).
        faults: FaultPlan,
        /// Trace ring-buffer capacity (0 disables tracing).
        trace: usize,
        /// Worker threads for the sharded engine (None = auto).
        shards: Option<usize>,
        /// Write the merged metrics snapshot here (JSON + `.prom`).
        metrics_out: Option<String>,
        /// Write the typed event stream here (JSONL).
        events_out: Option<String>,
        /// Write the delivery-SLO report here (JSON).
        slo_out: Option<String>,
    },
    /// Render a causal timeline from an `--events-out` JSONL file.
    Timeline {
        /// The JSONL file to read.
        file: String,
        /// Centre of the window, seconds (None = whole file).
        around: Option<u64>,
        /// Window half-width, seconds.
        window: u64,
        /// Restrict to one device (global faults are kept).
        device: Option<u32>,
    },
    /// The strategy comparison table.
    Strategies {
        /// App profile name.
        app: String,
        /// Workload length in hours.
        hours: u64,
        /// Workload seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// Which transport system(s) a `crowd` run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrowdMode {
    /// The framework only.
    D2d,
    /// The unmodified baseline only.
    Original,
    /// Both, with a comparison footer.
    Both,
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown subcommands, unknown
/// flags, missing values or unparsable numbers.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(sub) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "quickstart" => {
            let mut ues = 1usize;
            let mut transmissions = 7u32;
            let mut distance = 1.0f64;
            parse_flags(rest, |flag, value| match flag {
                "--ues" => set(value, &mut ues),
                "--transmissions" => set(value, &mut transmissions),
                "--distance" => set(value, &mut distance),
                _ => Err(format!("unknown flag {flag} for quickstart")),
            })?;
            if ues == 0 || transmissions == 0 {
                return Err("--ues and --transmissions must be positive".into());
            }
            if !(distance.is_finite() && distance > 0.0) {
                return Err("--distance must be a positive number of metres".into());
            }
            Ok(Command::Quickstart {
                ues,
                transmissions,
                distance,
            })
        }
        "crowd" => {
            let mut phones = 40usize;
            let mut relays = 8usize;
            let mut hours = 2u64;
            let mut area = 40.0f64;
            let mut seed = 7u64;
            let mut push_mins = 0u64;
            let mut mode = CrowdMode::Both;
            let mut faults = FaultPlan::new();
            let mut trace = 0usize;
            let mut shards = None;
            let mut metrics_out = None;
            let mut events_out = None;
            let mut slo_out = None;
            parse_flags(rest, |flag, value| match flag {
                "--phones" | "--devices" => set(value, &mut phones),
                "--relays" => set(value, &mut relays),
                "--hours" => set_duration(flag, value, &mut hours, MAX_HOURS),
                "--area" => set(value, &mut area),
                "--seed" => set(value, &mut seed),
                "--push-mins" => set_duration(flag, value, &mut push_mins, MAX_PUSH_MINS),
                "--trace" => set(value, &mut trace),
                "--shards" => {
                    let mut s = 0usize;
                    set(value, &mut s)?;
                    shards = Some(s);
                    Ok(())
                }
                "--metrics-out" => {
                    metrics_out = Some(value.to_string());
                    Ok(())
                }
                "--events-out" => {
                    events_out = Some(value.to_string());
                    Ok(())
                }
                "--slo-out" => {
                    slo_out = Some(value.to_string());
                    Ok(())
                }
                "--faults" => {
                    faults = parse_fault_spec(value)?;
                    Ok(())
                }
                "--mode" => {
                    mode = match value {
                        "d2d" => CrowdMode::D2d,
                        "original" => CrowdMode::Original,
                        "both" => CrowdMode::Both,
                        other => return Err(format!("unknown mode {other}")),
                    };
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for crowd")),
            })?;
            if phones == 0 || hours == 0 {
                return Err("--phones and --hours must be positive".into());
            }
            if relays > phones {
                return Err("--relays cannot exceed --phones".into());
            }
            if shards == Some(0) {
                return Err("--shards must be positive (omit it for auto)".into());
            }
            Ok(Command::Crowd {
                phones,
                relays,
                hours,
                area,
                seed,
                push_mins,
                mode,
                faults,
                trace,
                shards,
                metrics_out,
                events_out,
                slo_out,
            })
        }
        "timeline" => {
            let Some(file) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("timeline needs an events JSONL file".into());
            };
            let file = file.clone();
            let mut around = None;
            let mut window = 120u64;
            let mut device = None;
            parse_flags(&rest[1..], |flag, value| match flag {
                "--around" => {
                    let mut at = 0u64;
                    set_duration(flag, value, &mut at, MAX_TIMELINE_SECS)?;
                    around = Some(at);
                    Ok(())
                }
                "--window" => set_duration(flag, value, &mut window, MAX_TIMELINE_SECS),
                "--device" => {
                    let mut d = 0u32;
                    set(value, &mut d)?;
                    device = Some(d);
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for timeline")),
            })?;
            if window == 0 {
                return Err("--window must be positive".into());
            }
            Ok(Command::Timeline {
                file,
                around,
                window,
                device,
            })
        }
        "strategies" => {
            let mut app = "wechat".to_string();
            let mut hours = 24u64;
            let mut seed = 2017u64;
            parse_flags(rest, |flag, value| match flag {
                "--app" => {
                    app = value.to_string();
                    Ok(())
                }
                "--hours" => set_duration(flag, value, &mut hours, MAX_HOURS),
                "--seed" => set(value, &mut seed),
                _ => Err(format!("unknown flag {flag} for strategies")),
            })?;
            if hours == 0 {
                return Err("--hours must be positive".into());
            }
            Ok(Command::Strategies { app, hours, seed })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Parses a `--faults` spec (see [`USAGE`]) into a [`FaultPlan`].
///
/// Each comma-separated entry is `kind@AT+DUR[:DEV][=P]`; times and
/// durations are whole seconds, `DEV` is the device's index in fleet
/// order, `P` a probability in `[0, 1]`.
pub fn parse_fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (kind, rest) = entry
            .split_once('@')
            .ok_or_else(|| format!("fault {entry} is missing an @time"))?;
        // Peel the optional trailing pieces right to left: `=P`, `:DEV`.
        let (rest, prob) = match rest.split_once('=') {
            Some((head, p)) => {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("fault {entry}: cannot parse probability {p}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault {entry}: probability must be in [0, 1]"));
                }
                (head, Some(p))
            }
            None => (rest, None),
        };
        let (timing, device) = match rest.split_once(':') {
            Some((head, dev)) => {
                let dev: u32 = dev
                    .parse()
                    .map_err(|_| format!("fault {entry}: cannot parse device index {dev}"))?;
                (head, Some(DeviceId::new(dev)))
            }
            None => (rest, None),
        };
        let (at, dur) = timing
            .split_once('+')
            .ok_or_else(|| format!("fault {entry} is missing a +duration"))?;
        let at: u64 = at
            .parse()
            .map_err(|_| format!("fault {entry}: cannot parse time {at}"))?;
        let dur: u64 = dur
            .parse()
            .map_err(|_| format!("fault {entry}: cannot parse duration {dur}"))?;
        let at = SimTime::from_secs(at);
        let duration = SimDuration::from_secs(dur);

        let need_device = || device.ok_or_else(|| format!("fault {entry} needs a :device index"));
        let kind = match kind {
            "outage" => FaultKind::CellularOutage { duration },
            "blackout" => FaultKind::DiscoveryBlackout { duration },
            "drop" => FaultKind::LinkDrop {
                device: need_device()?,
                d2d_down_for: duration,
            },
            "depart" => FaultKind::RelayDeparture {
                device: need_device()?,
                rejoin_after: (dur > 0).then_some(duration),
            },
            "degrade" => FaultKind::LinkDegrade {
                device: need_device()?,
                extra_loss: prob
                    .ok_or_else(|| format!("fault {entry} needs =P for the extra loss"))?,
                duration,
            },
            "loss" => FaultKind::PayloadLoss {
                device: need_device()?,
                probability: prob
                    .ok_or_else(|| format!("fault {entry} needs =P for the loss probability"))?,
                duration,
            },
            other => {
                return Err(format!(
                    "unknown fault kind {other}; try outage, blackout, drop, depart, degrade, loss"
                ))
            }
        };
        plan.schedule(at, kind);
    }
    Ok(plan)
}

fn set<T: std::str::FromStr>(value: &str, slot: &mut T) -> Result<(), String> {
    *slot = value
        .parse()
        .map_err(|_| format!("cannot parse value {value}"))?;
    Ok(())
}

/// Largest value a seconds-denominated timeline flag may take: anything
/// bigger cannot be represented on the simulator's microsecond grid.
pub(crate) const MAX_TIMELINE_SECS: u64 = u64::MAX / 1_000_000;

/// Largest `--hours` value whose microsecond total still fits in `u64`.
pub(crate) const MAX_HOURS: u64 = u64::MAX / (3600 * 1_000_000);

/// Largest `--push-mins` value whose microsecond total still fits in `u64`.
pub(crate) const MAX_PUSH_MINS: u64 = u64::MAX / (60 * 1_000_000);

/// Parses a duration-valued flag (hours, minutes or seconds). A bare
/// `set` would report negatives as an opaque parse failure and let
/// huge values overflow the microsecond grid downstream — which once
/// meant a silently zero-length run; reject both here with the flag
/// named in the error.
fn set_duration(flag: &str, value: &str, slot: &mut u64, max: u64) -> Result<(), String> {
    if value.trim().starts_with('-') {
        return Err(format!("{flag} cannot be negative, got {value}"));
    }
    let parsed: u64 = value
        .parse()
        .map_err(|_| format!("{flag} needs a whole non-negative number, got {value}"))?;
    if parsed > max {
        return Err(format!("{flag} is too large (max {max}), got {value}"));
    }
    *slot = parsed;
    Ok(())
}

fn parse_flags<F>(rest: &[String], mut apply: F) -> Result<(), String>
where
    F: FnMut(&str, &str) -> Result<(), String>,
{
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        if !flag.starts_with("--") {
            return Err(format!("expected a --flag, got {flag}"));
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        apply(flag, value)?;
        i += 2;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_are_sane() {
        assert_eq!(
            parse(&argv("quickstart")).unwrap(),
            Command::Quickstart {
                ues: 1,
                transmissions: 7,
                distance: 1.0
            }
        );
        match parse(&argv("crowd")).unwrap() {
            Command::Crowd {
                phones,
                relays,
                mode,
                ..
            } => {
                assert_eq!(phones, 40);
                assert_eq!(relays, 8);
                assert_eq!(mode, CrowdMode::Both);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flags_override() {
        let cmd = parse(&argv(
            "crowd --phones 100 --relays 20 --hours 3 --mode d2d --push-mins 30",
        ))
        .unwrap();
        match cmd {
            Command::Crowd {
                phones,
                relays,
                hours,
                push_mins,
                mode,
                ..
            } => {
                assert_eq!((phones, relays, hours, push_mins), (100, 20, 3, 30));
                assert_eq!(mode, CrowdMode::D2d);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("crowd --phones")).is_err());
        assert!(parse(&argv("crowd --phones ten")).is_err());
        assert!(parse(&argv("crowd --relays 50 --phones 10")).is_err());
        assert!(parse(&argv("crowd --mode sideways")).is_err());
        assert!(parse(&argv("quickstart --distance -4")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn help_parses() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn fault_spec_covers_every_kind() {
        let plan = parse_fault_spec(
            "outage@1800+120,blackout@3600+300,drop@2000+60:3,\
             depart@1800+900:0,degrade@1000+600:2=0.9,loss@1000+600:2=0.5",
        )
        .unwrap();
        assert_eq!(plan.events().len(), 6);
        // Events come back sorted by time.
        let times: Vec<u64> = plan
            .events()
            .iter()
            .map(|e| e.at.saturating_since(SimTime::ZERO).as_secs())
            .collect();
        assert_eq!(times, vec![1000, 1000, 1800, 1800, 2000, 3600]);
        assert!(plan.events().iter().any(|e| e.kind
            == FaultKind::RelayDeparture {
                device: DeviceId::new(0),
                rejoin_after: Some(SimDuration::from_secs(900)),
            }));
        assert!(plan.events().iter().any(|e| e.kind
            == FaultKind::LinkDrop {
                device: DeviceId::new(3),
                d2d_down_for: SimDuration::from_secs(60),
            }));
    }

    #[test]
    fn fault_spec_zero_rejoin_means_permanent_departure() {
        let plan = parse_fault_spec("depart@100+0:1").unwrap();
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::RelayDeparture {
                device: DeviceId::new(1),
                rejoin_after: None,
            }
        );
    }

    #[test]
    fn fault_spec_errors_are_reported() {
        assert!(parse_fault_spec("outage").is_err(), "missing @time");
        assert!(parse_fault_spec("outage@100").is_err(), "missing +duration");
        assert!(parse_fault_spec("drop@100+60").is_err(), "missing :device");
        assert!(parse_fault_spec("degrade@100+60:2").is_err(), "missing =P");
        assert!(parse_fault_spec("loss@100+60:2=1.5").is_err(), "P > 1");
        assert!(parse_fault_spec("teleport@100+60").is_err(), "unknown kind");
        assert!(parse_fault_spec("outage@ten+60").is_err(), "bad number");
    }

    #[test]
    fn crowd_accepts_telemetry_outputs_and_devices_alias() {
        let cmd = parse(&argv(
            "crowd --devices 200 --metrics-out m.json --events-out e.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Crowd {
                phones,
                metrics_out,
                events_out,
                ..
            } => {
                assert_eq!(phones, 200);
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
                assert_eq!(events_out.as_deref(), Some("e.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Without the flags both stay off.
        match parse(&argv("crowd")).unwrap() {
            Command::Crowd {
                metrics_out,
                events_out,
                ..
            } => assert!(metrics_out.is_none() && events_out.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crowd_accepts_slo_out() {
        match parse(&argv("crowd --slo-out slo.json")).unwrap() {
            Command::Crowd { slo_out, .. } => assert_eq!(slo_out.as_deref(), Some("slo.json")),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("crowd")).unwrap() {
            Command::Crowd { slo_out, .. } => assert!(slo_out.is_none(), "default is off"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timeline_parses_and_validates() {
        assert_eq!(
            parse(&argv("timeline e.jsonl --around 1800 --device 7")).unwrap(),
            Command::Timeline {
                file: "e.jsonl".into(),
                around: Some(1800),
                window: 120,
                device: Some(7),
            }
        );
        assert_eq!(
            parse(&argv("timeline e.jsonl --window 60")).unwrap(),
            Command::Timeline {
                file: "e.jsonl".into(),
                around: None,
                window: 60,
                device: None,
            }
        );
        assert!(parse(&argv("timeline")).is_err(), "missing file");
        assert!(parse(&argv("timeline --around 5")).is_err(), "flag as file");
        assert!(parse(&argv("timeline e.jsonl --window 0")).is_err());
        assert!(parse(&argv("timeline e.jsonl --frobnicate 1")).is_err());
    }

    #[test]
    fn duration_flags_reject_negatives_by_name() {
        // A negative duration used to fail as an opaque "cannot parse
        // value"; worse, before validation existed it could wrap into a
        // zero-length run. The error must now name the flag.
        for bad in [
            "crowd --hours -3",
            "crowd --push-mins -1",
            "strategies --hours -24",
            "timeline e.jsonl --around -5",
            "timeline e.jsonl --window -60",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            let flag = bad
                .split_whitespace()
                .find(|w| w.starts_with("--"))
                .unwrap();
            assert!(
                err.contains(flag) && err.contains("negative"),
                "{bad}: unhelpful error {err:?}"
            );
        }
    }

    #[test]
    fn duration_flags_reject_values_off_the_microsecond_grid() {
        // u64::MAX hours cannot be represented in microseconds; letting
        // it through would overflow (or silently truncate) downstream.
        let max = u64::MAX;
        for bad in [
            format!("crowd --hours {max}"),
            format!("crowd --push-mins {max}"),
            format!("strategies --hours {max}"),
            format!("timeline e.jsonl --around {max}"),
            format!("timeline e.jsonl --window {max}"),
        ] {
            let err = parse(&argv(&bad)).unwrap_err();
            assert!(err.contains("too large"), "{bad}: unexpected error {err:?}");
        }
        // The documented maxima themselves are accepted.
        assert!(parse(&argv(&format!("crowd --hours {MAX_HOURS}"))).is_ok());
        assert!(parse(&argv(&format!(
            "timeline e.jsonl --around {MAX_TIMELINE_SECS}"
        )))
        .is_ok());
    }

    #[test]
    fn crowd_shards_flag_parses_and_rejects_zero() {
        match parse(&argv("crowd --shards 4")).unwrap() {
            Command::Crowd { shards, .. } => assert_eq!(shards, Some(4)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("crowd")).unwrap() {
            Command::Crowd { shards, .. } => assert_eq!(shards, None, "default is auto"),
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("crowd --shards 0")).unwrap_err();
        assert!(err.contains("--shards"), "unhelpful error {err:?}");
    }

    #[test]
    fn crowd_accepts_faults_and_trace() {
        let cmd = parse(&argv("crowd --faults outage@1800+120 --trace 500")).unwrap();
        match cmd {
            Command::Crowd { faults, trace, .. } => {
                assert_eq!(faults.events().len(), 1);
                assert_eq!(trace, 500);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("crowd --faults nonsense")).is_err());
    }
}
