//! `hbr timeline` — a causal, per-device explanation of an events file.
//!
//! Reads the JSONL stream `hbr crowd --events-out` wrote, keeps a time
//! window (and optionally one device), and renders each event as a
//! sentence an operator can follow: what flushed and why, how the radio
//! moved, which faults fired, and — for cellular fallbacks — the most
//! plausible injected fault that caused them. The rendering is pure
//! string work over the parsed lines, so the same file always produces
//! the same text.

use std::collections::BTreeMap;

use hbr_sim::telemetry::{parse_jsonl_line, JsonScalar};

/// What slice of the file to explain.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineQuery {
    /// Centre of the window, seconds; [`None`] shows the whole file.
    pub around_secs: Option<u64>,
    /// Half-width of the window, seconds (ignored without `around_secs`).
    pub window_secs: u64,
    /// Keep only this device's events (global faults always stay).
    pub device: Option<u32>,
}

/// One parsed event line, ready to render.
struct Entry {
    t_us: u64,
    run: String,
    kind: String,
    fields: BTreeMap<String, JsonScalar>,
}

impl Entry {
    fn device(&self) -> Option<u64> {
        self.fields.get("device").and_then(JsonScalar::as_u64)
    }

    /// Every device id this event names, not just its `device` field:
    /// `relay` (match/depart), and `from_relay`/`to_relay` (handover)
    /// are device ids too — and the sharded merge remaps *all* of them
    /// to global ids, so `--device` filtering must consult each one or
    /// a relay's own timeline silently omits the retries/handovers it
    /// participated in.
    fn participants(&self) -> impl Iterator<Item = u64> + '_ {
        ["device", "relay", "from_relay", "to_relay"]
            .into_iter()
            .filter_map(|key| self.fields.get(key).and_then(JsonScalar::as_u64))
    }

    fn str(&self, key: &str) -> &str {
        self.fields
            .get(key)
            .and_then(JsonScalar::as_str)
            .unwrap_or("?")
    }

    fn num(&self, key: &str) -> u64 {
        self.fields
            .get(key)
            .and_then(JsonScalar::as_u64)
            .unwrap_or(0)
    }

    fn float(&self, key: &str) -> f64 {
        self.fields
            .get(key)
            .and_then(JsonScalar::as_f64)
            .unwrap_or(0.0)
    }
}

/// The fault kinds that plausibly explain a fallback cause — used to
/// annotate each fallback with the nearest preceding matching fault.
fn plausible_faults(cause: &str) -> &'static [&'static str] {
    match cause {
        "blackout" => &["discovery-blackout"],
        "no-relay" => &["discovery-blackout", "relay-departure"],
        "d2d-down" => &["link-drop", "relay-departure"],
        "feedback-timeout" | "retry-exhausted" => &[
            "payload-loss",
            "link-degrade",
            "link-drop",
            "relay-departure",
            "cellular-outage",
        ],
        _ => &[],
    }
}

fn secs(t_us: u64) -> f64 {
    t_us as f64 / 1_000_000.0
}

/// Renders the timeline for `text` (the JSONL file contents).
///
/// Returns the finished report, or an error when no line parses at all
/// (almost certainly not an `--events-out` file).
pub fn render(text: &str, query: TimelineQuery) -> Result<String, String> {
    let mut skipped = 0usize;
    let mut entries: Vec<Entry> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some(fields) = parse_jsonl_line(line) else {
            skipped += 1;
            continue;
        };
        let (Some(t_us), Some(kind)) = (
            fields.get("t_us").and_then(JsonScalar::as_u64),
            fields.get("event").and_then(JsonScalar::as_str),
        ) else {
            skipped += 1;
            continue;
        };
        entries.push(Entry {
            t_us,
            run: fields
                .get("run")
                .and_then(JsonScalar::as_str)
                .unwrap_or("")
                .to_string(),
            kind: kind.to_string(),
            fields,
        });
    }
    if entries.is_empty() {
        return Err(format!(
            "no events found ({skipped} unparseable line(s)) — is this an --events-out file?"
        ));
    }

    // Split into runs, preserving first-appearance order (the writer
    // emits one contiguous block per run).
    let mut runs: Vec<(String, Vec<Entry>)> = Vec::new();
    for entry in entries {
        match runs.iter_mut().find(|(name, _)| *name == entry.run) {
            Some((_, bucket)) => bucket.push(entry),
            None => runs.push((entry.run.clone(), vec![entry])),
        }
    }

    let mut out = String::new();
    if let Some(centre) = query.around_secs {
        out.push_str(&format!(
            "window: {}..{} s (around {centre}, ±{} s)",
            centre.saturating_sub(query.window_secs),
            centre.saturating_add(query.window_secs),
            query.window_secs
        ));
    } else {
        out.push_str("window: whole file");
    }
    if let Some(d) = query.device {
        out.push_str(&format!(", device {d} (+ global faults)"));
    }
    out.push('\n');
    if skipped > 0 {
        out.push_str(&format!("note: skipped {skipped} unparseable line(s)\n"));
    }

    for (name, entries) in &runs {
        out.push('\n');
        if !name.is_empty() {
            out.push_str(&format!("── run: {name} ──\n"));
        }
        render_run(&mut out, entries, query);
    }
    Ok(out)
}

fn render_run(out: &mut String, entries: &[Entry], query: TimelineQuery) {
    let (lo_us, hi_us) = match query.around_secs {
        Some(centre) => (
            centre
                .saturating_sub(query.window_secs)
                .saturating_mul(1_000_000),
            centre
                .saturating_add(query.window_secs)
                .saturating_mul(1_000_000),
        ),
        None => (0, u64::MAX),
    };
    let in_window = |e: &Entry| e.t_us >= lo_us && e.t_us <= hi_us;
    let for_device = |e: &Entry| match query.device {
        Some(want) => {
            let mut named = e.participants().peekable();
            // Device-less events (global faults) always stay; an event
            // naming any device keeps only the timelines it names.
            named.peek().is_none() || named.any(|have| have == u64::from(want))
        }
        None => true,
    };

    // Faults are matched against the whole run, not just the window, so
    // a fallback at the window's edge still finds its cause.
    let faults: Vec<&Entry> = entries.iter().filter(|e| e.kind == "fault").collect();

    let mut shown = 0usize;
    let mut kind_counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut flush_reasons: BTreeMap<String, usize> = BTreeMap::new();
    let mut fallback_causes: BTreeMap<String, usize> = BTreeMap::new();

    for entry in entries.iter().filter(|e| in_window(e) && for_device(e)) {
        shown += 1;
        *kind_counts
            .entry(match entry.kind.as_str() {
                "flush" => "flush",
                "rrc" => "rrc",
                "match" => "match",
                "depart" => "depart",
                "fallback" => "fallback",
                "fault" => "fault",
                "energy" => "energy",
                "pulse" => "pulse",
                "retry" => "retry",
                "handover" => "handover",
                _ => "other",
            })
            .or_insert(0) += 1;

        let t = secs(entry.t_us);
        let line = match entry.kind.as_str() {
            "flush" => {
                let reason = entry.str("reason");
                *flush_reasons.entry(reason.to_string()).or_insert(0) += 1;
                let why = match reason {
                    "capacity" => "buffer reached capacity",
                    "expiration" => "a heartbeat neared expiry",
                    "period" => "aggregation period elapsed",
                    "outage-queued" => "queued through a cellular outage, sent as it ended",
                    other => other,
                };
                format!(
                    "relay {} flushed {} forwarded + {} own heartbeat(s), {} B — {why}",
                    entry.num("device"),
                    entry.num("buffered"),
                    entry.num("own"),
                    entry.num("bytes"),
                )
            }
            "rrc" => format!(
                "device {} radio {} → {} after {} s in {}",
                entry.num("device"),
                entry.str("from"),
                entry.str("to"),
                entry.float("dwell_secs"),
                entry.str("from"),
            ),
            "match" => format!(
                "device {} matched relay {} and set up a D2D link",
                entry.num("device"),
                entry.num("relay"),
            ),
            "depart" => format!(
                "device {} detached from relay {}",
                entry.num("device"),
                entry.num("relay"),
            ),
            "fallback" => {
                let cause = entry.str("cause").to_string();
                *fallback_causes.entry(cause.clone()).or_insert(0) += 1;
                let mut line = format!(
                    "device {} fell back to direct cellular ({cause})",
                    entry.num("device"),
                );
                // Nearest preceding fault whose kind plausibly explains
                // the cause — the causal link the operator is after.
                let culprit = faults.iter().rfind(|f| {
                    f.t_us <= entry.t_us && plausible_faults(&cause).contains(&f.str("kind"))
                });
                if let Some(f) = culprit {
                    line.push_str(&format!(
                        " — likely the {} fault injected at {:.1} s",
                        f.str("kind"),
                        secs(f.t_us),
                    ));
                }
                line
            }
            "fault" => {
                let mut line = format!(
                    "fault injected: {} (plan entry {})",
                    entry.str("kind"),
                    entry.num("index"),
                );
                if let Some(d) = entry.device() {
                    line.push_str(&format!(" on device {d}"));
                }
                line
            }
            "energy" => format!(
                "device {} drew {} µAh in {}",
                entry.num("device"),
                entry.float("uah"),
                entry.str("group"),
            ),
            "pulse" => format!(
                "fleet pulse (epoch {}, {} cell(s)): {} forwards, {} fallbacks, {} outage-queued, {} L3 msgs, {} delivered, {} retries",
                entry.num("epoch"),
                entry.num("cells"),
                entry.num("forwards"),
                entry.num("fallbacks"),
                entry.num("outage_queued"),
                entry.num("l3"),
                entry.num("delivered"),
                entry.num("retries"),
            ),
            "retry" => format!(
                "device {} scheduled a D2D retransmission, attempt {} ({})",
                entry.num("device"),
                entry.num("attempt"),
                entry.str("cause"),
            ),
            "handover" => format!(
                "device {} handed its pending heartbeat over from relay {} to relay {}",
                entry.num("device"),
                entry.num("from_relay"),
                entry.num("to_relay"),
            ),
            other => format!("unrecognized event kind {other:?}"),
        };
        out.push_str(&format!("{t:>10.1}s  {line}\n"));
    }

    if shown == 0 {
        out.push_str("  (no events in this window)\n");
        return;
    }
    out.push_str(&format!("\n  {shown} event(s): "));
    let parts: Vec<String> = kind_counts
        .iter()
        .map(|(k, n)| format!("{k} ×{n}"))
        .collect();
    out.push_str(&parts.join(", "));
    out.push('\n');
    if !flush_reasons.is_empty() {
        let parts: Vec<String> = flush_reasons
            .iter()
            .map(|(r, n)| format!("{r} ×{n}"))
            .collect();
        out.push_str(&format!("  flush reasons: {}\n", parts.join(", ")));
    }
    if !fallback_causes.is_empty() {
        let parts: Vec<String> = fallback_causes
            .iter()
            .map(|(c, n)| format!("{c} ×{n}"))
            .collect();
        out.push_str(&format!("  fallback causes: {}\n", parts.join(", ")));
    }
}

/// The `hbr timeline` entry point: reads `file` and prints the report.
pub fn run(
    file: &str,
    around: Option<u64>,
    window: u64,
    device: Option<u32>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let report = render(
        &text,
        TimelineQuery {
            around_secs: around,
            window_secs: window,
            device,
        },
    )?;
    print!("{report}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
{\"run\":\"d2d-framework\",\"t_us\":5000000,\"event\":\"match\",\"device\":7,\"relay\":0}
{\"run\":\"d2d-framework\",\"t_us\":1800000000,\"event\":\"fault\",\"index\":0,\"kind\":\"cellular-outage\"}
{\"run\":\"d2d-framework\",\"t_us\":1805000000,\"event\":\"flush\",\"device\":0,\"reason\":\"outage-queued\",\"buffered\":4,\"own\":1,\"bytes\":512}
{\"run\":\"d2d-framework\",\"t_us\":1810000000,\"event\":\"fallback\",\"device\":7,\"cause\":\"feedback-timeout\"}
{\"run\":\"d2d-framework\",\"t_us\":1812000000,\"event\":\"rrc\",\"device\":7,\"from\":\"dch\",\"to\":\"fach\",\"dwell_secs\":6.5}
{\"run\":\"d2d-framework\",\"t_us\":7200000000,\"event\":\"energy\",\"device\":7,\"group\":\"Cellular\",\"uah\":321.5}
";

    fn q(around: Option<u64>, device: Option<u32>) -> TimelineQuery {
        TimelineQuery {
            around_secs: around,
            window_secs: 120,
            device,
        }
    }

    #[test]
    fn whole_file_renders_every_event() {
        let out = render(SAMPLE, q(None, None)).unwrap();
        assert!(out.contains("run: d2d-framework"));
        assert!(out.contains("matched relay 0"));
        assert!(out.contains("fault injected: cellular-outage (plan entry 0)"));
        assert!(out.contains("queued through a cellular outage"));
        assert!(out.contains("drew 321.5 µAh in Cellular"));
        assert!(out.contains("6 event(s)"));
    }

    #[test]
    fn window_filters_by_time() {
        let out = render(SAMPLE, q(Some(1800), None)).unwrap();
        assert!(out.contains("window: 1680..1920 s"));
        assert!(!out.contains("matched relay"), "t=5 s is out of window");
        assert!(!out.contains("µAh"), "t=7200 s is out of window");
        assert!(out.contains("flush reasons: outage-queued ×1"));
    }

    #[test]
    fn device_filter_keeps_global_faults() {
        let out = render(SAMPLE, q(Some(1800), Some(7))).unwrap();
        assert!(out.contains("fault injected"), "global fault survives");
        assert!(!out.contains("relay 0 flushed"), "device 0 is filtered");
        assert!(out.contains("device 7 fell back"));
        assert!(out.contains("device 7 radio dch → fach after 6.5 s in dch"));
    }

    #[test]
    fn device_filter_matches_relay_participants_after_remap() {
        // Event stream as merged from a sharded run: the ids here are
        // *global* (remapped) ids. Filtering on relay 12's timeline must
        // keep the match/handover/retry events that name it in their
        // `relay`/`from_relay`/`to_relay` fields, not only events whose
        // `device` field happens to equal 12.
        let merged = "\
{\"run\":\"d2d-framework\",\"t_us\":5000000,\"event\":\"match\",\"device\":40,\"relay\":12}
{\"run\":\"d2d-framework\",\"t_us\":6000000,\"event\":\"retry\",\"device\":40,\"attempt\":1,\"cause\":\"transfer-failed\"}
{\"run\":\"d2d-framework\",\"t_us\":7000000,\"event\":\"handover\",\"device\":40,\"from_relay\":12,\"to_relay\":13}
{\"run\":\"d2d-framework\",\"t_us\":8000000,\"event\":\"flush\",\"device\":13,\"reason\":\"period\",\"buffered\":1,\"own\":1,\"bytes\":148}
";
        let out = render(merged, q(None, Some(12))).unwrap();
        assert!(
            out.contains("device 40 matched relay 12"),
            "match names relay 12, must survive its filter:\n{out}"
        );
        assert!(
            out.contains("handed its pending heartbeat over from relay 12 to relay 13"),
            "handover names relay 12 as from_relay:\n{out}"
        );
        assert!(
            !out.contains("scheduled a D2D retransmission"),
            "retry names only device 40, not relay 12:\n{out}"
        );
        assert!(
            !out.contains("relay 13 flushed"),
            "flush belongs to relay 13's timeline:\n{out}"
        );
        // The destination relay's timeline sees the same handover.
        let out = render(merged, q(None, Some(13))).unwrap();
        assert!(out.contains("handed its pending heartbeat over"));
        assert!(out.contains("relay 13 flushed"));
        // The UE's own timeline still shows everything it took part in.
        let out = render(merged, q(None, Some(40))).unwrap();
        assert!(out.contains("matched relay 12"));
        assert!(out.contains("scheduled a D2D retransmission, attempt 1"));
        assert!(out.contains("handed its pending heartbeat over"));
    }

    #[test]
    fn fallbacks_cite_the_nearest_plausible_fault() {
        let out = render(SAMPLE, q(Some(1800), Some(7))).unwrap();
        assert!(
            out.contains("likely the cellular-outage fault injected at 1800.0 s"),
            "missing causal annotation in:\n{out}"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render(SAMPLE, q(None, None)).unwrap();
        let b = render(SAMPLE, q(None, None)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn extreme_window_bounds_saturate_instead_of_overflowing() {
        // `centre + window` used to overflow u64 in debug builds when
        // --around sat near the top of the range; both bounds (and the
        // microsecond conversion) must saturate. cargo test runs these
        // in debug, so an unfixed overflow panics right here.
        let query = TimelineQuery {
            around_secs: Some(u64::MAX),
            window_secs: u64::MAX,
            device: None,
        };
        let out = render(SAMPLE, query).unwrap();
        assert!(out.contains("window: 0.."), "lower bound saturates to 0");
        // A saturated window covers everything, so all six events show.
        assert!(out.contains("6 event(s)"));

        // A huge centre with a small window is simply empty, not a panic.
        let far = TimelineQuery {
            around_secs: Some(u64::MAX / 1_000_000),
            window_secs: 120,
            device: None,
        };
        let out = render(SAMPLE, far).unwrap();
        assert!(out.contains("(no events in this window)"));
    }

    #[test]
    fn pulse_events_render_fleet_counters() {
        let sample = "{\"t_us\":3600000000,\"event\":\"pulse\",\"epoch\":4,\"cells\":9,\
                      \"forwards\":120,\"fallbacks\":3,\"outage_queued\":0,\"l3\":88,\
                      \"delivered\":117,\"retries\":2}\n";
        let out = render(sample, q(None, None)).unwrap();
        assert!(
            out.contains("fleet pulse (epoch 4, 9 cell(s)): 120 forwards, 3 fallbacks, 0 outage-queued, 88 L3 msgs, 117 delivered, 2 retries"),
            "missing pulse line in:\n{out}"
        );
        assert!(out.contains("pulse ×1"));
    }

    #[test]
    fn retry_and_handover_events_render_with_causes() {
        let sample = "\
{\"t_us\":1800000000,\"event\":\"fault\",\"index\":0,\"kind\":\"link-drop\",\"device\":7}
{\"t_us\":1803000000,\"event\":\"retry\",\"device\":7,\"cause\":\"transfer-failed\",\"attempt\":1}
{\"t_us\":1810000000,\"event\":\"handover\",\"device\":7,\"from_relay\":0,\"to_relay\":2}
{\"t_us\":1890000000,\"event\":\"fallback\",\"device\":7,\"cause\":\"retry-exhausted\"}
";
        let out = render(sample, q(None, None)).unwrap();
        assert!(
            out.contains("device 7 scheduled a D2D retransmission, attempt 1 (transfer-failed)"),
            "missing retry line in:\n{out}"
        );
        assert!(
            out.contains("device 7 handed its pending heartbeat over from relay 0 to relay 2"),
            "missing handover line in:\n{out}"
        );
        // retry-exhausted fallbacks still get a causal fault annotation.
        assert!(
            out.contains("likely the link-drop fault injected at 1800.0 s"),
            "missing causal annotation in:\n{out}"
        );
        assert!(out.contains("retry ×1") && out.contains("handover ×1"));
    }

    #[test]
    fn garbage_input_is_an_error_not_a_panic() {
        assert!(render("not json\nstill not json\n", q(None, None)).is_err());
        // A mix renders the good lines and counts the bad one.
        let mixed = format!("garbage\n{SAMPLE}");
        let out = render(&mixed, q(None, None)).unwrap();
        assert!(out.contains("skipped 1 unparseable line(s)"));
    }
}
