//! `hbr` — the command-line front end of the D2D heartbeat relaying
//! framework.
//!
//! ```text
//! hbr quickstart [--ues N] [--transmissions N] [--distance M]
//! hbr crowd [--phones N] [--relays N] [--hours H] [--area M] [--seed S]
//!           [--push-mins M] [--mode d2d|original|both]
//!           [--metrics-out FILE] [--events-out FILE]
//! hbr strategies [--app NAME] [--hours H] [--seed S]
//! hbr timeline FILE [--around SECS] [--window SECS] [--device N]
//! hbr help
//! ```

use std::process::ExitCode;

mod args;
mod commands;
mod timeline;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => {
            commands::run(command);
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
