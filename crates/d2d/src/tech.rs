//! Technology profiles: the electrical and physical parameters of each
//! D2D technique.
//!
//! # Calibration (Wi-Fi Direct)
//!
//! Phase charges are fitted to the paper's Galaxy S4 measurements:
//!
//! | Phase                | UE (µAh) | Relay (µAh) | Source    |
//! |----------------------|----------|-------------|-----------|
//! | Discovery            | 132.24   | 122.50      | Table III |
//! | Connection           | 63.74    | 60.29       | Table III |
//! | Send (54 B, 1 m)     | 73.09    | —           | Table III |
//! | Receive (per message)| —        | ≈130.2      | Table IV  |
//!
//! Table IV's receive column (123.22, 252.40, 386.11, 517.97, 655.82,
//! 791.18, 911.20 µAh for 1–7 messages) is linear with slope ≈ 130.2
//! µAh/message, which is the marginal receive cost used here.
//!
//! Transfer energy scales with distance as `1 + α·(d − 1 m)` with
//! α = 0.07/m, so a 15 m link costs ≈ 2× a 1 m link — matching the rising
//! trend of Fig. 12 — and with size as `1 + β·(bytes/54 − 1)` with
//! β = 0.02, keeping 1×–5× heartbeat payloads near-flat (Fig. 13).

use hbr_energy::{MilliAmps, Phase, Segment};
use hbr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which end of a D2D exchange a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum D2dRole {
    /// The side that started discovery / sends data (the UE).
    Initiator,
    /// The side that answers / receives data (the relay).
    Responder,
}

/// The modelled D2D techniques (§II-C, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum D2dTechnology {
    /// The prototype's choice: ~200 m range, fast transfers.
    WifiDirect,
    /// Low-energy but ~10 m range — rejected by §IV-A for range.
    Bluetooth,
    /// Qualcomm's proposal: ~500 m discovery range, not widely deployed.
    LteDirect,
}

/// Absolute-time energy segments produced by one D2D phase, plus the
/// instant the phase completes.
#[derive(Debug, Clone, Default)]
pub struct D2dActivity {
    /// `(absolute start, segment)` pairs for the device's energy meter.
    pub segments: Vec<(SimTime, Segment)>,
    /// When the phase finishes.
    pub done_at: SimTime,
}

impl D2dActivity {
    /// Total charge of this activity.
    pub fn charge(&self) -> hbr_energy::MicroAmpHours {
        self.segments.iter().map(|(_, s)| s.charge()).sum()
    }

    fn push(&mut self, start: SimTime, duration: SimDuration, current: MilliAmps, phase: Phase) {
        if duration.is_zero() {
            return;
        }
        self.segments.push((
            start,
            Segment {
                offset: SimDuration::ZERO,
                duration,
                current,
                phase,
            },
        ));
    }
}

/// A two-segment "spike then settle" transfer shape (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferShape {
    /// Peak segment duration.
    pub spike: SimDuration,
    /// Peak current.
    pub spike_current: MilliAmps,
    /// Settle segment duration.
    pub settle: SimDuration,
    /// Settle current.
    pub settle_current: MilliAmps,
}

impl TransferShape {
    /// Base charge of this shape in µAh.
    pub fn base_charge_uah(&self) -> f64 {
        (self.spike_current.as_milli_amps() * self.spike.as_secs_f64()
            + self.settle_current.as_milli_amps() * self.settle.as_secs_f64())
            / 3.6
    }
}

/// All parameters of one D2D technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechProfile {
    /// Which technique this profile describes.
    pub technology: D2dTechnology,
    /// Maximum communication distance in metres.
    pub range_m: f64,
    /// Duration of a discovery scan.
    pub discovery_duration: SimDuration,
    /// Scan current on the initiating (UE) side.
    pub discovery_current_initiator: MilliAmps,
    /// Listen/respond current on the responding (relay) side.
    pub discovery_current_responder: MilliAmps,
    /// Duration of connection establishment (GO negotiation + DHCP).
    pub connection_duration: SimDuration,
    /// Connection current on the initiating side.
    pub connection_current_initiator: MilliAmps,
    /// Connection current on the responding side.
    pub connection_current_responder: MilliAmps,
    /// Shape of a single heartbeat-sized send on the sender.
    pub send_shape: TransferShape,
    /// Shape of a single heartbeat-sized receive on the receiver.
    pub receive_shape: TransferShape,
    /// Link goodput in bytes/second (stretches transfers beyond the
    /// reference payload).
    pub bytes_per_sec: f64,
    /// Reference payload size for the transfer shapes.
    pub reference_bytes: usize,
    /// Keep-alive current while a group is connected but idle.
    pub idle_current: MilliAmps,
    /// Transfer-energy growth per metre beyond 1 m (Fig. 12 slope).
    pub distance_alpha_per_m: f64,
    /// Transfer-energy growth per reference-size multiple (Fig. 13 slope).
    pub size_beta: f64,
    /// Baseline probability that a single transfer fails outright.
    pub base_loss_probability: f64,
    /// `true` if the technique runs group-owner negotiation (Wi-Fi Direct).
    pub has_group_owner_negotiation: bool,
}

impl TechProfile {
    /// Wi-Fi Direct, calibrated to Table III / Table IV (see module docs).
    pub fn wifi_direct() -> Self {
        TechProfile {
            technology: D2dTechnology::WifiDirect,
            range_m: 180.0,
            // 132.24 µAh over 3.4 s → 140.02 mA (UE); 122.50 → 129.71 mA.
            discovery_duration: SimDuration::from_millis(3_400),
            discovery_current_initiator: MilliAmps::new(140.02),
            discovery_current_responder: MilliAmps::new(129.71),
            // 63.74 µAh over 1.5 s → 152.98 mA (UE); 60.29 → 144.70 mA.
            connection_duration: SimDuration::from_millis(1_500),
            connection_current_initiator: MilliAmps::new(152.98),
            connection_current_responder: MilliAmps::new(144.70),
            // Send: 0.35 s @ 600 mA + 0.5 s @ 106.23 mA = 263.1 mA·s
            // = 73.09 µAh (Table III forwarding, UE side).
            send_shape: TransferShape {
                spike: SimDuration::from_millis(350),
                spike_current: MilliAmps::new(600.0),
                settle: SimDuration::from_millis(500),
                settle_current: MilliAmps::new(106.23),
            },
            // Receive: 0.3 s @ 700 mA + 0.6 s @ 431.2 mA = 468.7 mA·s
            // = 130.2 µAh (Table IV marginal receive).
            receive_shape: TransferShape {
                spike: SimDuration::from_millis(300),
                spike_current: MilliAmps::new(700.0),
                settle: SimDuration::from_millis(600),
                settle_current: MilliAmps::new(431.2),
            },
            bytes_per_sec: 2_000_000.0,
            reference_bytes: 54,
            idle_current: MilliAmps::new(1.2),
            distance_alpha_per_m: 0.07,
            size_beta: 0.02,
            base_loss_probability: 0.002,
            has_group_owner_negotiation: true,
        }
    }

    /// Bluetooth class 2: cheap but ~10 m range (rejected in §IV-A).
    pub fn bluetooth() -> Self {
        TechProfile {
            technology: D2dTechnology::Bluetooth,
            range_m: 10.0,
            discovery_duration: SimDuration::from_millis(5_120), // inquiry scan
            discovery_current_initiator: MilliAmps::new(55.0),
            discovery_current_responder: MilliAmps::new(40.0),
            connection_duration: SimDuration::from_millis(2_000),
            connection_current_initiator: MilliAmps::new(60.0),
            connection_current_responder: MilliAmps::new(55.0),
            send_shape: TransferShape {
                spike: SimDuration::from_millis(250),
                spike_current: MilliAmps::new(150.0),
                settle: SimDuration::from_millis(300),
                settle_current: MilliAmps::new(60.0),
            },
            receive_shape: TransferShape {
                spike: SimDuration::from_millis(250),
                spike_current: MilliAmps::new(160.0),
                settle: SimDuration::from_millis(350),
                settle_current: MilliAmps::new(70.0),
            },
            bytes_per_sec: 200_000.0,
            reference_bytes: 54,
            idle_current: MilliAmps::new(0.5),
            distance_alpha_per_m: 0.12,
            size_beta: 0.05,
            base_loss_probability: 0.005,
            has_group_owner_negotiation: false,
        }
    }

    /// LTE Direct: ~500 m discovery, negligible scan cost, but requires
    /// operator deployment (§IV-A).
    pub fn lte_direct() -> Self {
        TechProfile {
            technology: D2dTechnology::LteDirect,
            range_m: 500.0,
            discovery_duration: SimDuration::from_millis(640),
            discovery_current_initiator: MilliAmps::new(120.0),
            discovery_current_responder: MilliAmps::new(90.0),
            connection_duration: SimDuration::from_millis(400),
            connection_current_initiator: MilliAmps::new(200.0),
            connection_current_responder: MilliAmps::new(180.0),
            send_shape: TransferShape {
                spike: SimDuration::from_millis(200),
                spike_current: MilliAmps::new(450.0),
                settle: SimDuration::from_millis(200),
                settle_current: MilliAmps::new(150.0),
            },
            receive_shape: TransferShape {
                spike: SimDuration::from_millis(200),
                spike_current: MilliAmps::new(420.0),
                settle: SimDuration::from_millis(250),
                settle_current: MilliAmps::new(140.0),
            },
            bytes_per_sec: 5_000_000.0,
            reference_bytes: 54,
            idle_current: MilliAmps::new(0.8),
            distance_alpha_per_m: 0.004,
            size_beta: 0.01,
            base_loss_probability: 0.001,
            has_group_owner_negotiation: false,
        }
    }

    /// Profile for a technology by name.
    pub fn for_technology(tech: D2dTechnology) -> Self {
        match tech {
            D2dTechnology::WifiDirect => TechProfile::wifi_direct(),
            D2dTechnology::Bluetooth => TechProfile::bluetooth(),
            D2dTechnology::LteDirect => TechProfile::lte_direct(),
        }
    }

    /// Combined energy/size scaling factor for a transfer at `distance_m`
    /// carrying `bytes`.
    pub fn transfer_scale(&self, distance_m: f64, bytes: usize) -> f64 {
        let d = (distance_m - 1.0).max(0.0);
        let size_ratio = (bytes as f64 / self.reference_bytes as f64 - 1.0).max(0.0);
        (1.0 + self.distance_alpha_per_m * d) * (1.0 + self.size_beta * size_ratio)
    }

    /// Probability that one transfer at `distance_m` fails and must be
    /// retried or abandoned. Grows steeply near the edge of range; 1.0
    /// beyond range.
    pub fn loss_probability(&self, distance_m: f64) -> f64 {
        if distance_m > self.range_m {
            return 1.0;
        }
        let edge = (distance_m / self.range_m).powi(4);
        (self.base_loss_probability + 0.25 * edge).min(1.0)
    }

    /// A discovery scan starting at `now` for the given role.
    pub fn discovery(&self, now: SimTime, role: D2dRole) -> D2dActivity {
        let current = match role {
            D2dRole::Initiator => self.discovery_current_initiator,
            D2dRole::Responder => self.discovery_current_responder,
        };
        let mut a = D2dActivity {
            done_at: now + self.discovery_duration,
            ..Default::default()
        };
        a.push(now, self.discovery_duration, current, Phase::D2dDiscovery);
        a
    }

    /// Connection establishment starting at `now` for the given role.
    pub fn connection(&self, now: SimTime, role: D2dRole) -> D2dActivity {
        let current = match role {
            D2dRole::Initiator => self.connection_current_initiator,
            D2dRole::Responder => self.connection_current_responder,
        };
        let mut a = D2dActivity {
            done_at: now + self.connection_duration,
            ..Default::default()
        };
        a.push(now, self.connection_duration, current, Phase::D2dConnection);
        a
    }

    /// The sender-side activity of transferring `bytes` at `distance_m`.
    pub fn send(&self, now: SimTime, bytes: usize, distance_m: f64) -> D2dActivity {
        self.transfer(now, bytes, distance_m, self.send_shape, Phase::D2dSend)
    }

    /// The receiver-side activity of the same transfer.
    pub fn receive(&self, now: SimTime, bytes: usize, distance_m: f64) -> D2dActivity {
        self.transfer(
            now,
            bytes,
            distance_m,
            self.receive_shape,
            Phase::D2dReceive,
        )
    }

    fn transfer(
        &self,
        now: SimTime,
        bytes: usize,
        distance_m: f64,
        shape: TransferShape,
        phase: Phase,
    ) -> D2dActivity {
        let scale = self.transfer_scale(distance_m, bytes);
        // Scale charge by raising the currents; stretch the spike if the
        // payload is big enough to exceed the reference airtime.
        let extra_airtime = if bytes > self.reference_bytes {
            SimDuration::from_secs_f64((bytes - self.reference_bytes) as f64 / self.bytes_per_sec)
        } else {
            SimDuration::ZERO
        };
        let spike = shape.spike + extra_airtime;
        let mut a = D2dActivity {
            done_at: now + spike + shape.settle,
            ..Default::default()
        };
        a.push(now, spike, shape.spike_current * scale, phase);
        a.push(
            now + spike,
            shape.settle,
            shape.settle_current * scale,
            phase,
        );
        a
    }

    /// Teardown (disassociation/deauth frames) when a side leaves a
    /// group: a brief exchange at the connection current. Cheap, but not
    /// free — rapid attach/detach churn pays it every cycle.
    pub fn teardown(&self, now: SimTime, role: D2dRole) -> D2dActivity {
        let current = match role {
            D2dRole::Initiator => self.connection_current_initiator,
            D2dRole::Responder => self.connection_current_responder,
        };
        let duration = SimDuration::from_millis(200);
        let mut a = D2dActivity {
            done_at: now + duration,
            ..Default::default()
        };
        a.push(now, duration, current, Phase::D2dConnection);
        a
    }

    /// Keep-alive draw while a group is connected but idle over
    /// `[from, to)`.
    pub fn idle(&self, from: SimTime, to: SimTime) -> D2dActivity {
        let mut a = D2dActivity {
            done_at: to,
            ..Default::default()
        };
        if let Some(span) = to.checked_since(from) {
            a.push(from, span, self.idle_current, Phase::D2dIdle);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uah(a: &D2dActivity) -> f64 {
        a.charge().as_micro_amp_hours()
    }

    #[test]
    fn wifi_direct_matches_table3() {
        let w = TechProfile::wifi_direct();
        let t0 = SimTime::ZERO;
        assert!((uah(&w.discovery(t0, D2dRole::Initiator)) - 132.24).abs() < 0.5);
        assert!((uah(&w.discovery(t0, D2dRole::Responder)) - 122.50).abs() < 0.5);
        assert!((uah(&w.connection(t0, D2dRole::Initiator)) - 63.74).abs() < 0.5);
        assert!((uah(&w.connection(t0, D2dRole::Responder)) - 60.29).abs() < 0.5);
        assert!((uah(&w.send(t0, 54, 1.0)) - 73.09).abs() < 0.5);
    }

    #[test]
    fn wifi_direct_receive_matches_table4_slope() {
        let w = TechProfile::wifi_direct();
        let per_msg = uah(&w.receive(SimTime::ZERO, 54, 1.0));
        // Table IV: 911.196 µAh / 7 messages ≈ 130.2 µAh each.
        assert!((per_msg - 130.2).abs() < 1.0, "receive = {per_msg}");
    }

    #[test]
    fn transfer_energy_grows_with_distance() {
        let w = TechProfile::wifi_direct();
        let near = uah(&w.send(SimTime::ZERO, 54, 1.0));
        let far = uah(&w.send(SimTime::ZERO, 54, 15.0));
        assert!(far > near * 1.8 && far < near * 2.2, "15 m ≈ 2× 1 m");
    }

    #[test]
    fn transfer_energy_nearly_flat_in_size() {
        let w = TechProfile::wifi_direct();
        let x1 = uah(&w.send(SimTime::ZERO, 54, 1.0));
        let x5 = uah(&w.send(SimTime::ZERO, 270, 1.0));
        assert!(
            x5 < x1 * 1.15,
            "5× payload should stay near-flat: {x1} → {x5}"
        );
        assert!(x5 > x1, "but not literally constant");
    }

    #[test]
    fn loss_probability_shape() {
        let w = TechProfile::wifi_direct();
        assert!(w.loss_probability(1.0) < 0.01);
        assert!(w.loss_probability(w.range_m) > 0.2);
        assert_eq!(w.loss_probability(w.range_m + 1.0), 1.0);
        let mut last = 0.0;
        for d in [1.0, 50.0, 100.0, 150.0, 179.0] {
            let p = w.loss_probability(d);
            assert!(p >= last, "loss must be monotone in distance");
            last = p;
        }
    }

    #[test]
    fn bluetooth_is_cheaper_but_shorter_range() {
        let w = TechProfile::wifi_direct();
        let b = TechProfile::bluetooth();
        assert!(uah(&b.send(SimTime::ZERO, 54, 1.0)) < uah(&w.send(SimTime::ZERO, 54, 1.0)));
        assert!(b.range_m < w.range_m);
    }

    #[test]
    fn lte_direct_has_cheap_discovery_and_long_range() {
        let w = TechProfile::wifi_direct();
        let l = TechProfile::lte_direct();
        assert!(
            uah(&l.discovery(SimTime::ZERO, D2dRole::Initiator))
                < uah(&w.discovery(SimTime::ZERO, D2dRole::Initiator))
        );
        assert!(l.range_m > w.range_m);
    }

    #[test]
    fn teardown_is_brief_and_cheap() {
        let w = TechProfile::wifi_direct();
        let t = w.teardown(SimTime::ZERO, D2dRole::Initiator);
        assert!(uah(&t) < 15.0, "teardown = {} µAh", uah(&t));
        assert_eq!(t.done_at, SimTime::ZERO + SimDuration::from_millis(200));
        // Both roles pay comparable amounts.
        let r = w.teardown(SimTime::ZERO, D2dRole::Responder);
        assert!((uah(&t) - uah(&r)).abs() < 2.0);
    }

    #[test]
    fn idle_keepalive_is_cheap() {
        let w = TechProfile::wifi_direct();
        let idle = w.idle(SimTime::ZERO, SimTime::from_secs(270));
        // One WeChat period of keep-alive must cost far less than one send.
        assert!(uah(&idle) < 100.0, "idle over 270 s = {} µAh", uah(&idle));
        assert_eq!(idle.done_at, SimTime::from_secs(270));
    }

    #[test]
    fn big_payload_stretches_airtime() {
        let w = TechProfile::wifi_direct();
        let small = w.send(SimTime::ZERO, 54, 1.0);
        let big = w.send(SimTime::ZERO, 2_000_054, 1.0);
        assert!(big.done_at > small.done_at + SimDuration::from_millis(900));
    }

    #[test]
    fn for_technology_round_trips() {
        for t in [
            D2dTechnology::WifiDirect,
            D2dTechnology::Bluetooth,
            D2dTechnology::LteDirect,
        ] {
            assert_eq!(TechProfile::for_technology(t).technology, t);
        }
    }

    #[test]
    fn phases_are_tagged_correctly() {
        let w = TechProfile::wifi_direct();
        for (_, seg) in &w.discovery(SimTime::ZERO, D2dRole::Initiator).segments {
            assert_eq!(seg.phase, Phase::D2dDiscovery);
        }
        for (_, seg) in &w.receive(SimTime::ZERO, 54, 1.0).segments {
            assert_eq!(seg.phase, Phase::D2dReceive);
        }
    }
}
