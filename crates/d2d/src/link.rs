//! A stateful pairwise D2D link.
//!
//! [`D2dLink`] ties the per-phase activities of [`TechProfile`] into a
//! lifecycle — establish (discovery + connection), transfer repeatedly,
//! close — and injects the failures the paper's fallback mechanism exists
//! for: distance-dependent transfer loss and hard out-of-range cuts.

use hbr_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::tech::{D2dActivity, D2dRole, TechProfile};

/// Lifecycle state of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Discovery + connection still in progress; ready at the instant.
    Establishing {
        /// When establishment completes.
        ready_at: SimTime,
    },
    /// Group formed; transfers allowed.
    Connected,
    /// Torn down (explicitly or by failure).
    Closed,
}

/// Result of one [`D2dLink::transfer`].
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// Whether the payload arrived.
    pub success: bool,
    /// Energy spent by the sending side (always paid, success or not).
    pub sender: D2dActivity,
    /// Energy spent by the receiving side (empty if the frame was lost
    /// before the receiver woke).
    pub receiver: D2dActivity,
    /// When the attempt finished.
    pub completed_at: SimTime,
}

impl TransferOutcome {
    /// Short result label for metrics (`"ok"` / `"lost"`).
    pub fn result_label(&self) -> &'static str {
        if self.success {
            "ok"
        } else {
            "lost"
        }
    }
}

/// One established (or establishing) D2D pairing between an initiator
/// (UE) and a responder (relay).
///
/// # Examples
///
/// ```
/// use hbr_d2d::{D2dLink, TechProfile};
/// use hbr_sim::{SimRng, SimTime};
///
/// let (mut link, ue_cost, relay_cost) =
///     D2dLink::establish(TechProfile::wifi_direct(), SimTime::ZERO);
/// assert!(ue_cost.charge() > relay_cost.charge()); // initiator pays more
///
/// let ready = link.ready_at().unwrap();
/// let mut rng = SimRng::seed_from(1);
/// let out = link.transfer(ready, 74, 1.0, &mut rng);
/// assert!(out.success);
/// ```
#[derive(Debug, Clone)]
pub struct D2dLink {
    tech: TechProfile,
    state: LinkState,
    /// Interference penalty: extra loss probability added to the
    /// distance model while a fault window degrades this link.
    extra_loss: f64,
    transfers_ok: u64,
    transfers_failed: u64,
}

impl D2dLink {
    /// Starts establishing a link at `now`: a discovery scan followed by
    /// connection setup. Returns the link plus the energy activities of
    /// the initiator (UE) and responder (relay).
    pub fn establish(tech: TechProfile, now: SimTime) -> (D2dLink, D2dActivity, D2dActivity) {
        let mut ue = tech.discovery(now, D2dRole::Initiator);
        let mut relay = tech.discovery(now, D2dRole::Responder);
        let connect_start = ue.done_at;
        let ue_conn = tech.connection(connect_start, D2dRole::Initiator);
        let relay_conn = tech.connection(connect_start, D2dRole::Responder);
        let ready_at = ue_conn.done_at;
        ue.segments.extend(ue_conn.segments);
        ue.done_at = ready_at;
        relay.segments.extend(relay_conn.segments);
        relay.done_at = ready_at;
        (
            D2dLink {
                tech,
                state: LinkState::Establishing { ready_at },
                extra_loss: 0.0,
                transfers_ok: 0,
                transfers_failed: 0,
            },
            ue,
            relay,
        )
    }

    /// Creates a link that is already connected (e.g. reusing a group that
    /// survived from a previous heartbeat period).
    pub fn already_connected(tech: TechProfile) -> D2dLink {
        D2dLink {
            tech,
            state: LinkState::Connected,
            extra_loss: 0.0,
            transfers_ok: 0,
            transfers_failed: 0,
        }
    }

    /// Creates a link whose establishment is in flight and completes at
    /// `ready_at` — for callers that billed the discovery/connection
    /// energy themselves (e.g. when several relays answered one scan).
    pub fn establish_pending(tech: TechProfile, ready_at: SimTime) -> D2dLink {
        D2dLink {
            tech,
            state: LinkState::Establishing { ready_at },
            extra_loss: 0.0,
            transfers_ok: 0,
            transfers_failed: 0,
        }
    }

    /// The technology profile of this link.
    pub fn tech(&self) -> &TechProfile {
        &self.tech
    }

    /// The current lifecycle state (promotes `Establishing` to
    /// `Connected` lazily when queried past its ready instant).
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// When establishment completes, if the link is still establishing.
    pub fn ready_at(&self) -> Option<SimTime> {
        match self.state {
            LinkState::Establishing { ready_at } => Some(ready_at),
            _ => None,
        }
    }

    /// `true` if transfers are possible at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        match self.state {
            LinkState::Establishing { ready_at } => now >= ready_at,
            LinkState::Connected => true,
            LinkState::Closed => false,
        }
    }

    /// Degrades the link: transfers suffer `extra` additional loss
    /// probability (clamped to `[0, 1]`) on top of the distance model
    /// until [`clear_degrade`](Self::clear_degrade). Models an
    /// interference window; fault plans drive this.
    pub fn degrade(&mut self, extra: f64) {
        self.extra_loss = extra.clamp(0.0, 1.0);
    }

    /// Removes any interference penalty.
    pub fn clear_degrade(&mut self) {
        self.extra_loss = 0.0;
    }

    /// The current interference penalty (0 on a healthy link).
    pub fn extra_loss(&self) -> f64 {
        self.extra_loss
    }

    /// Successful transfers so far.
    pub fn transfers_ok(&self) -> u64 {
        self.transfers_ok
    }

    /// Failed transfer attempts so far.
    pub fn transfers_failed(&self) -> u64 {
        self.transfers_failed
    }

    /// Attempts to move `bytes` from initiator to responder while the
    /// devices are `distance_m` apart.
    ///
    /// The sender always pays the transfer energy. On a loss (probability
    /// from [`TechProfile::loss_probability`]) the receiver never wakes
    /// and pays nothing. Moving out of range closes the link.
    ///
    /// # Panics
    ///
    /// Panics if the link is not ready at `now` (closed, or still
    /// establishing).
    pub fn transfer(
        &mut self,
        now: SimTime,
        bytes: usize,
        distance_m: f64,
        rng: &mut SimRng,
    ) -> TransferOutcome {
        assert!(
            self.is_ready(now),
            "transfer on a link that is not ready (state {:?} at {now})",
            self.state
        );
        self.state = LinkState::Connected;

        let sender = self.tech.send(now, bytes, distance_m);
        let out_of_range = distance_m > self.tech.range_m;
        // The degrade penalty only raises the probability of the one
        // draw the healthy path makes, so faulted and clean runs consume
        // the RNG stream identically.
        let loss = (self.tech.loss_probability(distance_m) + self.extra_loss).min(1.0);
        let lost = out_of_range || rng.chance(loss);
        if lost {
            self.transfers_failed += 1;
            if out_of_range {
                self.state = LinkState::Closed;
            }
            let completed_at = sender.done_at;
            return TransferOutcome {
                success: false,
                sender,
                receiver: D2dActivity {
                    segments: Vec::new(),
                    done_at: completed_at,
                },
                completed_at,
            };
        }

        let receiver = self.tech.receive(now, bytes, distance_m);
        let completed_at = sender.done_at.max(receiver.done_at);
        self.transfers_ok += 1;
        TransferOutcome {
            success: true,
            sender,
            receiver,
            completed_at,
        }
    }

    /// Keep-alive charge both sides pay while the group idles over
    /// `[from, to)`: `(initiator, responder)` activities.
    pub fn idle(&self, from: SimTime, to: SimTime) -> (D2dActivity, D2dActivity) {
        (self.tech.idle(from, to), self.tech.idle(from, to))
    }

    /// Tears the link down; further transfers panic.
    pub fn close(&mut self) {
        self.state = LinkState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from(7)
    }

    #[test]
    fn establishment_costs_match_table3_sums() {
        let (link, ue, relay) = D2dLink::establish(TechProfile::wifi_direct(), SimTime::ZERO);
        // UE: 132.24 + 63.74 = 195.98; relay: 122.50 + 60.29 = 182.79.
        assert!((ue.charge().as_micro_amp_hours() - 195.98).abs() < 1.0);
        assert!((relay.charge().as_micro_amp_hours() - 182.79).abs() < 1.0);
        let ready = link.ready_at().unwrap();
        assert_eq!(
            ready,
            SimTime::ZERO + SimDuration::from_millis(3_400) + SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn cannot_transfer_before_ready() {
        let (mut link, _, _) = D2dLink::establish(TechProfile::wifi_direct(), SimTime::ZERO);
        let early = SimTime::from_millis(10);
        assert!(!link.is_ready(early));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            link.transfer(early, 74, 1.0, &mut rng())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn successful_transfer_bills_both_sides() {
        let mut link = D2dLink::already_connected(TechProfile::wifi_direct());
        let out = link.transfer(SimTime::ZERO, 54, 1.0, &mut rng());
        assert!(out.success);
        assert!((out.sender.charge().as_micro_amp_hours() - 73.09).abs() < 0.5);
        assert!((out.receiver.charge().as_micro_amp_hours() - 130.2).abs() < 1.0);
        assert_eq!(link.transfers_ok(), 1);
        assert_eq!(link.transfers_failed(), 0);
    }

    #[test]
    fn out_of_range_transfer_fails_and_closes() {
        let mut link = D2dLink::already_connected(TechProfile::wifi_direct());
        let out = link.transfer(SimTime::ZERO, 54, 500.0, &mut rng());
        assert!(!out.success);
        assert!(
            out.sender.charge().as_micro_amp_hours() > 0.0,
            "sender still pays"
        );
        assert!(out.receiver.segments.is_empty(), "receiver never wakes");
        assert_eq!(link.state(), LinkState::Closed);
        assert!(!link.is_ready(SimTime::from_secs(1)));
    }

    #[test]
    fn loss_rate_tracks_distance_model() {
        let tech = TechProfile::wifi_direct();
        let mut r = rng();
        let trials = 2000;
        let mut failures = 0;
        for _ in 0..trials {
            let mut link = D2dLink::already_connected(tech.clone());
            if !link.transfer(SimTime::ZERO, 54, 170.0, &mut r).success {
                failures += 1;
            }
        }
        let observed = failures as f64 / trials as f64;
        let expected = tech.loss_probability(170.0);
        assert!(
            (observed - expected).abs() < 0.05,
            "observed loss {observed}, model {expected}"
        );
    }

    #[test]
    fn degraded_link_loses_payloads_until_cleared() {
        let mut link = D2dLink::already_connected(TechProfile::wifi_direct());
        link.degrade(1.0);
        assert_eq!(link.extra_loss(), 1.0);
        let out = link.transfer(SimTime::ZERO, 54, 1.0, &mut rng());
        assert!(!out.success, "total interference must lose every payload");
        assert_eq!(
            link.state(),
            LinkState::Connected,
            "interference loses payloads without closing the link"
        );
        link.clear_degrade();
        assert_eq!(link.extra_loss(), 0.0);
        let out = link.transfer(SimTime::from_secs(1), 54, 1.0, &mut rng());
        assert!(out.success, "healthy link at 1 m delivers");
    }

    #[test]
    fn degrade_clamps_to_unit_interval() {
        let mut link = D2dLink::already_connected(TechProfile::wifi_direct());
        link.degrade(7.5);
        assert_eq!(link.extra_loss(), 1.0);
        link.degrade(-3.0);
        assert_eq!(link.extra_loss(), 0.0);
    }

    #[test]
    fn close_prevents_reuse() {
        let mut link = D2dLink::already_connected(TechProfile::wifi_direct());
        link.close();
        assert_eq!(link.state(), LinkState::Closed);
        assert!(!link.is_ready(SimTime::ZERO));
    }

    #[test]
    fn idle_bills_both_sides_equally() {
        let link = D2dLink::already_connected(TechProfile::wifi_direct());
        let (a, b) = link.idle(SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(
            a.charge().as_micro_amp_hours(),
            b.charge().as_micro_amp_hours()
        );
        assert!(a.charge().as_micro_amp_hours() > 0.0);
    }
}
