//! Device-to-device link models: Wi-Fi Direct, Bluetooth, LTE Direct.
//!
//! The paper's prototype uses **Wi-Fi Direct** (§IV-A) because Bluetooth's
//! ~10 m range is too short and LTE Direct is not deployed; this crate
//! models all three so the technique-choice trade-off can be explored as
//! an ablation. A D2D exchange has three billed phases — **discovery**,
//! **connection** (group-owner negotiation + link setup) and
//! **forwarding** (transfer) — whose per-phase charges are calibrated to
//! the paper's Table III (UE vs relay) and Table IV (per-message receive
//! cost), see [`TechProfile::wifi_direct`].
//!
//! Key physical behaviours reproduced here:
//!
//! * D2D transfers are short spikes (Fig. 6) rather than the cellular
//!   promotion-plus-tail plateau (Fig. 7) — no lingering tail states.
//! * Transfer energy grows with **communication distance** (Fig. 12:
//!   beyond some distance the D2D approach loses to cellular) and only
//!   marginally with **message size** (Fig. 13: flat for heartbeat-sized
//!   payloads).
//! * Links fail: the pair can drift out of range, and transfers have a
//!   distance-dependent loss probability — the triggers for the paper's
//!   feedback/fallback mechanism (§III-A).
//!
//! # Examples
//!
//! ```
//! use hbr_d2d::{D2dRole, TechProfile};
//! use hbr_sim::SimTime;
//!
//! let wifi = TechProfile::wifi_direct();
//! let scan = wifi.discovery(SimTime::ZERO, D2dRole::Initiator);
//! // Table III: UE discovery ≈ 132.24 µAh.
//! let uah: f64 = scan
//!     .segments
//!     .iter()
//!     .map(|(_, s)| s.charge().as_micro_amp_hours())
//!     .sum();
//! assert!((uah - 132.24).abs() < 0.5);
//! ```

pub mod group;
pub mod group_net;
pub mod link;
pub mod tech;

pub use group::{negotiate_group_owner, GoIntent, GroupRole};
pub use group_net::{D2dGroup, JoinError, JoinOutcome};
pub use link::{D2dLink, LinkState, TransferOutcome};
pub use tech::{D2dActivity, D2dRole, D2dTechnology, TechProfile};
