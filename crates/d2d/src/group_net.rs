//! Multi-client D2D groups: one group owner serving several members.
//!
//! Wi-Fi Direct organises devices into a *group*: the group owner (GO)
//! acts as a soft access point and up to a handful of clients associate
//! with it. In the framework the relay must always be the GO — that is
//! why it advertises intent 15 and decays it as it fills (§IV-C): a
//! relay that loses the GO negotiation cannot aggregate anything.
//! [`D2dGroup`] models that structure on top of the pairwise
//! [`D2dLink`]s: join/leave membership, negotiation-gated admission and
//! owner-side idle billing shared across members.

use std::collections::BTreeMap;

use hbr_sim::{DeviceId, SimRng, SimTime};

use crate::group::{negotiate_group_owner, GoIntent, GroupRole};
use crate::link::{D2dLink, TransferOutcome};
use crate::tech::{D2dActivity, D2dRole, TechProfile};

/// Why a device could not join a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// The group already serves its maximum number of clients (the
    /// Wi-Fi Direct GO association limit).
    GroupFull,
    /// GO negotiation did not leave the owner in charge — the candidate's
    /// intent was too high, so the group cannot form around this owner.
    NegotiationLost,
    /// The device is already a member.
    AlreadyMember,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JoinError::GroupFull => "group is at its client limit",
            JoinError::NegotiationLost => "owner lost the group-owner negotiation",
            JoinError::AlreadyMember => "device is already a member",
        };
        f.write_str(s)
    }
}

impl std::error::Error for JoinError {}

/// The energy bill of a successful join, per side.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The joining member's discovery + connection activity.
    pub member: D2dActivity,
    /// The owner's responder-side activity for this association.
    pub owner: D2dActivity,
    /// When the member's link becomes usable.
    pub ready_at: SimTime,
}

/// One Wi-Fi Direct group: an owner plus member links.
///
/// # Examples
///
/// ```
/// use hbr_d2d::{D2dGroup, GoIntent, TechProfile};
/// use hbr_sim::{DeviceId, SimRng, SimTime};
///
/// let mut group = D2dGroup::form(TechProfile::wifi_direct(), DeviceId::new(0), 4);
/// let join = group
///     .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
///     .expect("relay wins the negotiation");
///
/// let mut rng = SimRng::seed_from(1);
/// let out = group
///     .transfer_from(DeviceId::new(1), join.ready_at, 74, 1.0, &mut rng)
///     .expect("member is connected");
/// assert!(out.success);
/// ```
#[derive(Debug)]
pub struct D2dGroup {
    tech: TechProfile,
    owner: DeviceId,
    owner_intent: GoIntent,
    max_clients: usize,
    members: BTreeMap<DeviceId, D2dLink>,
}

impl D2dGroup {
    /// Forms an (initially empty) group owned by `owner` accepting at
    /// most `max_clients` members. The owner starts at intent 15.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients` is zero.
    pub fn form(tech: TechProfile, owner: DeviceId, max_clients: usize) -> Self {
        assert!(max_clients > 0, "a group must accept at least one client");
        D2dGroup {
            tech,
            owner,
            owner_intent: GoIntent::MAX,
            max_clients,
            members: BTreeMap::new(),
        }
    }

    /// The owner's device id.
    pub fn owner(&self) -> DeviceId {
        self.owner
    }

    /// The owner's currently advertised intent.
    pub fn owner_intent(&self) -> GoIntent {
        self.owner_intent
    }

    /// Updates the advertised intent (the §IV-C decay as the relay's
    /// buffer fills).
    pub fn set_owner_intent(&mut self, intent: GoIntent) {
        self.owner_intent = intent;
    }

    /// Current member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no members are associated.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when no further members can associate.
    pub fn is_full(&self) -> bool {
        self.members.len() >= self.max_clients
    }

    /// Member ids in id order.
    pub fn members(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.members.keys().copied()
    }

    /// `true` if `device` is currently associated.
    pub fn contains(&self, device: DeviceId) -> bool {
        self.members.contains_key(&device)
    }

    /// Attempts to associate `member` (with its own GO intent) at `now`.
    ///
    /// Runs the GO negotiation first: the owner must stay GO (ties break
    /// to the owner, modelling the relay setting the tie-breaker bit).
    ///
    /// # Errors
    ///
    /// [`JoinError::GroupFull`] when at the client limit,
    /// [`JoinError::NegotiationLost`] when the member's intent beats the
    /// owner's, [`JoinError::AlreadyMember`] on duplicate joins.
    pub fn try_join(
        &mut self,
        member: DeviceId,
        member_intent: GoIntent,
        now: SimTime,
    ) -> Result<JoinOutcome, JoinError> {
        if self.members.contains_key(&member) {
            return Err(JoinError::AlreadyMember);
        }
        if self.is_full() {
            return Err(JoinError::GroupFull);
        }
        if negotiate_group_owner(self.owner_intent, member_intent, true) != GroupRole::GroupOwner {
            return Err(JoinError::NegotiationLost);
        }

        let member_scan = self.tech.discovery(now, D2dRole::Initiator);
        let owner_listen = self.tech.discovery(now, D2dRole::Responder);
        let conn_start = member_scan.done_at;
        let member_conn = self.tech.connection(conn_start, D2dRole::Initiator);
        let owner_conn = self.tech.connection(conn_start, D2dRole::Responder);
        let ready_at = member_conn.done_at;

        let mut member_activity = member_scan;
        member_activity.segments.extend(member_conn.segments);
        member_activity.done_at = ready_at;
        let mut owner_activity = owner_listen;
        owner_activity.segments.extend(owner_conn.segments);
        owner_activity.done_at = ready_at;

        self.members.insert(
            member,
            D2dLink::establish_pending(self.tech.clone(), ready_at),
        );
        Ok(JoinOutcome {
            member: member_activity,
            owner: owner_activity,
            ready_at,
        })
    }

    /// Transfers `bytes` from a member to the owner over the member's
    /// link. Returns [`None`] if the device is not an associated member
    /// or its link is not ready/closed.
    pub fn transfer_from(
        &mut self,
        member: DeviceId,
        now: SimTime,
        bytes: usize,
        distance_m: f64,
        rng: &mut SimRng,
    ) -> Option<TransferOutcome> {
        let link = self.members.get_mut(&member)?;
        if !link.is_ready(now) {
            return None;
        }
        let outcome = link.transfer(now, bytes, distance_m, rng);
        if matches!(link.state(), crate::link::LinkState::Closed) {
            self.members.remove(&member);
        }
        Some(outcome)
    }

    /// Disassociates a member, returning `true` if it was present.
    pub fn leave(&mut self, member: DeviceId) -> bool {
        self.members.remove(&member).is_some()
    }

    /// Group keep-alive over `[from, to)`: the owner beacons once for the
    /// whole group; each member pays its own client keep-alive. Returns
    /// `(owner, per-member)` activities.
    pub fn idle(&self, from: SimTime, to: SimTime) -> (D2dActivity, Vec<(DeviceId, D2dActivity)>) {
        let owner = self.tech.idle(from, to);
        let members = self
            .members
            .keys()
            .map(|id| (*id, self.tech.idle(from, to)))
            .collect();
        (owner, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(max: usize) -> D2dGroup {
        D2dGroup::form(TechProfile::wifi_direct(), DeviceId::new(0), max)
    }

    fn rng() -> SimRng {
        SimRng::seed_from(5)
    }

    #[test]
    fn join_transfer_leave_lifecycle() {
        let mut g = group(4);
        assert!(g.is_empty());
        let join = g
            .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        assert!(g.contains(DeviceId::new(1)));
        assert_eq!(g.len(), 1);
        // Join costs match the pairwise establishment (Table III sums).
        assert!((join.member.charge().as_micro_amp_hours() - 195.98).abs() < 1.0);
        assert!((join.owner.charge().as_micro_amp_hours() - 182.79).abs() < 1.0);

        let out = g
            .transfer_from(DeviceId::new(1), join.ready_at, 54, 1.0, &mut rng())
            .unwrap();
        assert!(out.success);
        assert!(g.leave(DeviceId::new(1)));
        assert!(!g.leave(DeviceId::new(1)));
    }

    #[test]
    fn group_full_rejects() {
        let mut g = group(2);
        g.try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        g.try_join(DeviceId::new(2), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        assert!(g.is_full());
        assert_eq!(
            g.try_join(DeviceId::new(3), GoIntent::MIN, SimTime::ZERO)
                .err(),
            Some(JoinError::GroupFull)
        );
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut g = group(4);
        g.try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            g.try_join(DeviceId::new(1), GoIntent::MIN, SimTime::from_secs(1))
                .err(),
            Some(JoinError::AlreadyMember)
        );
    }

    #[test]
    fn negotiation_gates_admission() {
        let mut g = group(4);
        // A decayed (full) relay advertises 0 and loses to anything... but
        // ties break to the owner, so intent-0 vs intent-0 still admits.
        g.set_owner_intent(GoIntent::MIN);
        assert!(g
            .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .is_ok());
        // A candidate that *demands* ownership is refused.
        assert_eq!(
            g.try_join(DeviceId::new(2), GoIntent::MAX, SimTime::ZERO)
                .err(),
            Some(JoinError::NegotiationLost)
        );
    }

    #[test]
    fn transfer_requires_membership_and_readiness() {
        let mut g = group(4);
        assert!(g
            .transfer_from(DeviceId::new(9), SimTime::ZERO, 54, 1.0, &mut rng())
            .is_none());
        let join = g
            .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        // Before ready_at the link refuses.
        assert!(g
            .transfer_from(DeviceId::new(1), SimTime::ZERO, 54, 1.0, &mut rng())
            .is_none());
        assert!(g
            .transfer_from(DeviceId::new(1), join.ready_at, 54, 1.0, &mut rng())
            .is_some());
    }

    #[test]
    fn out_of_range_transfer_evicts_the_member() {
        let mut g = group(4);
        let join = g
            .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        let out = g
            .transfer_from(DeviceId::new(1), join.ready_at, 54, 10_000.0, &mut rng())
            .unwrap();
        assert!(!out.success);
        assert!(
            !g.contains(DeviceId::new(1)),
            "closed link leaves the group"
        );
    }

    #[test]
    fn idle_bills_owner_once_and_members_each() {
        let mut g = group(4);
        let j1 = g
            .try_join(DeviceId::new(1), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        let _j2 = g
            .try_join(DeviceId::new(2), GoIntent::MIN, SimTime::ZERO)
            .unwrap();
        let (owner, members) = g.idle(
            j1.ready_at,
            j1.ready_at + hbr_sim::SimDuration::from_secs(100),
        );
        assert_eq!(members.len(), 2);
        assert!(owner.charge().as_micro_amp_hours() > 0.0);
        for (_, m) in &members {
            assert_eq!(
                m.charge().as_micro_amp_hours(),
                owner.charge().as_micro_amp_hours()
            );
        }
    }
}
