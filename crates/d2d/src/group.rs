//! Wi-Fi Direct group-owner negotiation.
//!
//! §IV-C: the prototype sets `groupOwnerIntent` to 15 (the maximum) for
//! relays and 0 for UEs, and *"the message scheduling algorithm would
//! reduce groupOwnerIntent proportionally until 0 while relay collects
//! heartbeat messages from connected UE(s)"* — a full relay should stop
//! winning negotiations so new UEs spread to other relays.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Wi-Fi Direct group-owner intent value, `0..=15`.
///
/// # Examples
///
/// ```
/// use hbr_d2d::GoIntent;
///
/// let relay = GoIntent::MAX;
/// let ue = GoIntent::MIN;
/// assert!(relay > ue);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GoIntent(u8);

impl GoIntent {
    /// The minimum intent (never wants to own the group) — UEs.
    pub const MIN: GoIntent = GoIntent(0);
    /// The maximum intent (always wants to own the group) — fresh relays.
    pub const MAX: GoIntent = GoIntent(15);

    /// Creates an intent value.
    ///
    /// # Panics
    ///
    /// Panics if `value > 15` (the Android API range).
    pub fn new(value: u8) -> Self {
        assert!(value <= 15, "groupOwnerIntent must be 0..=15, got {value}");
        GoIntent(value)
    }

    /// The raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The prototype's decay rule: a relay holding `collected` of at most
    /// `capacity` heartbeats advertises `15 × (1 − collected/capacity)`,
    /// reaching 0 when full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn for_relay_fill(collected: usize, capacity: usize) -> GoIntent {
        assert!(capacity > 0, "relay capacity must be positive");
        let remaining = capacity.saturating_sub(collected.min(capacity));
        let scaled = (15.0 * remaining as f64 / capacity as f64).round() as u8;
        GoIntent(scaled.min(15))
    }
}

impl fmt::Display for GoIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "goIntent={}", self.0)
    }
}

/// Outcome of a negotiation for one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupRole {
    /// This side owns the group (acts as the soft AP).
    GroupOwner,
    /// This side joins as a client.
    Client,
}

/// Runs Wi-Fi Direct GO negotiation between two intents.
///
/// Returns the role of the **first** side. The higher intent wins; a tie
/// is broken by `first_wins_tie` (in the real protocol, by a random
/// tie-breaker bit).
///
/// # Examples
///
/// ```
/// use hbr_d2d::{negotiate_group_owner, GoIntent, GroupRole};
///
/// let relay = GoIntent::MAX;
/// let ue = GoIntent::MIN;
/// assert_eq!(negotiate_group_owner(relay, ue, false), GroupRole::GroupOwner);
/// assert_eq!(negotiate_group_owner(ue, relay, true), GroupRole::Client);
/// ```
pub fn negotiate_group_owner(first: GoIntent, second: GoIntent, first_wins_tie: bool) -> GroupRole {
    use std::cmp::Ordering;
    match first.cmp(&second) {
        Ordering::Greater => GroupRole::GroupOwner,
        Ordering::Less => GroupRole::Client,
        Ordering::Equal => {
            if first_wins_tie {
                GroupRole::GroupOwner
            } else {
                GroupRole::Client
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_beats_ue() {
        assert_eq!(
            negotiate_group_owner(GoIntent::MAX, GoIntent::MIN, false),
            GroupRole::GroupOwner
        );
        assert_eq!(
            negotiate_group_owner(GoIntent::MIN, GoIntent::MAX, true),
            GroupRole::Client
        );
    }

    #[test]
    fn ties_use_tiebreaker() {
        let i = GoIntent::new(7);
        assert_eq!(negotiate_group_owner(i, i, true), GroupRole::GroupOwner);
        assert_eq!(negotiate_group_owner(i, i, false), GroupRole::Client);
    }

    #[test]
    fn decay_is_proportional() {
        assert_eq!(GoIntent::for_relay_fill(0, 10), GoIntent::MAX);
        assert_eq!(GoIntent::for_relay_fill(5, 10), GoIntent::new(8)); // 7.5 → 8
        assert_eq!(GoIntent::for_relay_fill(10, 10), GoIntent::MIN);
        assert_eq!(
            GoIntent::for_relay_fill(99, 10),
            GoIntent::MIN,
            "overfull clamps"
        );
    }

    #[test]
    fn decay_is_monotone() {
        let capacity = 7;
        let mut last = GoIntent::MAX;
        for k in 0..=capacity {
            let intent = GoIntent::for_relay_fill(k, capacity);
            assert!(intent <= last, "intent must fall as the buffer fills");
            last = intent;
        }
        assert_eq!(last, GoIntent::MIN);
    }

    #[test]
    #[should_panic(expected = "0..=15")]
    fn out_of_range_intent_panics() {
        GoIntent::new(16);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        GoIntent::for_relay_fill(0, 0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", GoIntent::new(9)), "goIntent=9");
    }
}
