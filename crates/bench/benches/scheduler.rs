//! Criterion benches for Algorithm 1: arrival handling and deadline
//! computation must stay cheap ("a small amount of computation, which is
//! apposite to smartphones", §III-C).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbr_apps::{AppId, Heartbeat, MessageIdGen};
use hbr_core::MessageScheduler;
use hbr_sim::{DeviceId, SimDuration, SimTime};

fn heartbeat(ids: &mut MessageIdGen, at: u64) -> Heartbeat {
    Heartbeat {
        id: ids.next_id(),
        app: AppId::new(0),
        source: DeviceId::new(1),
        seq: 0,
        size: 54,
        created_at: SimTime::from_secs(at),
        expires_at: SimTime::from_secs(at + 810),
    }
}

fn bench_arrivals(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for &batch in &[8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::new("arrival_and_flush", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut scheduler = MessageScheduler::new(
                        batch,
                        SimDuration::from_secs(270),
                        SimDuration::from_secs(5),
                        SimTime::ZERO,
                    );
                    let mut ids = MessageIdGen::new();
                    for i in 0..batch as u64 {
                        let decision = scheduler
                            .on_arrival(SimTime::from_secs(i % 260), heartbeat(&mut ids, i % 260));
                        black_box(decision);
                    }
                    black_box(scheduler.take_batch().len())
                })
            },
        );
    }
    group.finish();
}

fn bench_deadline(c: &mut Criterion) {
    c.bench_function("scheduler/next_deadline_256_buffered", |b| {
        let mut scheduler = MessageScheduler::new(
            1024,
            SimDuration::from_secs(270),
            SimDuration::from_secs(5),
            SimTime::ZERO,
        );
        let mut ids = MessageIdGen::new();
        for i in 0..256u64 {
            scheduler.on_arrival(SimTime::from_secs(i % 260), heartbeat(&mut ids, i % 260));
        }
        b.iter(|| black_box(scheduler.next_deadline()))
    });
}

criterion_group!(benches, bench_arrivals, bench_deadline);
criterion_main!(benches);
