//! Criterion benches over the paper's experiment harnesses themselves:
//! one group per evaluation artifact, so `cargo bench` exercises the
//! exact code paths that regenerate each table and figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbr_apps::AppProfile;
use hbr_baseline::{Original, Strategy, Workload};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use hbr_mobility::{Mobility, Position};
use hbr_sim::SimDuration;

fn bench_fig8_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_energy_sweep");
    for &n in &[1u32, 7] {
        group.bench_with_input(BenchmarkId::new("transmissions", n), &n, |b, &n| {
            b.iter(|| {
                let run = ControlledExperiment::new(ExperimentConfig {
                    transmissions: n,
                    ..ExperimentConfig::default()
                })
                .run();
                black_box(run.system_saving())
            })
        });
    }
    group.finish();
}

fn bench_fig10_multi_ue(c: &mut Criterion) {
    c.bench_function("fig10_relay_with_7_ues", |b| {
        b.iter(|| {
            let run = ControlledExperiment::new(ExperimentConfig {
                ue_count: 7,
                transmissions: 7,
                ..ExperimentConfig::default()
            })
            .run();
            black_box(run.wasted_to_saved_ratio())
        })
    });
}

fn bench_fig15_signaling(c: &mut Criterion) {
    c.bench_function("fig15_signaling_10_periods", |b| {
        b.iter(|| {
            let run = ControlledExperiment::new(ExperimentConfig {
                ue_count: 2,
                transmissions: 10,
                ..ExperimentConfig::default()
            })
            .run();
            black_box(run.signaling_saving())
        })
    });
}

fn bench_strategy_baseline(c: &mut Criterion) {
    c.bench_function("baseline_original_24h", |b| {
        let workload = Workload::heartbeats_only(AppProfile::wechat(), 24 * 3600, 1);
        b.iter(|| black_box(Original.run(&workload).l3_messages))
    });
}

fn bench_world_scenario(c: &mut Criterion) {
    c.bench_function("world_2ue_1relay_3h", |b| {
        b.iter(|| {
            let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 42);
            config.mode = Mode::D2dFramework;
            for (role, x) in [(Role::Relay, 0.0), (Role::Ue, 1.0), (Role::Ue, 2.0)] {
                config.add_device(DeviceSpec {
                    role,
                    apps: vec![AppProfile::wechat()],
                    mobility: Mobility::stationary(Position::new(x, 0.0)),
                    battery_mah: None,
                });
            }
            black_box(Scenario::new(config).run().total_l3)
        })
    });
}

criterion_group!(
    benches,
    bench_fig8_point,
    bench_fig10_multi_ue,
    bench_fig15_signaling,
    bench_strategy_baseline,
    bench_world_scenario
);
criterion_main!(benches);
