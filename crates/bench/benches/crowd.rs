//! Crowd-engine bench: the sharded per-cell engine vs the legacy
//! single-queue `Scenario` over the same fleet.
//!
//! Measures whole runs (1 simulated hour, d2d mode, 10% relays on a
//! 1 000 m square) and records throughput — phone·sim-seconds per
//! wall-second — to `BENCH_crowd.json` at the repository root, so the
//! scaling behaviour is tracked as a build artefact rather than a
//! claim in a commit message.
//!
//! Note the two engines are *different scenarios* by design: the legacy
//! engine matches relays across the whole field, the sharded engine
//! partitions by home cell first. The comparison is engine throughput
//! over the same fleet, not output equivalence (that contract lives in
//! `tests/sharded_crowd.rs`, sharded-vs-sharded).

use std::io::Write as _;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbr_bench::{run_crowd, CrowdConfig};
use hbr_core::fleet::FleetBuilder;
use hbr_core::world::{Mode, Scenario, ScenarioConfig};
use hbr_sim::SimDuration;

const AREA_SIDE_M: f64 = 1_000.0;
const HOURS: u64 = 1;
const SEED: u64 = 7;
const SIZES: [usize; 2] = [2_000, 10_000];

/// The legacy path: every device in one `Scenario`, one event queue.
fn run_legacy(phones: usize) -> u64 {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(HOURS * 3600), SEED);
    config.mode = Mode::D2dFramework;
    for spec in FleetBuilder::new(phones, phones / 10)
        .area_side_m(AREA_SIDE_M)
        .build(SEED)
    {
        config.add_device(spec);
    }
    Scenario::new(config).run().total_l3
}

/// The sharded path: per-cell engines, single worker (same core count
/// as the legacy run, so the comparison isolates the architecture).
fn run_sharded(phones: usize, shards: usize) -> u64 {
    run_crowd(&CrowdConfig {
        phones,
        relays: phones / 10,
        hours: HOURS,
        area_side_m: AREA_SIDE_M,
        seed: SEED,
        push_mins: 0,
        mode: Mode::D2dFramework,
        faults: Default::default(),
        trace_capacity: 0,
        telemetry: false,
        // The legacy comparison run has no reliable-delivery layer, so
        // keep it off here too — the bench isolates engine throughput.
        reliable: false,
        shards: Some(shards),
    })
    .total_l3
}

fn bench_crowd(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowd");
    group.sample_size(10);
    let n = SIZES[0];
    group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
        b.iter(|| black_box(run_legacy(n)))
    });
    group.bench_with_input(BenchmarkId::new("sharded", n), &n, |b, &n| {
        b.iter(|| black_box(run_sharded(n, 1)))
    });
    group.finish();
}

/// Times whole runs with `Instant` and records throughput as JSON.
fn emit_crowd_json(_c: &mut Criterion) {
    let sim_secs = (HOURS * 3600) as f64;
    let mut entries = Vec::new();
    for &n in &SIZES {
        let time_secs = |run: &dyn Fn() -> u64| {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let t0 = Instant::now();
                black_box(run());
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        let legacy_secs = time_secs(&|| run_legacy(n));
        let sharded_secs = time_secs(&|| run_sharded(n, 1));
        let legacy_tput = n as f64 * sim_secs / legacy_secs;
        let sharded_tput = n as f64 * sim_secs / sharded_secs;
        println!(
            "crowd n={n:>6}: legacy {legacy_secs:>7.2} s ({legacy_tput:.3e} ph·s/s)  \
             sharded {sharded_secs:>7.2} s ({sharded_tput:.3e} ph·s/s)"
        );
        entries.push(format!(
            "    {{ \"phones\": {n}, \"legacy_secs\": {legacy_secs:.3}, \
             \"sharded_secs\": {sharded_secs:.3}, \
             \"legacy_throughput\": {legacy_tput:.0}, \
             \"sharded_throughput\": {sharded_tput:.0} }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"bench_crowd\",\n  \"area_side_m\": {AREA_SIDE_M},\n  \
         \"sim_hours\": {HOURS},\n  \"mode\": \"d2d\",\n  \
         \"throughput_unit\": \"phone-sim-seconds per wall-second\",\n  \
         \"note\": \"single worker on a single-core host; shards change the architecture, not the core count\",\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crowd.json");
    let mut file = std::fs::File::create(path).expect("create BENCH_crowd.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_crowd.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_crowd, emit_crowd_json);
criterion_main!(benches);
