//! Criterion benches for the simulation kernel: event queue throughput
//! and the radio state machine — the hot paths of every experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbr_cellular::{CellularRadio, RrcConfig};
use hbr_sim::{SimDuration, SimTime, Simulation};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new();
                for i in 0..n {
                    // Pseudo-random times without Date/rand overhead.
                    let t = (i as u64).wrapping_mul(2654435761) % 1_000_000;
                    sim.schedule_at(SimTime::from_micros(t), i);
                }
                let mut count = 0;
                while let Some(ev) = sim.pop() {
                    count += black_box(ev.event) & 1;
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("event_queue/cancel_half_of_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let ids: Vec<_> = (0..10_000)
                .map(|i| sim.schedule_at(SimTime::from_micros(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            let mut n = 0;
            while sim.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_rrc_state_machine(c: &mut Criterion) {
    c.bench_function("cellular/1k_heartbeat_cycles", |b| {
        b.iter(|| {
            let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
            let mut t = SimTime::ZERO;
            let mut segments = 0usize;
            for _ in 0..1_000 {
                let out = radio.transmit(t, 74);
                segments += out.activity.segments.len();
                t = out.delivered_at + SimDuration::from_secs(270);
            }
            black_box(segments)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cancellation,
    bench_rrc_state_machine
);
criterion_main!(benches);
