//! Neighbourhood-query bench: the uniform-grid index vs the linear scan.
//!
//! One full detection sweep (every device asking "who is within D2D
//! range?") is the hot loop of every crowd scenario. The scan costs
//! O(n²) per sweep; the grid costs O(n · local density). This bench
//! measures both over the same static crowd at n ∈ {100, 1 000, 10 000}
//! and writes the timings — plus the grid's speedup — to
//! `BENCH_spatial.json` at the repository root, so the gain is tracked
//! as a build artefact rather than a claim in a commit message.
//!
//! The crowd is uniform over a 1 000 m square with a 50 m discovery
//! radius: each query disc covers <1% of the area, the regime the
//! stadium scenarios of §V live in.

use std::io::Write as _;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hbr_mobility::{Field, Mobility, Position};
use hbr_sim::{DeviceId, SimRng};

const AREA_SIDE_M: f64 = 1_000.0;
const RADIUS_M: f64 = 50.0;
const SIZES: [usize; 3] = [100, 1_000, 10_000];

fn crowd(n: usize) -> Field {
    let mut rng = SimRng::seed_from(7);
    (0..n)
        .map(|i| {
            let x = rng.range(0.0..AREA_SIDE_M);
            let y = rng.range(0.0..AREA_SIDE_M);
            (
                DeviceId::new(i as u32),
                Mobility::stationary(Position::new(x, y)),
            )
        })
        .collect()
}

/// One full sweep: every device queries its neighbourhood.
fn sweep(field: &Field, n: usize, grid: bool) -> usize {
    let mut found = 0;
    for i in 0..n {
        let id = DeviceId::new(i as u32);
        found += if grid {
            field.neighbours_within(id, RADIUS_M).len()
        } else {
            field.neighbours_within_scan(id, RADIUS_M).len()
        };
    }
    found
}

fn bench_neighbours(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbours");
    for &n in &SIZES {
        let field = crowd(n);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, &n| {
            b.iter(|| black_box(sweep(&field, n, false)))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, &n| {
            b.iter(|| black_box(sweep(&field, n, true)))
        });
    }
    group.finish();
}

/// Times the same sweeps with `Instant` and records them as JSON — the
/// artefact the ≥5× speedup acceptance gate reads.
fn emit_spatial_json(_c: &mut Criterion) {
    let mut entries = Vec::new();
    for &n in &SIZES {
        let field = crowd(n);
        let reps = (20_000 / n).clamp(3, 50);
        let time_ms = |grid: bool| {
            // First call builds the lazy grid cache; keep it out of the
            // steady-state measurement, then take the best of `reps`.
            let mut checksum = sweep(&field, n, grid);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                checksum = checksum.max(sweep(&field, n, grid));
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            black_box(checksum);
            best
        };
        let scan_ms = time_ms(false);
        let grid_ms = time_ms(true);
        let speedup = scan_ms / grid_ms;
        println!(
            "spatial n={n:>6}: scan {scan_ms:>10.3} ms  grid {grid_ms:>8.3} ms  speedup {speedup:>6.1}x"
        );
        entries.push(format!(
            "    {{ \"n\": {n}, \"scan_ms\": {scan_ms:.4}, \"grid_ms\": {grid_ms:.4}, \"speedup\": {speedup:.2} }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"bench_neighbours\",\n  \"area_side_m\": {AREA_SIDE_M},\n  \"radius_m\": {RADIUS_M},\n  \"sweep\": \"all-device neighbours_within vs neighbours_within_scan\",\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Benches run with the package dir as cwd; anchor the artefact at
    // the repository root regardless.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spatial.json");
    let mut file = std::fs::File::create(path).expect("create BENCH_spatial.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_spatial.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_neighbours, emit_spatial_json);
criterion_main!(benches);
