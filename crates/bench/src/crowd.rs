//! The sharded crowd engine: one `Scenario` per base-station cell,
//! stepped in epoch lockstep across worker threads, merged into a
//! single fleet report that is **byte-identical at any shard count**.
//!
//! A single [`Scenario`] is one event queue on one core, which caps
//! `hbr crowd` far below the million-phone populations the paper's
//! city-scale framing implies. This module partitions the fleet by
//! *cell* — a fixed spatial rule that depends only on the deployment
//! area, never on the shard count — and gives every cell its own
//! engine:
//!
//! - its own event queue (a private [`Scenario`]),
//! - its own RNG stream, seeded [`derive_seed`]`(seed, cell_index)` so
//!   no cell ever observes randomness consumed by another (the same
//!   splitmix64 discipline the sweep harness established),
//! - its own telemetry registry and event log,
//! - its own slice of the deployment field (only its devices).
//!
//! Shards are *worker threads over cells*: `--shards S` spreads the
//! cells across `S` threads that advance in lockstep through a fixed
//! number of epoch barriers. At each barrier every cell publishes an
//! [`EpochPulse`] (its cross-shard "message"); one thread folds the
//! pulses **in cell order** into a fleet-level digest, recorded as a
//! `FleetPulse` telemetry event and `hbr_fleet_*` gauges. Because the
//! partition, the per-cell seeds and the fold order are all functions
//! of the scenario alone, the merged report, metrics snapshot and
//! event stream cannot depend on how many threads carried the cells.
//!
//! Determinism rules, in one place:
//!
//! 1. cell membership = initial position on a fixed grid (`area` only);
//! 2. cell seed = `derive_seed(scenario_seed, cell_index)`;
//! 3. every fold — pulses, device rows, metrics, events, traces — runs
//!    in ascending cell order, then stable-sorts by time where a
//!    timeline is expected;
//! 4. nothing a worker computes ever feeds back into another cell's
//!    dynamics mid-epoch.

use std::collections::BTreeMap;
use std::sync::{Barrier, Mutex};
use std::thread;

use hbr_core::fleet::FleetBuilder;
use hbr_core::world::{DeviceSpec, EpochPulse, Mode, Scenario, ScenarioConfig, ScenarioReport};
use hbr_sim::fault::FaultPlan;
use hbr_sim::telemetry::{EventRecord, MetricsRegistry, TelemetryEvent};
use hbr_sim::{DeviceId, SimDuration, SimTime};

use crate::sweep::{derive_seed, sweep_threads};

/// Nominal base-station cell side: the fleet is partitioned on a
/// `ceil(area / 100 m)`² grid. The default 40 m crowd area stays a
/// single cell (identical topology to the unsharded engine); a
/// city-scale kilometre square becomes a 10×10 grid of cells.
pub const NOMINAL_CELL_SIDE_M: f64 = 100.0;

/// Epoch barriers per run. Fixed — the barrier schedule is part of the
/// deterministic contract, so it must not depend on shards or cores.
pub const EPOCHS: u64 = 8;

/// Everything `hbr crowd` needs to run one mode through the sharded
/// engine.
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// Total phones in the fleet.
    pub phones: usize,
    /// Volunteer relays among them.
    pub relays: usize,
    /// Scenario length in hours.
    pub hours: u64,
    /// Deployment area side, metres.
    pub area_side_m: f64,
    /// Scenario seed (per-cell engines derive their streams from it).
    pub seed: u64,
    /// Mean minutes between mobile-terminated pushes (0 disables).
    pub push_mins: u64,
    /// Which system to run.
    pub mode: Mode,
    /// Deterministic fault schedule; global faults reach every cell,
    /// device-targeted faults are routed to the owning cell.
    pub faults: FaultPlan,
    /// Per-cell trace ring capacity (0 disables tracing).
    pub trace_capacity: usize,
    /// Record metrics and events.
    pub telemetry: bool,
    /// Run the reliable-delivery layer in every cell (see
    /// [`hbr_core::delivery`]). Crowd runs default this on — the fleet
    /// digest is never pinned across releases, and the delivery SLO is
    /// what chaos runs are judged on.
    pub reliable: bool,
    /// Worker threads ([`None`] = auto: sweep threads capped by the
    /// cell count).
    pub shards: Option<usize>,
}

/// Cells per axis for a deployment area.
pub fn cell_grid(area_side_m: f64) -> usize {
    ((area_side_m / NOMINAL_CELL_SIDE_M).ceil() as usize).max(1)
}

/// The cell a position belongs to on a `k`×`k` grid over the area.
fn cell_of(x: f64, y: f64, area_side_m: f64, k: usize) -> usize {
    let tile = area_side_m / k as f64;
    let clamp = |v: f64| ((v / tile) as usize).min(k - 1);
    clamp(y) * k + clamp(x)
}

/// The shard count an unspecified `--shards` resolves to: the sweep
/// harness's thread count (`RAYON_NUM_THREADS` / `HBR_THREADS` /
/// available parallelism), capped by the number of populated cells.
pub fn auto_shards(cells: usize) -> usize {
    sweep_threads().clamp(1, cells.max(1))
}

/// One populated cell: its engine, and the map from cell-local device
/// indices back to fleet-global ones.
struct Cell {
    scenario: Option<Scenario>,
    report: Option<ScenarioReport>,
    global_ids: Vec<u32>,
}

/// What the barrier leader accumulates across epochs.
struct FleetLog {
    metrics: MetricsRegistry,
    events: Vec<EventRecord>,
}

/// Runs one crowd mode through the sharded engine and merges the
/// per-cell results into a single fleet report. The output is a pure
/// function of the config — the shard count only chooses how many
/// threads carry the cells.
pub fn run_crowd(config: &CrowdConfig) -> ScenarioReport {
    let duration = SimDuration::from_secs(config.hours * 3600);
    let fleet = FleetBuilder::new(config.phones, config.relays)
        .area_side_m(config.area_side_m)
        .build(config.seed);
    let k = cell_grid(config.area_side_m);

    // Partition rule: a device lives in the cell its *initial* position
    // falls in, forever (home-cell D2D; wanderers that stray simply fail
    // range checks and fall back to cellular, same as strangers in the
    // unsharded engine). Membership depends only on (fleet, area).
    let homes: Vec<usize> = fleet
        .iter()
        .map(|spec| {
            let p = spec.mobility.position();
            cell_of(p.x, p.y, config.area_side_m, k)
        })
        .collect();
    let mut members: BTreeMap<usize, Vec<(usize, &DeviceSpec)>> = BTreeMap::new();
    for (i, spec) in fleet.iter().enumerate() {
        members.entry(homes[i]).or_default().push((i, spec));
    }

    // Build every populated cell's private engine, in cell order.
    let mut cells: Vec<Cell> = Vec::with_capacity(members.len());
    for (&cell_index, devices) in &members {
        let mut cell_config = ScenarioConfig::new(duration, derive_seed(config.seed, cell_index));
        cell_config.mode = config.mode;
        cell_config.trace_capacity = config.trace_capacity;
        cell_config.telemetry = config.telemetry;
        cell_config.reliable_delivery = config.reliable;
        // Stamp provenance so an invariant panic inside this cell names
        // the (seed, cell) pair that reproduces it in isolation.
        cell_config.cell = Some(cell_index);
        if config.push_mins > 0 {
            cell_config.push_interval = Some(SimDuration::from_secs(config.push_mins * 60));
        }
        // Route the fault plan: global faults are broadcast to every
        // cell (each reports its own injection), device-targeted faults
        // go to the owning cell with the id translated to cell-local.
        // Targets outside the fleet are dropped.
        let local_of: BTreeMap<usize, u32> = devices
            .iter()
            .enumerate()
            .map(|(local, (global, _))| (*global, local as u32))
            .collect();
        for event in config.faults.events() {
            let kind = match event.kind.device() {
                None => Some(event.kind),
                Some(target) => {
                    let global = target.index() as usize;
                    if homes.get(global) == Some(&cell_index) {
                        Some(retarget(event.kind, DeviceId::new(local_of[&global])))
                    } else {
                        None
                    }
                }
            };
            if let Some(kind) = kind {
                cell_config.faults.schedule(event.at, kind);
            }
        }
        let mut global_ids = Vec::with_capacity(devices.len());
        for (global, spec) in devices {
            global_ids.push(*global as u32);
            cell_config.add_device((*spec).clone());
        }
        cells.push(Cell {
            scenario: Some(Scenario::new(cell_config)),
            report: None,
            global_ids,
        });
    }

    let cell_count = cells.len();
    let shards = config
        .shards
        .unwrap_or_else(|| auto_shards(cell_count))
        .clamp(1, cell_count.max(1));

    // Epoch boundaries on the microsecond grid — integer math (widened
    // so city-scale horizons cannot overflow), so every shard count
    // sees the exact same barrier times; the last lands on the horizon.
    let total_us = duration.as_micros();
    let boundaries: Vec<SimTime> = (1..=EPOCHS)
        .map(|e| {
            let us = (u128::from(total_us) * u128::from(e) / u128::from(EPOCHS)) as u64;
            SimTime::ZERO + SimDuration::from_micros(us)
        })
        .collect();

    let pulses: Mutex<Vec<EpochPulse>> = Mutex::new(vec![EpochPulse::default(); cell_count]);
    let fleet_log = Mutex::new(FleetLog {
        metrics: MetricsRegistry::enabled(),
        events: Vec::new(),
    });

    // Contiguous chunks of cells per worker; the chunk layout only
    // affects which thread runs a cell, never the cell's behaviour.
    // The barrier must match the worker count, which ceil-division can
    // leave below the requested shard count.
    let chunk = cell_count.div_ceil(shards);
    let workers = cell_count.div_ceil(chunk);
    let barrier = Barrier::new(workers);
    thread::scope(|scope| {
        for (chunk_index, worker_cells) in cells.chunks_mut(chunk).enumerate() {
            let base = chunk_index * chunk;
            let pulses = &pulses;
            let fleet_log = &fleet_log;
            let barrier = &barrier;
            let boundaries = &boundaries;
            let telemetry = config.telemetry;
            scope.spawn(move || {
                for (epoch, &limit) in boundaries.iter().enumerate() {
                    for (offset, cell) in worker_cells.iter_mut().enumerate() {
                        let scenario = cell.scenario.as_mut().expect("cell still running");
                        scenario.run_until(limit);
                        pulses.lock().expect("pulse lock")[base + offset] = scenario.pulse();
                    }
                    let folded = barrier.wait().is_leader();
                    if folded {
                        let snapshot = pulses.lock().expect("pulse lock").clone();
                        let mut fleet = EpochPulse::default();
                        for pulse in &snapshot {
                            fleet.absorb(pulse);
                        }
                        if telemetry {
                            let mut log = fleet_log.lock().expect("fleet lock");
                            log.metrics
                                .set_gauge("hbr_fleet_forwards", fleet.forwards as f64);
                            log.metrics
                                .set_gauge("hbr_fleet_fallbacks", fleet.fallbacks as f64);
                            log.metrics
                                .set_gauge("hbr_fleet_outage_queued", fleet.outage_queued as f64);
                            log.metrics.set_gauge("hbr_fleet_l3", fleet.l3 as f64);
                            log.metrics
                                .set_gauge("hbr_fleet_delivered", fleet.delivered as f64);
                            log.metrics
                                .set_gauge("hbr_fleet_retries", fleet.retries as f64);
                            log.metrics.incr("hbr_fleet_epochs_total");
                            log.events.push(EventRecord {
                                time: limit,
                                event: TelemetryEvent::FleetPulse {
                                    epoch: epoch as u32,
                                    cells: snapshot.len() as u32,
                                    forwards: fleet.forwards,
                                    fallbacks: fleet.fallbacks,
                                    outage_queued: fleet.outage_queued,
                                    l3: fleet.l3,
                                    delivered: fleet.delivered,
                                    retries: fleet.retries,
                                },
                            });
                        }
                    }
                    // Second barrier: nobody starts the next epoch until
                    // the fold has read this epoch's pulses.
                    barrier.wait();
                }
                for cell in worker_cells.iter_mut() {
                    let scenario = cell.scenario.take().expect("cell still running");
                    cell.report = Some(scenario.complete());
                }
            });
        }
    });

    let fleet_log = fleet_log.into_inner().expect("fleet lock");
    merge_reports(cells, fleet_log, config.telemetry)
}

/// Retargets a device-scoped fault at a cell-local id.
fn retarget(kind: hbr_sim::fault::FaultKind, local: DeviceId) -> hbr_sim::fault::FaultKind {
    use hbr_sim::fault::FaultKind::*;
    match kind {
        LinkDrop { d2d_down_for, .. } => LinkDrop {
            device: local,
            d2d_down_for,
        },
        LinkDegrade {
            extra_loss,
            duration,
            ..
        } => LinkDegrade {
            device: local,
            extra_loss,
            duration,
        },
        RelayDeparture { rejoin_after, .. } => RelayDeparture {
            device: local,
            rejoin_after,
        },
        PayloadLoss {
            probability,
            duration,
            ..
        } => PayloadLoss {
            device: local,
            probability,
            duration,
        },
        global @ (CellularOutage { .. } | DiscoveryBlackout { .. }) => global,
    }
}

/// Folds the finished cells (in cell order) plus the fleet log into one
/// report shaped exactly like an unsharded [`ScenarioReport`].
fn merge_reports(cells: Vec<Cell>, fleet_log: FleetLog, telemetry: bool) -> ScenarioReport {
    let mut reports: Vec<(Vec<u32>, ScenarioReport)> = cells
        .into_iter()
        .map(|c| (c.global_ids, c.report.expect("cell finished")))
        .collect();

    let metrics = if telemetry {
        let fleet_snapshot = fleet_log.metrics.snapshot();
        crate::merge_snapshots(
            reports
                .iter()
                .map(|(_, r)| &r.metrics)
                .chain(std::iter::once(&fleet_snapshot)),
        )
    } else {
        Default::default()
    };

    let mut merged = ScenarioReport {
        devices: Vec::new(),
        total_l3: 0,
        total_rrc: 0,
        delivered: 0,
        rejected_expired: 0,
        duplicates: 0,
        offline_secs: 0.0,
        pushes_delivered: 0,
        pushes_missed: 0,
        total_energy_uah: 0.0,
        trace: Vec::new(),
        trace_dropped: 0,
        metrics,
        events: Vec::new(),
        delivery: None,
    };

    for (global_ids, report) in &mut reports {
        merged.total_l3 += report.total_l3;
        merged.total_rrc += report.total_rrc;
        merged.delivered += report.delivered;
        merged.rejected_expired += report.rejected_expired;
        merged.duplicates += report.duplicates;
        merged.offline_secs += report.offline_secs;
        merged.pushes_delivered += report.pushes_delivered;
        merged.pushes_missed += report.pushes_missed;
        merged.total_energy_uah += report.total_energy_uah;
        merged.trace_dropped += report.trace_dropped;
        if let Some(cell_delivery) = &report.delivery {
            merged
                .delivery
                .get_or_insert_with(Default::default)
                .absorb(cell_delivery);
        }
        merged.trace.append(&mut report.trace);
        for (row, mut device_report) in report.devices.drain(..).enumerate() {
            device_report.device = DeviceId::new(global_ids[row]);
            merged.devices.push(device_report);
        }
        for mut record in report.events.drain(..) {
            record
                .event
                .remap_devices(|local| global_ids[local as usize]);
            merged.events.push(record);
        }
    }
    merged.events.extend(fleet_log.events);

    // Stable sorts: equal timestamps keep cell order, so the merged
    // timeline is a pure function of the scenario.
    merged.devices.sort_by_key(|d| d.device.index());
    merged.events.sort_by_key(|r| r.time);
    merged.trace.sort_by_key(|t| t.time);
    merged
}
