//! Table I — proportion of heartbeats in popular apps.
//!
//! The paper summarises prior traffic studies: roughly half of the
//! messages popular IM apps send are heartbeats. We regenerate the table
//! by running each app's calibrated traffic generator for a simulated
//! week and measuring the heartbeat share of the resulting trace.

use hbr_apps::{AppProfile, TrafficGenerator};
use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_sim::{DeviceId, SimRng, SimTime};

fn main() {
    let horizon = SimTime::from_secs(28 * 24 * 3600);
    let mut rows = Vec::new();
    let mut all_ok = true;

    for app in AppProfile::paper_apps() {
        let mut generator = TrafficGenerator::new(DeviceId::new(0), app.clone());
        let mut rng = SimRng::seed_from(2017);
        let trace = generator.trace_until(horizon, &mut rng);
        let measured = TrafficGenerator::heartbeat_share(&trace);
        let paper = app.heartbeat_share;
        all_ok &= (measured - paper).abs() < 0.02;
        rows.push(vec![
            app.name.clone(),
            pct(paper),
            pct(measured),
            trace.len().to_string(),
            f((measured - paper).abs() * 100.0, 2),
        ]);
    }

    print_table(
        "Table I — proportion of heartbeats in app messages (4 simulated weeks)",
        &["App", "Paper", "Measured", "Messages", "|Δ| (pp)"],
        &rows,
    );
    write_csv(
        "table1",
        &["app", "paper", "measured", "messages", "delta_pp"],
        &rows,
    )
    .expect("write results/table1.csv");

    println!("\nShape checks:");
    check(
        "every app within 2 percentage points of Table I",
        all_ok,
        "see table",
    );
    check(
        "heartbeats are roughly half of all messages",
        rows.iter().all(|r| {
            let measured: f64 = r[2].trim_end_matches('%').parse().unwrap();
            (40.0..70.0).contains(&measured)
        }),
        "40–70% band",
    );
}
