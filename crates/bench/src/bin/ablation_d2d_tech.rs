//! Ablation — the choice of D2D technique (§IV-A).
//!
//! The paper picks Wi-Fi Direct over Bluetooth (too short a range) and
//! LTE Direct (not deployed). We run the controlled bench on all three
//! models at a near distance, then probe each at 15 m to expose
//! Bluetooth's range failure, quantifying the §IV-A argument.

use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_core::config::RadioStack;
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_d2d::{D2dTechnology, TechProfile};

fn run_with(tech: TechProfile, distance_m: f64) -> hbr_core::experiment::ExperimentRun {
    ControlledExperiment::new(ExperimentConfig {
        ue_count: 1,
        transmissions: 7,
        distance_m,
        stack: RadioStack {
            d2d: tech,
            ..RadioStack::default()
        },
        ..ExperimentConfig::default()
    })
    .run()
}

fn main() {
    let techs = [
        D2dTechnology::WifiDirect,
        D2dTechnology::Bluetooth,
        D2dTechnology::LteDirect,
    ];

    let mut rows = Vec::new();
    for tech in techs {
        let profile = TechProfile::for_technology(tech);
        let range = profile.range_m;
        let near = run_with(profile.clone(), 1.0);
        let far = run_with(profile, 15.0);
        rows.push(vec![
            format!("{tech:?}"),
            f(range, 0),
            f(near.ue_energy(), 0),
            pct(near.system_saving()),
            far.d2d_failures.to_string(),
            pct(far.system_saving()),
        ]);
    }

    print_table(
        "D2D technique ablation (7 forwards; near = 1 m, far = 15 m)",
        &[
            "Technique",
            "Range m",
            "UE µAh @1m",
            "Sys saving @1m",
            "Failures @15m",
            "Sys saving @15m",
        ],
        &rows,
    );
    write_csv(
        "ablation_d2d_tech",
        &[
            "tech",
            "range_m",
            "ue_uah_1m",
            "saving_1m",
            "failures_15m",
            "saving_15m",
        ],
        &rows,
    )
    .expect("write csv");

    println!("\nShape checks:");
    check(
        "Bluetooth is the most energy-frugal at 1 m",
        {
            let bt: f64 = rows[1][2].parse().unwrap();
            let wifi: f64 = rows[0][2].parse().unwrap();
            bt < wifi
        },
        "low-power radio",
    );
    check(
        "but Bluetooth degrades near its 10 m range edge (§IV-A)",
        {
            let bt_fail: u64 = rows[1][4].parse().unwrap();
            let wifi_fail: u64 = rows[0][4].parse().unwrap();
            bt_fail > wifi_fail
        },
        format!("failures at 15 m: BT {} vs WiFi {}", rows[1][4], rows[0][4]),
    );
    check(
        "Wi-Fi Direct keeps its full saving at the paper's 15 m",
        {
            let s: f64 = rows[0][5].trim_end_matches('%').parse().unwrap();
            s > 10.0
        },
        rows[0][5].clone(),
    );
    check(
        "LTE Direct would be even better where deployed",
        {
            let lte: f64 = rows[2][3].trim_end_matches('%').parse().unwrap();
            let wifi: f64 = rows[0][3].trim_end_matches('%').parse().unwrap();
            lte >= wifi
        },
        format!("{} vs {}", rows[2][3], rows[0][3]),
    );
}
