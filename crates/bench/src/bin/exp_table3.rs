//! Table III — energy consumption in different phases (UE vs relay).
//!
//! The paper measures one relay + one UE at 1 m exchanging one standard
//! heartbeat and attributes the charge to the discovery, connection and
//! forwarding phases. We run the identical controlled experiment and
//! read the per-phase totals off the energy meters.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_energy::PhaseGroup;

fn main() {
    let run = ControlledExperiment::new(ExperimentConfig {
        ue_count: 1,
        transmissions: 1,
        distance_m: 1.0,
        ..ExperimentConfig::default()
    })
    .run();

    // Paper values, µAh (Table III).
    let paper = [
        ("Discovery", 132.24, 122.50),
        ("Connection", 63.74, 60.29),
        ("Forwarding", 73.09, 132.45),
    ];
    let groups = [
        PhaseGroup::Discovery,
        PhaseGroup::Connection,
        PhaseGroup::Forwarding,
    ];

    let mut rows = Vec::new();
    let mut ok = true;
    for ((label, paper_ue, paper_relay), group) in paper.iter().zip(groups) {
        let ue = run.ue_phase(group).as_micro_amp_hours();
        // The relay's Forwarding row in Table III covers its D2D receive
        // work; its aggregated *cellular* send is reported separately in
        // the system-level figures, so exclude the Cellular group here.
        let relay = run.relay_phase(group).as_micro_amp_hours();
        ok &= (ue - paper_ue).abs() / paper_ue < 0.05;
        rows.push(vec![
            (*label).to_string(),
            f(*paper_ue, 2),
            f(ue, 2),
            f(*paper_relay, 2),
            f(relay, 2),
        ]);
    }

    print_table(
        "Table III — energy per phase, µAh (1 relay + 1 UE, 1 m, one forward)",
        &["Phase", "UE paper", "UE ours", "Relay paper", "Relay ours"],
        &rows,
    );
    write_csv(
        "table3",
        &["phase", "ue_paper", "ue_ours", "relay_paper", "relay_ours"],
        &rows,
    )
    .expect("write results/table3.csv");

    println!("\nShape checks:");
    check("UE phases within 5% of Table III", ok, "calibrated");
    check(
        "discovery+connection dominate a single-forward session",
        run.ue_phase(PhaseGroup::Discovery).as_micro_amp_hours()
            + run.ue_phase(PhaseGroup::Connection).as_micro_amp_hours()
            > run.ue_phase(PhaseGroup::Forwarding).as_micro_amp_hours(),
        "establishment > one transfer (the paper's energy-efficiency caveat)",
    );
}
