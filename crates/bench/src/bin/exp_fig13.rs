//! Fig. 13 — energy consumption vs message size.
//!
//! Heartbeats are tiny, so the paper scales the 54 B standard payload
//! 1×–5× and finds energy "stays almost constant" for every party. We
//! run the same sweep.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};

fn main() {
    let transmissions = 4u32;
    let mut rows = Vec::new();
    let mut ue_series = Vec::new();
    let mut relay_series = Vec::new();

    for multiple in 1..=5usize {
        let size = 54 * multiple;
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count: 1,
            transmissions,
            distance_m: 1.0,
            message_size: size,
            ..ExperimentConfig::default()
        })
        .run();
        ue_series.push(run.ue_energy());
        relay_series.push(run.relay_energy());
        rows.push(vec![
            format!("{multiple}X ({size}B)"),
            f(run.ue_energy(), 0),
            f(run.relay_energy(), 0),
            f(run.original_device_energy(), 0),
        ]);
    }

    print_table(
        "Fig. 13 — energy (µAh) vs message size (4 forwards, 1 m)",
        &["Size", "UE", "Relay", "Original/dev"],
        &rows,
    );
    write_csv(
        "fig13",
        &["size", "ue_uah", "relay_uah", "original_uah"],
        &rows,
    )
    .expect("write results/fig13.csv");

    let ue_spread = (ue_series.last().unwrap() - ue_series[0]) / ue_series[0];
    let relay_spread = (relay_series.last().unwrap() - relay_series[0]) / relay_series[0];
    println!("\nShape checks:");
    check(
        "UE energy ≈ constant across 1×–5× payloads",
        ue_spread.abs() < 0.12,
        format!("spread {:.1}%", ue_spread * 100.0),
    );
    check(
        "relay energy ≈ constant across 1×–5× payloads",
        relay_spread.abs() < 0.12,
        format!("spread {:.1}%", relay_spread * 100.0),
    );
    check(
        "but not literally flat (per-byte cost exists)",
        ue_series.last() > ue_series.first(),
        "monotone increase",
    );
}
