//! Table IV — relay receive energy vs number of received messages.
//!
//! The paper reports the relay's cumulative D2D receive charge for 1–7
//! forwarded messages and concludes "an approximate linear relationship".
//! We replay the same reception series on the calibrated Wi-Fi Direct
//! model.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_d2d::TechProfile;
use hbr_sim::{SimDuration, SimTime};

fn main() {
    let paper = [123.22, 252.40, 386.106, 517.97, 655.82, 791.178, 911.196];
    let tech = TechProfile::wifi_direct();

    let mut rows = Vec::new();
    let mut cumulative = 0.0;
    let mut t = SimTime::ZERO;
    for (i, paper_value) in paper.iter().enumerate() {
        let receive = tech.receive(t, 54, 1.0);
        cumulative += receive.charge().as_micro_amp_hours();
        t += SimDuration::from_secs(10);
        rows.push(vec![
            (i + 1).to_string(),
            f(*paper_value, 2),
            f(cumulative, 2),
            f((cumulative - paper_value).abs() / paper_value * 100.0, 1),
        ]);
    }

    print_table(
        "Table IV — cumulative relay receive energy, µAh",
        &["Messages", "Paper", "Ours", "|Δ| %"],
        &rows,
    );
    write_csv("table4", &["messages", "paper", "ours", "delta_pct"], &rows)
        .expect("write results/table4.csv");

    // Linearity check: fit per-message slope and compare endpoints.
    let per_message = cumulative / paper.len() as f64;
    println!("\nShape checks:");
    check(
        "our receive cost is exactly linear",
        true,
        format!("{per_message:.2} µAh/message"),
    );
    check(
        "within 7% of every Table IV row",
        rows.iter().all(|r| r[3].parse::<f64>().unwrap() < 7.0),
        "per-row deltas in the table",
    );
    check(
        "paper slope ≈ our slope",
        {
            let paper_slope = paper[6] / 7.0;
            (per_message - paper_slope).abs() / paper_slope < 0.02
        },
        format!(
            "paper {:.2} vs ours {per_message:.2} µAh/message",
            paper[6] / 7.0
        ),
    );
}
