//! Extension — related-work strategy comparison (§I / §VI).
//!
//! Runs every strategy the paper positions itself against over the same
//! mixed WeChat workload and prints the trade-off table: energy,
//! signaling, and the user-visible presence damage each one causes.

use hbr_apps::AppProfile;
use hbr_baseline::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, StrategyOutcome,
    Workload,
};
use hbr_bench::{check, f, print_table, write_csv};
use hbr_sim::SimDuration;

fn row(outcome: &StrategyOutcome) -> Vec<String> {
    vec![
        outcome.name.clone(),
        f(outcome.device_energy_uah, 0),
        outcome.l3_messages.to_string(),
        outcome.rrc_connections.to_string(),
        outcome.cellular_transmissions.to_string(),
        f(outcome.max_presence_gap_secs, 0),
        f(outcome.offline_secs, 0),
    ]
}

fn main() {
    let workload = Workload::mixed(AppProfile::wechat(), 24 * 3600, 2017);

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(Original),
        Box::new(ExtendedPeriod { factor: 2 }),
        Box::new(ExtendedPeriod { factor: 4 }),
        Box::new(Piggyback {
            window: SimDuration::from_secs(120),
        }),
        Box::new(FastDormancy),
        Box::new(D2dForwarding::default()),
    ];

    let outcomes: Vec<StrategyOutcome> = strategies.iter().map(|s| s.run(&workload)).collect();
    let rows: Vec<Vec<String>> = outcomes.iter().map(row).collect();

    print_table(
        "Strategy comparison — 24 h mixed WeChat workload, one device",
        &[
            "Strategy",
            "Energy µAh",
            "L3 msgs",
            "RRC conns",
            "Cell TXs",
            "Max gap s",
            "Offline s",
        ],
        &rows,
    );
    write_csv(
        "strategies",
        &[
            "strategy",
            "energy_uah",
            "l3",
            "rrc",
            "cell_tx",
            "max_gap_s",
            "offline_s",
        ],
        &rows,
    )
    .expect("write results/strategies.csv");

    let original = &outcomes[0];
    let x4 = &outcomes[2];
    let d2d = outcomes.last().unwrap();
    println!("\nShape checks:");
    check(
        "D2D forwarding has the lowest signaling of all safe strategies",
        outcomes
            .iter()
            .filter(|o| o.offline_secs == 0.0)
            .all(|o| d2d.l3_messages <= o.l3_messages),
        format!("{} messages", d2d.l3_messages),
    );
    check(
        "D2D forwarding saves energy without going offline",
        d2d.device_energy_uah < original.device_energy_uah && d2d.offline_secs == 0.0,
        format!(
            "{} vs {} µAh",
            f(d2d.device_energy_uah, 0),
            f(original.device_energy_uah, 0)
        ),
    );
    check(
        "aggressive period extension knocks the session offline",
        x4.offline_secs > 0.0,
        format!("{} s offline at ×4", f(x4.offline_secs, 0)),
    );
    check(
        "every strategy trades along a different axis (no free lunch)",
        outcomes.iter().all(|o| {
            o.name == "d2d-forwarding" || o.offline_secs > 0.0 || o.l3_messages >= d2d.l3_messages
        }),
        "table above",
    );
}
