//! Ablation — delay tolerance: the expiry clause vs the delegation
//! policy.
//!
//! §III-C worries that "excessive delay caused by the proposed framework
//! might make the heartbeat messages expired", and §VII restricts the
//! framework to messages that "are delay-tolerant". This ablation pulls
//! those two safety mechanisms apart using a presence-critical class
//! whose expiration (160 s) is *shorter* than the relay period (270 s):
//!
//! * **full framework** — the UE's delegation policy refuses to hand
//!   such tight messages to a relay at all; they go straight over
//!   cellular and presence is perfect.
//! * **no delegation policy** — messages are forwarded anyway;
//!   Algorithm 1's expiry clause keeps each *individually* fresh, but
//!   the delivery-delay jitter between early (expiry-forced) and late
//!   (period-end) flushes stretches inter-refresh gaps past the server
//!   timer: sessions flap even though nothing ever expires.
//! * **neither mechanism** — relays hold everything to the period end;
//!   now messages also arrive stale.
//!
//! The finding sharpens the paper: "delay-tolerant" must mean
//! *expiration ≥ relay period + slack*, not merely "has an expiration".

use hbr_apps::profile::AppId;
use hbr_apps::AppProfile;
use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport};
use hbr_mobility::{Mobility, Position};
use hbr_sim::SimDuration;

fn run(delegation: bool, expiry_guard: bool) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(6 * 3600), 21);
    config.mode = Mode::D2dFramework;
    config.framework.delegation_slack_check = delegation;
    config.framework.expiry_guard = expiry_guard;
    config.add_device(DeviceSpec {
        role: Role::Relay,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(0.0, 0.0)),
        battery_mah: None,
    });
    // Presence-critical: 150 s period, 160 s expiration — tighter than
    // the relay's 270 s aggregation window.
    let tight = AppProfile::custom(
        AppId::new(50),
        "LivePresence",
        SimDuration::from_secs(150),
        80,
        0.5,
    )
    .with_expiration(SimDuration::from_secs(160));
    for x in [1.0, 2.0, 3.0] {
        config.add_device(DeviceSpec {
            role: Role::Ue,
            apps: vec![tight.clone()],
            mobility: Mobility::stationary(Position::new(x, 0.0)),
            battery_mah: None,
        });
    }
    Scenario::new(config).run()
}

fn main() {
    let full = run(true, true);
    let no_delegation = run(false, true);
    let neither = run(false, false);

    let row = |name: &str, r: &ScenarioReport| {
        let forwards: u64 = r.devices[1..].iter().map(|d| d.forwards).sum();
        vec![
            name.to_string(),
            forwards.to_string(),
            r.delivered.to_string(),
            r.duplicates.to_string(),
            f(r.offline_secs, 0),
            r.total_l3.to_string(),
        ]
    };
    let rows = vec![
        row("delegation + expiry clause", &full),
        row("expiry clause only", &no_delegation),
        row("neither", &neither),
    ];
    print_table(
        "Delay-tolerance ablation — 150 s period, 160 s expiration vs a 270 s relay window",
        &[
            "configuration",
            "forwards",
            "delivered",
            "dups",
            "offline s",
            "L3",
        ],
        &rows,
    );
    write_csv(
        "ablation_expiry",
        &["config", "forwards", "delivered", "dups", "offline_s", "l3"],
        &rows,
    )
    .expect("csv");

    println!("\nShape checks:");
    check(
        "the delegation policy refuses to forward the tight class",
        full.devices[1..].iter().all(|d| d.forwards == 0),
        "0 forwards — straight to cellular",
    );
    check(
        "with delegation, presence is perfect",
        full.offline_secs == 0.0 && full.rejected_expired == 0,
        format!("{:.0}s offline", full.offline_secs),
    );
    check(
        "expiry clause alone keeps messages fresh but presence flaps",
        no_delegation.rejected_expired == 0 && no_delegation.offline_secs > 1_000.0,
        format!(
            "{} expired yet {:.0}s offline (delay jitter)",
            no_delegation.rejected_expired, no_delegation.offline_secs
        ),
    );
    check(
        "dropping both mechanisms is at least as bad",
        neither.offline_secs >= no_delegation.offline_secs * 0.8,
        format!(
            "{:.0}s vs {:.0}s offline",
            neither.offline_secs, no_delegation.offline_secs
        ),
    );
    check(
        "the rescue path masks expiries even without the clause",
        neither.duplicates > 0,
        format!(
            "{} duplicate deliveries from fallback races",
            neither.duplicates
        ),
    );
}
