//! §VII future work — generalising beyond heartbeats.
//!
//! The conclusion: "Our framework could be further applied in other
//! periodic message\[s\], such as advertisements and diagnostic messages
//! of apps … The messages (1) are small in size and short in duration,
//! (2) don't need to reply, (3) are delay-tolerant." We define three
//! such classes as ordinary [`AppProfile`]s and run the full framework
//! over a device carrying all of them, demonstrating that nothing in
//! the stack is heartbeat-specific.

use hbr_apps::profile::AppId;
use hbr_apps::AppProfile;
use hbr_bench::{check, f, pct, print_table, run_sweep, write_csv};
use hbr_core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport};
use hbr_mobility::{Mobility, Position};
use hbr_sim::SimDuration;

/// The periodic message classes of §VII, as profiles.
fn periodic_classes() -> Vec<AppProfile> {
    vec![
        // Classic IM heartbeat for reference.
        AppProfile::wechat(),
        // Ad refresh beacon: every 10 min, 200 B, tolerant to a full cycle.
        AppProfile::custom(
            AppId::new(40),
            "AdRefresh",
            SimDuration::from_secs(600),
            200,
            0.5,
        ),
        // App diagnostics/telemetry: every 2 min, 150 B.
        AppProfile::custom(
            AppId::new(41),
            "Diagnostics",
            SimDuration::from_secs(120),
            150,
            0.5,
        ),
        // OS-level keep-alive (push channel): every 15 min, 60 B.
        AppProfile::custom(
            AppId::new(42),
            "PushChannel",
            SimDuration::from_secs(900),
            60,
            0.5,
        ),
    ]
}

fn run(mode: Mode) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(6 * 3600), 77);
    config.mode = mode;
    // Four classes per UE, the 120 s diagnostics ticking twice per relay
    // period: ~12 arrivals per period across three UEs. The default IM
    // capacity (M = 7) would overflow every period, so the relay owner
    // raises M for the heavier aggregate workload.
    config.framework.relay_capacity = 24;
    config.add_device(DeviceSpec {
        role: Role::Relay,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(0.0, 0.0)),
        battery_mah: None,
    });
    for x in [1.0, 2.0, 3.0] {
        config.add_device(DeviceSpec {
            role: Role::Ue,
            apps: periodic_classes(),
            mobility: Mobility::stationary(Position::new(x, 0.0)),
            battery_mah: None,
        });
    }
    Scenario::new(config).run()
}

fn main() {
    let classes = periodic_classes();
    let class_rows: Vec<Vec<String>> = classes
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.heartbeat_period.as_secs().to_string(),
                c.heartbeat_size.to_string(),
                c.expiration.as_secs().to_string(),
            ]
        })
        .collect();
    print_table(
        "§VII — periodic message classes carried by each UE",
        &["Class", "Period s", "Size B", "Expiration s"],
        &class_rows,
    );

    // The two system variants are independent 6-hour scenarios — run
    // them side by side (the scenario seeds itself; the per-point
    // stream goes unused).
    let mut both = run_sweep(
        0,
        vec![Mode::OriginalCellular, Mode::D2dFramework],
        |&mode, _| run(mode),
    );
    let fw = both.pop().expect("framework run");
    let base = both.pop().expect("baseline run");
    let rows = vec![
        vec![
            "original".into(),
            base.total_l3.to_string(),
            base.total_rrc.to_string(),
            f(base.total_energy_uah, 0),
            base.delivered.to_string(),
            f(base.offline_secs, 0),
        ],
        vec![
            "d2d-framework".into(),
            fw.total_l3.to_string(),
            fw.total_rrc.to_string(),
            f(fw.total_energy_uah, 0),
            fw.delivered.to_string(),
            f(fw.offline_secs, 0),
        ],
    ];
    print_table(
        "6 h, 3 UEs × 4 periodic classes + 1 relay",
        &[
            "system",
            "L3 msgs",
            "RRC",
            "energy µAh",
            "delivered",
            "offline s",
        ],
        &rows,
    );
    write_csv(
        "periodic_classes",
        &[
            "system",
            "l3",
            "rrc",
            "energy_uah",
            "delivered",
            "offline_s",
        ],
        &rows,
    )
    .expect("csv");

    let l3_saving = 1.0 - fw.total_l3 as f64 / base.total_l3 as f64;
    let energy_saving = 1.0 - fw.total_energy_uah / base.total_energy_uah;
    println!("\nShape checks:");
    check(
        "mixed periodic classes still halve signaling",
        l3_saving >= 0.45,
        pct(l3_saving),
    );
    check(
        "and still save system energy",
        energy_saving > 0.15,
        pct(energy_saving),
    );
    check(
        "no class ever misses its expiration window",
        fw.rejected_expired == 0 && fw.offline_secs == 0.0,
        format!(
            "{} expired, {:.0}s offline",
            fw.rejected_expired, fw.offline_secs
        ),
    );
    check(
        "the high-rate diagnostics stream dominates aggregation gains",
        fw.total_rrc < base.total_rrc / 2,
        format!("{} vs {} RRC connections", fw.total_rrc, base.total_rrc),
    );
}
