//! Extension — where does the radio's time (and energy) actually go?
//!
//! §II-B's core inefficiency is the RRC *tail*: after every transfer the
//! radio lingers at high power waiting for inactivity timers. This
//! experiment breaks one day of WeChat heartbeats into per-state
//! occupancy for the original system and for the framework's relay, and
//! shows that aggregation attacks exactly the tail component.

use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_cellular::{CellularRadio, RrcConfig};
use hbr_sim::{SimDuration, SimTime};

/// One day of WeChat ticks through a radio, `per_tx` heartbeats per
/// transmission (1 = original system, k = relay aggregating k devices).
fn day_of_heartbeats(per_tx: usize) -> CellularRadio {
    let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
    let period = SimDuration::from_secs(270);
    let mut t = SimTime::ZERO;
    for _ in 0..(24 * 3600 / 270) {
        t += period;
        radio.transmit(t, 74 * per_tx);
    }
    radio.finalize(t + SimDuration::from_secs(60));
    radio
}

fn main() {
    let mut rows = Vec::new();
    let mut tails = Vec::new();
    for (label, per_tx, devices) in [
        ("original, per device", 1usize, 1usize),
        ("relay for 3 devices", 3, 3),
        ("relay for 7 devices", 7, 7),
    ] {
        let radio = day_of_heartbeats(per_tx);
        let occ = radio.occupancy();
        tails.push(occ.tail_fraction());
        // Per-device-served share of connected time.
        let connected = occ.dch_secs + occ.fach_secs;
        rows.push(vec![
            label.to_string(),
            f(occ.idle_secs / 3600.0, 2),
            f(occ.active_secs, 0),
            f(connected - occ.active_secs, 0),
            pct(occ.tail_fraction()),
            f(connected / devices as f64, 0),
        ]);
    }

    print_table(
        "RRC occupancy — 24 h of WeChat heartbeats (idle in hours, rest in seconds)",
        &[
            "radio",
            "idle h",
            "active s",
            "tail s",
            "tail frac",
            "connected s / device served",
        ],
        &rows,
    );
    write_csv(
        "occupancy",
        &[
            "radio",
            "idle_h",
            "active_s",
            "tail_s",
            "tail_frac",
            "connected_per_device",
        ],
        &rows,
    )
    .expect("csv");

    println!("\nShape checks:");
    check(
        "the tail dominates connected time in the original system (§II-B)",
        tails[0] > 0.6,
        pct(tails[0]),
    );
    check(
        "aggregation doesn't remove the tail per connection…",
        (tails[2] - tails[0]).abs() < 0.1,
        format!("{} vs {}", pct(tails[2]), pct(tails[0])),
    );
    check(
        "…but divides it across served devices",
        {
            let single: f64 = rows[0][5].parse().unwrap();
            let seven: f64 = rows[2][5].parse().unwrap();
            seven < single / 5.0
        },
        format!(
            "{} s vs {} s of connected time per device",
            rows[2][5], rows[0][5]
        ),
    );
}
