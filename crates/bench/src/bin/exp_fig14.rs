//! Fig. 14 — the captured layer-3 signaling log.
//!
//! The paper's Fig. 14 is a NetOptiMaster screenshot: the timestamped
//! layer-3 messages of one heartbeat transmission in a WCDMA network.
//! Our `SignalingCapture` records exactly that structure; this binary
//! renders the capture for one full heartbeat cycle and for one
//! aggregated relay cycle serving two UEs, side by side with the message
//! budget of each.

use hbr_bench::{check, print_table, write_csv};
use hbr_cellular::{BaseStation, CellularRadio, L3Message, RrcConfig};
use hbr_sim::{DeviceId, SimDuration, SimTime};

fn capture_one_cycle(bytes: usize) -> BaseStation {
    let mut bs = BaseStation::new(1e9);
    let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
    let out = radio.transmit(SimTime::from_secs(1), bytes);
    bs.record(DeviceId::new(0), &out.activity, out.rrc_connections);
    let tail = radio.finalize(SimTime::from_secs(60));
    bs.record(DeviceId::new(0), &tail, 0);
    bs
}

fn main() {
    // One plain 74 B heartbeat.
    let single = capture_one_cycle(74);
    let rows: Vec<Vec<String>> = single
        .capture()
        .entries()
        .iter()
        .map(|e| {
            vec![
                format!("{:.3}", e.time.as_secs_f64()),
                e.device.to_string(),
                e.message.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 14 — captured layer-3 messages, one WCDMA heartbeat cycle",
        &["t (s)", "device", "layer-3 message"],
        &rows,
    );
    write_csv("fig14", &["t_s", "device", "message"], &rows).expect("csv");

    // One aggregated relay cycle: own heartbeat + 2 forwarded (74 + 2×54 B).
    let aggregated = capture_one_cycle(74 + 2 * 54);

    println!(
        "\nmessage budget: single heartbeat = {} msgs; aggregated (1 relay + 2 UEs) = {} msgs \
         instead of {} for three separate cycles",
        single.total_l3(),
        aggregated.total_l3(),
        3 * single.total_l3()
    );

    println!("\nShape checks:");
    check(
        "the cycle is the canonical WCDMA sequence",
        {
            let msgs: Vec<L3Message> = single
                .capture()
                .entries()
                .iter()
                .map(|e| e.message)
                .collect();
            msgs.first() == Some(&L3Message::RrcConnectionRequest)
                && msgs.last() == Some(&L3Message::RrcConnectionReleaseComplete)
                && msgs.contains(&L3Message::RadioBearerSetup)
                && msgs.contains(&L3Message::RadioBearerReconfiguration)
        },
        "request … release-complete with bearer setup and demotion",
    );
    check(
        "8 layer-3 messages per isolated heartbeat",
        single.total_l3() == 8,
        single.total_l3(),
    );
    check(
        "aggregation pays the budget once for three heartbeats",
        aggregated.total_l3() == single.total_l3(),
        aggregated.total_l3(),
    );
    check(
        "messages are spread across the promotion window, not bunched",
        {
            let times: Vec<f64> = single
                .capture()
                .entries()
                .iter()
                .map(|e| e.time.as_secs_f64())
                .collect();
            times.windows(2).all(|w| w[1] >= w[0])
                && times.last().unwrap() - times.first().unwrap() > 5.0
        },
        "monotone timestamps over the full cycle",
    );
    let _ = SimDuration::ZERO;
}
