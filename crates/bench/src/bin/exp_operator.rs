//! Operator view — control-channel load and paging failure vs crowd
//! density (§II-B's motivation, quantified).
//!
//! "The signaling storm problem usually occurs in the region with
//! high-density crowd" — exactly where D2D finds the most relays. We
//! sweep the crowd size in one cell (1 relay per 5 phones, operator
//! recruited) and report the base station's layer-3 load and the
//! §II-B congestion signal, paging failure probability, with and
//! without the framework.
//!
//! Each (crowd size × mode) pair is an independent 1-hour scenario,
//! dispatched through [`hbr_bench::run_sweep`].

use std::collections::HashMap;

use hbr_apps::AppProfile;
use hbr_bench::{check, f, pct, print_table, run_sweep, write_csv};
use hbr_core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport};
use hbr_mobility::{Mobility, Position};
use hbr_sim::{SimDuration, SimRng};

/// Control-channel capacity of the modelled cell, L3 msgs/second.
const CELL_CAPACITY: f64 = 3.0;

fn crowd(mode: Mode, phones: usize, seed: u64) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3600), seed);
    config.mode = mode;
    let mut rng = SimRng::seed_from(seed);
    for i in 0..phones {
        let x = rng.range(0.0..60.0);
        let y = rng.range(0.0..60.0);
        config.add_device(DeviceSpec {
            role: if i % 5 == 0 { Role::Relay } else { Role::Ue },
            apps: vec![AppProfile::wechat(), AppProfile::whatsapp()],
            mobility: Mobility::stationary(Position::new(x, y)),
            battery_mah: None,
        });
    }
    Scenario::new(config).run()
}

fn paging_failure(l3: u64, secs: f64) -> f64 {
    // The BS congestion curve of hbr_cellular::BaseStation, applied to
    // the observed aggregate load.
    let load = l3 as f64 / secs;
    let knee = 0.7 * CELL_CAPACITY;
    let ceiling = 2.0 * CELL_CAPACITY;
    if load <= knee {
        0.0
    } else {
        ((load - knee) / (ceiling - knee)).min(1.0)
    }
}

fn main() {
    let secs = 3600.0;
    let crowd_sizes = [25usize, 50, 100, 150];

    // Both modes share the crowd layout (same fixed seed 9), so each
    // comparison is paired; the sweep's per-point stream goes unused.
    let points: Vec<(usize, Mode)> = crowd_sizes
        .iter()
        .flat_map(|&p| [(p, Mode::OriginalCellular), (p, Mode::D2dFramework)])
        .collect();
    let reports: HashMap<(usize, Mode), ScenarioReport> = points
        .iter()
        .copied()
        .zip(run_sweep(0, points.clone(), |&(phones, mode), _| {
            crowd(mode, phones, 9)
        }))
        .collect();

    let mut rows = Vec::new();
    let mut last_pair = (0.0, 0.0);
    for phones in crowd_sizes {
        let base = &reports[&(phones, Mode::OriginalCellular)];
        let fw = &reports[&(phones, Mode::D2dFramework)];
        let base_fail = paging_failure(base.total_l3, secs);
        let fw_fail = paging_failure(fw.total_l3, secs);
        last_pair = (base_fail, fw_fail);
        rows.push(vec![
            phones.to_string(),
            base.total_l3.to_string(),
            fw.total_l3.to_string(),
            f(base.total_l3 as f64 / secs, 2),
            f(fw.total_l3 as f64 / secs, 2),
            pct(base_fail),
            pct(fw_fail),
        ]);
    }

    print_table(
        "Operator view — cell signaling load & paging failure vs crowd size (1 h, 20% relays)",
        &[
            "Phones",
            "L3 orig",
            "L3 D2D",
            "msg/s orig",
            "msg/s D2D",
            "PgFail orig",
            "PgFail D2D",
        ],
        &rows,
    );
    write_csv(
        "operator",
        &[
            "phones",
            "l3_orig",
            "l3_d2d",
            "mps_orig",
            "mps_d2d",
            "pgfail_orig",
            "pgfail_d2d",
        ],
        &rows,
    )
    .expect("csv");

    println!("\nShape checks:");
    check(
        "signaling reduction holds at every density",
        rows.iter()
            .all(|r| r[2].parse::<u64>().unwrap() * 2 <= r[1].parse::<u64>().unwrap() + 50),
        "framework ≈ halves L3 or better",
    );
    check(
        "the densest crowd pushes the unmodified cell past its knee",
        last_pair.0 > 0.2,
        format!("paging failure {}", pct(last_pair.0)),
    );
    check(
        "the framework pulls the same crowd back below danger",
        last_pair.1 < last_pair.0 / 2.0,
        format!("{} → {}", pct(last_pair.0), pct(last_pair.1)),
    );
    check(
        "savings improve with density (more UEs per relay)",
        {
            let first_ratio =
                rows[0][2].parse::<f64>().unwrap() / rows[0][1].parse::<f64>().unwrap();
            let last_ratio = rows.last().unwrap()[2].parse::<f64>().unwrap()
                / rows.last().unwrap()[1].parse::<f64>().unwrap();
            last_ratio <= first_ratio + 0.05
        },
        "denser is better — the paper's §II-D argument",
    );
}
