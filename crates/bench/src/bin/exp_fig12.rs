//! Fig. 12 — energy consumption vs communication distance.
//!
//! Wi-Fi Direct transfer energy grows with distance; the paper sweeps
//! 1–15 m and predicts that "UE might consume more energy than original
//! system when the communication distance \[is\] beyond a certain value" —
//! which is why the matcher prefers the nearest relay. We sweep distance,
//! report UE / relay / original energy per heartbeat, and locate the
//! crossover.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};

fn main() {
    // Per-heartbeat steady-state view: a long session amortises
    // establishment, isolating the distance effect on transfers.
    let transmissions = 8u32;
    let mut rows = Vec::new();
    let mut crossover_m: Option<f64> = None;

    for distance in [
        1.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0, 20.0, 30.0, 45.0, 60.0, 80.0, 100.0, 120.0, 150.0,
    ] {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count: 1,
            transmissions,
            distance_m: distance,
            ..ExperimentConfig::default()
        })
        .run();
        let ue = run.ue_energy();
        let relay = run.relay_energy();
        let original = run.original_device_energy();
        let saved = run.ue_saved_energy();
        if crossover_m.is_none() && ue >= original {
            crossover_m = Some(distance);
        }
        rows.push(vec![
            f(distance, 1),
            f(ue, 0),
            f(relay, 0),
            f(original, 0),
            f(saved, 0),
        ]);
    }

    print_table(
        "Fig. 12 — energy (µAh) vs communication distance (8 forwards)",
        &["d (m)", "UE", "Relay", "Original/dev", "UE saved"],
        &rows,
    );
    write_csv(
        "fig12",
        &[
            "distance_m",
            "ue_uah",
            "relay_uah",
            "original_uah",
            "ue_saved_uah",
        ],
        &rows,
    )
    .expect("write results/fig12.csv");

    println!("\nShape checks:");
    check(
        "UE energy rises monotonically with distance",
        rows.windows(2)
            .all(|w| w[0][1].parse::<f64>().unwrap() <= w[1][1].parse::<f64>().unwrap()),
        "monotone",
    );
    check(
        "D2D still wins at the paper's measured 15 m",
        {
            let at_15 = rows.iter().find(|r| r[0] == "15.0").unwrap();
            at_15[1].parse::<f64>().unwrap() < at_15[3].parse::<f64>().unwrap()
        },
        "UE < original at 15 m",
    );
    check(
        "a crossover distance exists where D2D loses",
        crossover_m.is_some(),
        format!(
            "UE ≥ original from {} m (paper predicts one beyond its 15 m sweep)",
            crossover_m.map(|d| f(d, 1)).unwrap_or_else(|| "∞".into())
        ),
    );
}
