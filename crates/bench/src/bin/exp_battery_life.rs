//! Extension — standby battery-life projection.
//!
//! The paper argues in µAh per heartbeat; a phone owner thinks in hours
//! of standby. This experiment projects whole-device standby life
//! (Galaxy S4, 2600 mAh, ~18 mA screen-off floor) for a UE and a relay
//! under the framework against the unmodified system, by scaling one
//! simulated day's heartbeat energy to the full pack.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_sim::SimDuration;

/// Screen-off floor current of the modelled handset, mA.
const BASELINE_MA: f64 = 18.0;
/// Battery capacity, mAh.
const PACK_MAH: f64 = 2600.0;

/// Standby hours given the heartbeat-machinery charge for 24 h.
fn standby_hours(heartbeat_uah_per_day: f64) -> f64 {
    let heartbeat_ma = heartbeat_uah_per_day / 1000.0 / 24.0; // mean mA
    PACK_MAH / (BASELINE_MA + heartbeat_ma)
}

fn main() {
    // One day of WeChat heartbeats: 24 h / 270 s = 320 periods.
    let periods_per_day = (24 * 3600) / 270;
    let run = ControlledExperiment::new(ExperimentConfig {
        ue_count: 1,
        transmissions: periods_per_day as u32,
        relay_period: SimDuration::from_secs(270),
        include_idle_keepalive: true, // honest long-period accounting
        ..ExperimentConfig::default()
    })
    .run();

    let original = run.original_device_energy();
    let ue = run.ue_energy();
    let relay = run.relay_energy();

    let rows = vec![
        vec![
            "no heartbeats at all".into(),
            "—".into(),
            f(standby_hours(0.0), 1),
        ],
        vec![
            "original system".into(),
            f(original, 0),
            f(standby_hours(original), 1),
        ],
        vec!["UE (framework)".into(), f(ue, 0), f(standby_hours(ue), 1)],
        vec![
            "relay (framework, 1 UE served)".into(),
            f(relay, 0),
            f(standby_hours(relay), 1),
        ],
    ];
    print_table(
        "Standby projection — Galaxy S4 (2600 mAh, 18 mA floor), WeChat heartbeats, 24 h scaled",
        &["device", "hb µAh/day", "standby h"],
        &rows,
    );
    write_csv("battery_life", &["device", "uah_day", "standby_h"], &rows).expect("csv");

    let gained = standby_hours(ue) - standby_hours(original);
    let relay_cost = standby_hours(original) - standby_hours(relay);
    println!(
        "\nUE gains {:.1} h of standby; a relay serving one UE gives up {:.1} h \
         (recouped via operator credits).",
        gained, relay_cost
    );

    println!("\nShape checks:");
    check(
        "heartbeats measurably dent standby in the original system",
        standby_hours(0.0) - standby_hours(original) > 5.0,
        format!(
            "{:.1} h lost to heartbeats alone",
            standby_hours(0.0) - standby_hours(original)
        ),
    );
    check(
        "the framework recovers most of that loss for UEs",
        gained > (standby_hours(0.0) - standby_hours(original)) * 0.5,
        format!("{gained:.1} h regained"),
    );
    check(
        "the relay's sacrifice is bounded",
        relay_cost < 2.0 * (standby_hours(0.0) - standby_hours(original)),
        format!("{relay_cost:.1} h"),
    );
}
