//! Figs. 8 & 9 — energy vs transmission times; saved energy of UE and
//! whole system.
//!
//! The paper's headline energy result: with one relay and one UE at 1 m,
//! the D2D framework matches the original system at one forwarded
//! heartbeat, saves ≈55% for the UE immediately, and saves up to 36% for
//! the whole system at seven forwards. We sweep transmissions 1–8.

use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};

fn main() {
    let mut rows = Vec::new();
    let mut first_saving = 0.0;
    let mut ue_saving_at_1 = 0.0;
    let mut system_saving_at_7 = 0.0;
    let mut last_saving = 0.0;

    for n in 1..=8u32 {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count: 1,
            transmissions: n,
            distance_m: 1.0,
            ..ExperimentConfig::default()
        })
        .run();
        if n == 1 {
            first_saving = run.system_saving();
            ue_saving_at_1 = run.ue_saving();
        }
        if n == 7 {
            system_saving_at_7 = run.system_saving();
        }
        last_saving = run.system_saving();
        rows.push(vec![
            n.to_string(),
            f(run.ue_energy(), 0),
            f(run.relay_energy(), 0),
            f(run.original_device_energy(), 0),
            f(run.ue_saved_energy(), 0),
            pct(run.ue_saving()),
            pct(run.system_saving()),
        ]);
    }

    print_table(
        "Fig. 8 — energy (µAh) and Fig. 9 — savings vs transmission times (1 UE, 1 m, 54 B)",
        &[
            "n",
            "UE",
            "Relay",
            "Original/dev",
            "UE saved",
            "UE saving",
            "System saving",
        ],
        &rows,
    );
    write_csv(
        "fig8_fig9",
        &[
            "n",
            "ue_uah",
            "relay_uah",
            "original_uah",
            "ue_saved_uah",
            "ue_saving",
            "system_saving",
        ],
        &rows,
    )
    .expect("write results/fig8_fig9.csv");

    println!("\nPaper targets: system ≈0% at n=1, UE ≈55% at n=1, system ≈36% at n=7.");
    println!("Shape checks:");
    check(
        "system saving ≈ 0 at one transmission",
        first_saving.abs() < 0.08,
        pct(first_saving),
    );
    check(
        "UE saves ≈55% on its first forwarded heartbeat",
        (0.45..0.65).contains(&ue_saving_at_1),
        pct(ue_saving_at_1),
    );
    check(
        "system saving at n=7 approaches the paper's 36%",
        (0.20..0.45).contains(&system_saving_at_7),
        format!("{} (paper: 36%)", pct(system_saving_at_7)),
    );
    check(
        "savings grow monotonically with connection time",
        last_saving > first_saving,
        format!("{} → {}", pct(first_saving), pct(last_saving)),
    );
}
