//! Ablation — what does Algorithm 1's batching actually buy?
//!
//! The scheduler's whole purpose is to turn `k` heartbeat transmissions
//! into one RRC cycle. We ablate the relay capacity `M` from 1 (flush on
//! every arrival — no Nagle batching at all) up to 8 (the default, full
//! per-period aggregation) with seven connected UEs, and report RRC
//! connections, layer-3 signaling and relay energy. We also ablate the
//! aggregation window by shrinking the relay period.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};
use hbr_sim::SimDuration;

fn main() {
    let ue_count = 7usize;
    let transmissions = 6u32;

    // Sweep capacity M: M = 1 degenerates to "send immediately".
    let mut rows = Vec::new();
    for capacity in [1usize, 2, 4, 8] {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count,
            transmissions,
            relay_capacity: capacity,
            ..ExperimentConfig::default()
        })
        .run();
        rows.push(vec![
            capacity.to_string(),
            run.relay_rrc_connections.to_string(),
            run.framework_l3().to_string(),
            f(run.relay_energy(), 0),
            run.d2d_failures.to_string(),
        ]);
    }
    print_table(
        "Scheduler ablation — relay capacity M (7 UEs, 6 periods)",
        &["M", "RRC conns", "L3 msgs", "Relay µAh", "Fallbacks"],
        &rows,
    );
    write_csv(
        "ablation_scheduler_capacity",
        &["capacity", "rrc", "l3", "relay_uah", "fallbacks"],
        &rows,
    )
    .expect("write csv");

    // Sweep the aggregation window (relay period).
    let mut window_rows = Vec::new();
    for period_secs in [30u64, 90, 270] {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count,
            transmissions,
            relay_period: SimDuration::from_secs(period_secs),
            ..ExperimentConfig::default()
        })
        .run();
        window_rows.push(vec![
            period_secs.to_string(),
            run.relay_rrc_connections.to_string(),
            run.framework_l3().to_string(),
            f(run.system_energy(), 0),
        ]);
    }
    print_table(
        "Scheduler ablation — aggregation window T (7 UEs, 6 periods)",
        &["T (s)", "RRC conns", "L3 msgs", "System µAh"],
        &window_rows,
    );
    write_csv(
        "ablation_scheduler_window",
        &["period_s", "rrc", "l3", "system_uah"],
        &window_rows,
    )
    .expect("write csv");

    let immediate: u64 = rows[0][1].parse().unwrap();
    let batched: u64 = rows.last().unwrap()[1].parse().unwrap();
    println!("\nShape checks:");
    check(
        "full batching uses far fewer RRC connections than immediate flush",
        batched * 3 <= immediate,
        format!("{batched} vs {immediate} connections"),
    );
    check(
        "signaling falls monotonically with capacity",
        rows.windows(2)
            .all(|w| w[0][2].parse::<u64>().unwrap() >= w[1][2].parse::<u64>().unwrap()),
        "monotone in M",
    );
    check(
        "small capacities overflow and force cellular fallbacks",
        rows[0][4].parse::<u64>().unwrap() > 0,
        format!("{} fallbacks at M=1", rows[0][4]),
    );
}
