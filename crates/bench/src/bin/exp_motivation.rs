//! Motivation claims (§I): heartbeats are a sliver of the *data* traffic
//! but a huge share of the *signaling* traffic — and a real battery tax.
//!
//! Three numbers from the introduction, reproduced here:
//!
//! 1. WeChat heartbeats account for "only 10% of cellular data traffic"
//!    but "60% of cellular signaling traffic" (China Mobile).
//! 2. "A smartphone spends at least 6% of its battery capacity in
//!    sending heartbeat messages even with only one IM app running".
//! 3. Nearly half of all messages are heartbeats (Table I — see
//!    `exp_table1`).

use hbr_apps::{AppProfile, TrafficEvent, TrafficGenerator};
use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_cellular::{CellularRadio, RrcConfig};
use hbr_energy::Battery;
use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};

fn main() {
    // --- Claim 1: byte share vs signaling share -------------------------
    let app = AppProfile::wechat();
    let mut generator = TrafficGenerator::new(DeviceId::new(0), app.clone());
    let mut rng = SimRng::seed_from(1);
    let day = SimTime::from_secs(24 * 3600);
    let trace = generator.trace_until(day, &mut rng);

    let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
    let mut hb_bytes = 0u64;
    let mut data_bytes = 0u64;
    let mut hb_l3 = 0u64;
    let mut data_l3 = 0u64;
    let mut last = SimTime::ZERO;
    for event in &trace {
        let (at, bytes, is_hb) = match event {
            TrafficEvent::Heartbeat(hb) => (hb.created_at, hb.size, true),
            TrafficEvent::Data { at, size } => (*at, *size, false),
        };
        let out = radio.transmit(at.max(last), bytes);
        last = out.delivered_at;
        let l3 = out.activity.messages.len() as u64;
        if is_hb {
            hb_bytes += bytes as u64;
            hb_l3 += l3;
        } else {
            data_bytes += bytes as u64;
            data_l3 += l3;
        }
    }
    // Attribute release/demotion tails to whoever triggered them last —
    // aggregate them proportionally instead for a fair split.
    let tail = radio.finalize(last + SimDuration::from_secs(60));
    let tail_l3 = tail.messages.len() as u64;
    let hb_l3 = hb_l3 + tail_l3 * hb_l3 / (hb_l3 + data_l3).max(1);

    let byte_share = hb_bytes as f64 / (hb_bytes + data_bytes) as f64;
    let signaling_share = hb_l3 as f64 / (hb_l3 + data_l3) as f64;

    let rows = vec![
        vec![
            "bytes".into(),
            hb_bytes.to_string(),
            data_bytes.to_string(),
            pct(byte_share),
            "≈10%".into(),
        ],
        vec![
            "layer-3 msgs".into(),
            hb_l3.to_string(),
            data_l3.to_string(),
            pct(signaling_share),
            "≈60%".into(),
        ],
    ];
    print_table(
        "§I — WeChat, 24 h: heartbeat share of data vs signaling traffic",
        &["metric", "heartbeats", "foreground", "hb share", "paper"],
        &rows,
    );
    write_csv(
        "motivation_shares",
        &["metric", "heartbeats", "foreground", "hb_share", "paper"],
        &rows,
    )
    .expect("csv");

    // --- Claim 2: battery share ----------------------------------------
    // One IM app, heartbeats only, 24 h, Galaxy S4 2600 mAh pack.
    let mut hb_only = TrafficGenerator::new(DeviceId::new(0), app.clone());
    let mut rng2 = SimRng::seed_from(2);
    let mut radio2 = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
    let mut battery = Battery::with_capacity_mah(2600.0);
    let mut last2 = SimTime::ZERO;
    for event in hb_only.trace_until(day, &mut rng2) {
        if let TrafficEvent::Heartbeat(hb) = event {
            let out = radio2.transmit(hb.created_at.max(last2), hb.size);
            last2 = out.delivered_at;
            for (_, seg) in &out.activity.segments {
                battery.drain(seg.charge());
            }
        }
    }
    for (_, seg) in &radio2.finalize(last2 + SimDuration::from_secs(60)).segments {
        battery.drain(seg.charge());
    }
    let battery_share = battery.drained().fraction_of(battery.capacity());
    println!(
        "\n§I battery claim — WeChat heartbeats alone, 24 h on a 2600 mAh pack: {} of capacity (paper: ≥6%)",
        pct(battery_share)
    );

    println!("\nShape checks:");
    check(
        "heartbeats are a small minority of data bytes",
        byte_share < 0.25,
        format!("{} (paper ≈10%)", pct(byte_share)),
    );
    check(
        "but a majority-scale share of signaling",
        signaling_share > 0.45,
        format!("{} (paper ≈60%)", pct(signaling_share)),
    );
    check(
        "signaling share dwarfs byte share (the storm argument)",
        signaling_share > byte_share * 3.0,
        format!(
            "×{:.1} amplification",
            signaling_share / byte_share.max(1e-9)
        ),
    );
    check(
        "one app's heartbeats cost ≥6% of the battery per day",
        battery_share >= 0.06,
        pct(battery_share),
    );
    let _ = f(0.0, 0);
}
