//! Figs. 10 & 11 — a relay serving multiple UEs: energy growth and the
//! wasted-to-saved energy ratio.
//!
//! Fig. 10: relay energy vs transmission times for 1/3/5/7 connected
//! UEs — more UEs cost more receive energy, but the increment shrinks
//! relative to the aggregate as connections last longer. Fig. 11: the
//! ratio of the relay's *wasted* energy to the UEs' *saved* energy drops
//! from ≈97% at one UE and one forward to a few percent — the framework's
//! win-win argument.
//!
//! The (UE count × transmissions) grid is embarrassingly parallel, so
//! every cell runs once through [`hbr_bench::run_sweep`] and the tables
//! and shape checks below read from the collected grid.

use std::collections::HashMap;

use hbr_bench::{check, f, pct, print_table, run_sweep, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig, ExperimentRun};

fn run(m: usize, n: u32) -> ExperimentRun {
    ControlledExperiment::new(ExperimentConfig {
        ue_count: m,
        transmissions: n,
        distance_m: 1.0,
        relay_capacity: 8,
        ..ExperimentConfig::default()
    })
    .run()
}

fn main() {
    let ue_counts = [1usize, 3, 5, 7];

    // One run per (m, n) cell; the controlled experiment seeds itself,
    // so the sweep's per-point stream goes unused.
    let points: Vec<(usize, u32)> = ue_counts
        .iter()
        .flat_map(|&m| (1..=8u32).map(move |n| (m, n)))
        .collect();
    let runs: HashMap<(usize, u32), ExperimentRun> = points
        .iter()
        .copied()
        .zip(run_sweep(0, points.clone(), |&(m, n), _| run(m, n)))
        .collect();
    let cell = |m: usize, n: u32| &runs[&(m, n)];

    // Fig. 10: relay energy table.
    let mut fig10 = Vec::new();
    for n in 1..=7u32 {
        let mut row = vec![n.to_string()];
        for &m in &ue_counts {
            row.push(f(cell(m, n).relay_energy(), 0));
        }
        fig10.push(row);
    }
    print_table(
        "Fig. 10 — relay energy (µAh) vs transmission times, by connected UEs",
        &["n", "1 UE", "3 UEs", "5 UEs", "7 UEs"],
        &fig10,
    );
    write_csv("fig10", &["n", "ue1", "ue3", "ue5", "ue7"], &fig10)
        .expect("write results/fig10.csv");

    // Fig. 11: wasted/saved ratio.
    let mut fig11 = Vec::new();
    for n in 1..=8u32 {
        let mut row = vec![n.to_string()];
        for &m in &ue_counts {
            row.push(pct(cell(m, n).wasted_to_saved_ratio()));
        }
        fig11.push(row);
    }
    print_table(
        "Fig. 11 — ratio of relay wasted energy to UE saved energy",
        &["n", "1 UE", "3 UEs", "5 UEs", "7 UEs"],
        &fig11,
    );
    write_csv("fig11", &["n", "ue1", "ue3", "ue5", "ue7"], &fig11)
        .expect("write results/fig11.csv");

    let start_ratio = cell(1, 1).wasted_to_saved_ratio();
    let end_ratio = cell(7, 8).wasted_to_saved_ratio();
    println!(
        "\nPaper targets: ratio starts ≈97%, falls steeply with UEs × forwards (paper floor ≈5%)."
    );
    println!("Shape checks:");
    check(
        "ratio starts near 100% (1 UE, 1 forward)",
        (0.8..1.2).contains(&start_ratio),
        pct(start_ratio),
    );
    check(
        "ratio falls steeply with more UEs and forwards",
        end_ratio < start_ratio / 3.0,
        format!("{} → {}", pct(start_ratio), pct(end_ratio)),
    );
    check(
        "more UEs cost the relay more energy at every n (Fig. 10)",
        (1..=7u32).all(|n| cell(7, n).relay_energy() > cell(1, n).relay_energy()),
        "monotone in m",
    );
    check(
        "the multi-UE increment shrinks relative to total as n grows",
        {
            let rel_gap_1 =
                (cell(7, 1).relay_energy() - cell(1, 1).relay_energy()) / cell(7, 1).relay_energy();
            let rel_gap_7 =
                (cell(7, 7).relay_energy() - cell(1, 7).relay_energy()) / cell(7, 7).relay_energy();
            rel_gap_7 < rel_gap_1 + 0.35
        },
        "receive cost is linear; establishment amortises",
    );
}
