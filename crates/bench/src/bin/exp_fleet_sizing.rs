//! Extension — operator planning: how many relays does a crowd need?
//!
//! §III-A leaves deployment "beyond the scope of this paper"; this
//! experiment answers the first question an operator would ask. For a
//! fixed 60-phone crowd we sweep the volunteer-relay share and report
//! signaling saving, system energy saving, the UE fallback rate (a
//! proxy for relay overload) and the per-relay burden.
//!
//! The cellular baseline and every relay-share point are independent
//! 2-hour scenarios, so the whole sweep runs through
//! [`hbr_bench::run_sweep`] — one core per point.

use hbr_bench::{check, f, pct, print_table, run_sweep, write_csv};
use hbr_core::fleet::FleetBuilder;
use hbr_core::world::{Mode, Role, Scenario, ScenarioConfig, ScenarioReport};
use hbr_sim::SimDuration;

const PHONES: usize = 60;
const RELAY_SWEEP: [usize; 5] = [3, 6, 12, 18, 24];

fn run(relays: usize, mode: Mode) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), 5);
    config.mode = mode;
    for spec in FleetBuilder::new(PHONES, relays)
        .area_side_m(50.0)
        .walker_share(0.0)
        .build(5)
    {
        config.add_device(spec);
    }
    Scenario::new(config).run()
}

fn main() {
    // Point 0 is the cellular baseline; the rest sweep the relay share.
    // Scenarios carry their own fixed seed, so the per-point stream goes
    // unused.
    let mut points: Vec<(usize, Mode)> = vec![(1, Mode::OriginalCellular)];
    points.extend(RELAY_SWEEP.iter().map(|&r| (r, Mode::D2dFramework)));
    let mut reports = run_sweep(0, points, |&(relays, mode), _| run(relays, mode));
    let baseline = reports.remove(0);

    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for (&relays, report) in RELAY_SWEEP.iter().zip(&reports) {
        let sig_saving = 1.0 - report.total_l3 as f64 / baseline.total_l3 as f64;
        let energy_saving = 1.0 - report.total_energy_uah / baseline.total_energy_uah;
        let fallbacks: u64 = report
            .devices
            .iter()
            .filter(|d| d.role == Role::Ue)
            .map(|d| d.fallbacks)
            .sum();
        let per_relay: f64 = report
            .devices
            .iter()
            .filter(|d| d.role == Role::Relay)
            .map(|d| d.forwards as f64)
            .sum::<f64>()
            / relays as f64;
        savings.push((relays, sig_saving, energy_saving, fallbacks));
        rows.push(vec![
            relays.to_string(),
            pct(relays as f64 / PHONES as f64),
            pct(sig_saving),
            pct(energy_saving),
            fallbacks.to_string(),
            f(per_relay, 0),
        ]);
    }

    print_table(
        "Fleet sizing — 60 phones, 2 h, relay share sweep",
        &[
            "Relays",
            "Share",
            "Signaling saved",
            "Energy saved",
            "UE fallbacks",
            "Forwards/relay",
        ],
        &rows,
    );
    write_csv(
        "fleet_sizing",
        &[
            "relays",
            "share",
            "sig_saving",
            "energy_saving",
            "fallbacks",
            "per_relay",
        ],
        &rows,
    )
    .expect("csv");

    println!("\nFindings: the relay share has an interior optimum. Too few relays");
    println!("overflow their capacity (fallbacks burn D2D + cellular energy); too");
    println!("many relays each pay their own aggregated cycle for little extra load.");

    println!("\nShape checks:");
    check(
        "even a 5% relay share already cuts signaling",
        savings[0].1 > 0.15,
        pct(savings[0].1),
    );
    check(
        "signaling saving peaks at an interior share (not at either extreme)",
        {
            let best = savings.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
            best != savings.first().unwrap().0 && best != savings.last().unwrap().0
        },
        {
            let best = savings.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
            format!("best share = {} relays ({})", best.0, pct(best.1))
        },
    );
    check(
        "under-provisioned fleets overflow into fallbacks",
        savings[0].3 > savings.last().unwrap().3 * 5,
        format!(
            "{} fallbacks at 3 relays vs {} at 24",
            savings[0].3,
            savings.last().unwrap().3
        ),
    );
    check(
        "overload is counterproductive on energy; sized fleets save",
        savings[0].2 < 0.0 && savings.iter().skip(2).all(|s| s.2 > 0.0),
        format!(
            "{} at 3 relays vs {} at 12+",
            pct(savings[0].2),
            pct(savings[2].2)
        ),
    );
}
