//! Fig. 15 — layer-3 message consumption vs transmission times.
//!
//! The paper's signaling result: the relay's aggregated transmissions
//! generate roughly the same layer-3 traffic as a single unmodified
//! device (slightly more with more UEs and bytes), while the UEs
//! generate none — so the relay + UE system cuts signaling by more than
//! 50%, and the saving grows with each additional connected UE.
//!
//! All (UE count × transmissions) cells are independent, so they run in
//! one [`hbr_bench::run_sweep`] pass and the table reads from the grid.

use std::collections::HashMap;

use hbr_bench::{check, f, pct, print_table, run_sweep, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig, ExperimentRun};

fn run(m: usize, n: u32) -> ExperimentRun {
    ControlledExperiment::new(ExperimentConfig {
        ue_count: m,
        transmissions: n,
        distance_m: 1.0,
        ..ExperimentConfig::default()
    })
    .run()
}

fn main() {
    // The table sweeps 1 and 2 UEs over n = 1..=10; the shape checks
    // also look at 7 UEs at n = 10. Deterministic experiment — the
    // per-point RNG stream goes unused.
    let mut points: Vec<(usize, u32)> = [1usize, 2]
        .iter()
        .flat_map(|&m| (1..=10u32).map(move |n| (m, n)))
        .collect();
    points.push((7, 10));
    let runs: HashMap<(usize, u32), ExperimentRun> = points
        .iter()
        .copied()
        .zip(run_sweep(0, points.clone(), |&(m, n), _| run(m, n)))
        .collect();
    let cell = |m: usize, n: u32| &runs[&(m, n)];

    let mut rows = Vec::new();
    for n in 1..=10u32 {
        let one = cell(1, n);
        let two = cell(2, n);
        // "Original System" in Fig. 15 is one unmodified device.
        let original_one_device = one.original_l3() / 2; // capture holds m+1 devices
        rows.push(vec![
            n.to_string(),
            original_one_device.to_string(),
            one.framework_l3().to_string(),
            two.framework_l3().to_string(),
            pct(one.signaling_saving()),
            pct(two.signaling_saving()),
        ]);
    }

    print_table(
        "Fig. 15 — layer-3 messages vs transmission times",
        &[
            "n",
            "Original (1 dev)",
            "Relay w/ 1 UE",
            "Relay w/ 2 UEs",
            "Saving (1 UE)",
            "Saving (2 UEs)",
        ],
        &rows,
    );
    write_csv(
        "fig15",
        &[
            "n",
            "original_one_device",
            "relay_1ue",
            "relay_2ue",
            "saving_1ue",
            "saving_2ue",
        ],
        &rows,
    )
    .expect("write results/fig15.csv");

    let ten_one = cell(1, 10);
    let ten_two = cell(2, 10);
    let ten_seven = cell(7, 10);
    println!("\nPaper targets: relay curve ≈ original single-device curve (~8 msgs/transmission);");
    println!("system saving >50% with 1 UE, growing with more UEs.");
    println!("Shape checks:");
    check(
        "relay w/ 1 UE ≈ one unmodified device",
        {
            let relay = ten_one.framework_l3() as f64;
            let original_dev = ten_one.original_l3() as f64 / 2.0;
            (relay / original_dev - 1.0).abs() < 0.15
        },
        format!(
            "{} vs {} messages at n=10",
            ten_one.framework_l3(),
            ten_one.original_l3() / 2
        ),
    );
    check(
        ">50% signaling saving with a single UE",
        ten_one.signaling_saving() >= 0.45,
        pct(ten_one.signaling_saving()),
    );
    check(
        "saving grows with connected UEs",
        ten_seven.signaling_saving() > ten_two.signaling_saving()
            && ten_two.signaling_saving() > ten_one.signaling_saving(),
        format!(
            "1 UE {} → 2 UEs {} → 7 UEs {}",
            pct(ten_one.signaling_saving()),
            pct(ten_two.signaling_saving()),
            pct(ten_seven.signaling_saving())
        ),
    );
    check(
        "more UEs add only slightly more relay signaling",
        {
            let one = ten_one.framework_l3() as f64;
            let seven = ten_seven.framework_l3() as f64;
            seven < one * 1.6
        },
        format!(
            "{} (1 UE) vs {} (7 UEs) messages — volume-driven only",
            ten_one.framework_l3(),
            ten_seven.framework_l3()
        ),
    );
    let _ = f(0.0, 0);
}
