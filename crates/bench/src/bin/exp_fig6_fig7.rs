//! Figs. 6 & 7 — instantaneous current traces: D2D vs cellular transfer.
//!
//! The paper's Power Monitor captures show the qualitative difference
//! that motivates the whole design: a D2D send is a short spike that
//! dies quickly (Fig. 6), a cellular send spikes and then *lingers* in
//! high-power tail states for many seconds (Fig. 7). We reproduce both
//! traces with the emulated 0.1 s instrument and print them as text
//! series plus summary statistics.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_cellular::{CellularRadio, RrcConfig};
use hbr_d2d::TechProfile;
use hbr_energy::{EnergyMeter, PowerMonitor};
use hbr_sim::{SimDuration, SimTime};

fn trace_stats(samples: &[hbr_energy::Sample]) -> (f64, f64) {
    let peak = samples
        .iter()
        .map(|s| s.current.as_milli_amps())
        .fold(0.0, f64::max);
    let elevated = samples
        .iter()
        .filter(|s| s.current.as_milli_amps() > 50.0)
        .count() as f64
        * 0.1;
    (peak, elevated)
}

fn main() {
    let monitor = PowerMonitor::paper_instrument();

    // Fig. 6: one 54 B send over Wi-Fi Direct.
    let mut d2d_meter = EnergyMeter::new();
    let send = TechProfile::wifi_direct().send(SimTime::from_secs(1), 54, 1.0);
    for (s, seg) in &send.segments {
        d2d_meter.add_segment(*s, *seg);
    }
    let d2d_trace = monitor.trace(&d2d_meter, SimTime::ZERO, SimTime::from_secs(3));

    // Fig. 7: one 54 B send over WCDMA, tails included.
    let mut cell_meter = EnergyMeter::new();
    let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
    let out = radio.transmit(SimTime::from_secs(1), 54);
    for (s, seg) in &out.activity.segments {
        cell_meter.add_segment(*s, *seg);
    }
    for (s, seg) in &radio.finalize(SimTime::from_secs(30)).segments {
        cell_meter.add_segment(*s, *seg);
    }
    let cell_trace = monitor.trace(&cell_meter, SimTime::ZERO, SimTime::from_secs(10));

    // Print decimated series (every 0.3 s) side by side.
    let rows: Vec<Vec<String>> = (0..=33)
        .map(|i| {
            let t = i as f64 * 0.3;
            let d2d = d2d_trace
                .iter()
                .min_by_key(|s| s.time.as_millis().abs_diff((t * 1000.0) as u64))
                .map(|s| s.current.as_milli_amps())
                .unwrap_or(0.0);
            let cell = cell_trace
                .iter()
                .min_by_key(|s| s.time.as_millis().abs_diff((t * 1000.0) as u64))
                .map(|s| s.current.as_milli_amps())
                .unwrap_or(0.0);
            vec![f(t, 1), f(d2d, 0), f(cell, 0)]
        })
        .collect();
    print_table(
        "Figs. 6–7 — instantaneous current, mA (0.1 s sampling, decimated)",
        &["t (s)", "D2D (Fig 6)", "Cellular (Fig 7)"],
        &rows,
    );
    write_csv("fig6_fig7", &["t_s", "d2d_ma", "cellular_ma"], &rows)
        .expect("write results/fig6_fig7.csv");

    let (d2d_peak, d2d_elevated) = trace_stats(&d2d_trace);
    let (cell_peak, cell_elevated) = trace_stats(&cell_trace);
    println!(
        "\nD2D: peak {d2d_peak:.0} mA, elevated {d2d_elevated:.1} s, total {}",
        d2d_meter.total()
    );
    println!(
        "Cellular: peak {cell_peak:.0} mA, elevated {cell_elevated:.1} s, total {}",
        cell_meter.total()
    );

    println!("\nShape checks:");
    check(
        "D2D spike dies within ~1 s (Fig. 6)",
        d2d_elevated < 1.5,
        format!("{d2d_elevated:.1} s elevated"),
    );
    check(
        "cellular stays elevated for many seconds (Fig. 7)",
        cell_elevated > 5.0,
        format!("{cell_elevated:.1} s elevated"),
    );
    check(
        "both spike to comparable peaks",
        (d2d_peak - cell_peak).abs() / cell_peak < 0.5,
        format!("{d2d_peak:.0} vs {cell_peak:.0} mA"),
    );
    check(
        "one cellular heartbeat costs ~8× one D2D send",
        {
            let ratio =
                cell_meter.total().as_micro_amp_hours() / d2d_meter.total().as_micro_amp_hours();
            (5.0..12.0).contains(&ratio)
        },
        format!(
            "×{:.1}",
            cell_meter.total().as_micro_amp_hours() / d2d_meter.total().as_micro_amp_hours()
        ),
    );

    // Keep the monitor honest against the exact integral.
    let sampled = monitor.measure(&cell_meter, SimTime::ZERO, SimTime::from_secs(30));
    let exact = cell_meter.total();
    check(
        "sampled integral matches exact integral",
        (sampled.as_micro_amp_hours() - exact.as_micro_amp_hours()).abs()
            < 0.02 * exact.as_micro_amp_hours()
                + PowerMonitor::paper_instrument().interval().as_secs_f64() * cell_peak / 3.6,
        format!("{sampled} vs {exact}"),
    );
    let _ = SimDuration::from_secs(0);
}
