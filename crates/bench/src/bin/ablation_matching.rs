//! Ablation — relay-selection policy (§III-C's "match the available
//! relay with the shortest distance").
//!
//! Three relays sit at 2 m, 8 m and 14 m from the UE. We compare
//! nearest / random / farthest selection over many stochastic sessions:
//! expected UE energy per delivered heartbeat (including cellular
//! retransmissions after D2D losses) and the observed loss rate.

use hbr_bench::{check, f, print_table, write_csv};
use hbr_cellular::RrcConfig;
use hbr_d2d::{D2dLink, TechProfile};
use hbr_sim::{SimRng, SimTime};

#[derive(Clone, Copy)]
enum Policy {
    Nearest,
    Random,
    Farthest,
}

fn pick(policy: Policy, distances: &[f64], rng: &mut SimRng) -> f64 {
    match policy {
        Policy::Nearest => distances.iter().copied().fold(f64::INFINITY, f64::min),
        Policy::Farthest => distances.iter().copied().fold(0.0, f64::max),
        Policy::Random => *rng.pick(distances).expect("non-empty"),
    }
}

fn main() {
    let distances = [2.0, 8.0, 14.0];
    let tech = TechProfile::wifi_direct();
    let cellular_uah = RrcConfig::wcdma_galaxy_s4().full_cycle_charge_uah(54);
    let sessions = 2000;
    let forwards_per_session = 8;

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, policy) in [
        ("nearest", Policy::Nearest),
        ("random", Policy::Random),
        ("farthest", Policy::Farthest),
    ] {
        let mut rng = SimRng::seed_from(99);
        let mut total_uah = 0.0;
        let mut losses = 0u64;
        let mut delivered = 0u64;
        for _ in 0..sessions {
            let d = pick(policy, &distances, &mut rng);
            let (mut link, ue_cost, _) = D2dLink::establish(tech.clone(), SimTime::ZERO);
            total_uah += ue_cost.charge().as_micro_amp_hours();
            let mut t = link.ready_at().unwrap();
            for _ in 0..forwards_per_session {
                let out = link.transfer(t, 54, d, &mut rng);
                total_uah += out.sender.charge().as_micro_amp_hours();
                if out.success {
                    delivered += 1;
                } else {
                    losses += 1;
                    // Fallback: the heartbeat must go over cellular.
                    total_uah += cellular_uah;
                    delivered += 1;
                }
                t = out.completed_at + hbr_sim::SimDuration::from_secs(1);
            }
        }
        let per_hb = total_uah / delivered as f64;
        let loss_rate = losses as f64 / (losses + delivered) as f64;
        results.push((name, per_hb, loss_rate));
        rows.push(vec![
            name.to_string(),
            f(per_hb, 1),
            f(loss_rate * 100.0, 2),
        ]);
    }

    print_table(
        "Matching ablation — relays at 2/8/14 m, 2000 sessions × 8 forwards",
        &["Policy", "UE µAh per heartbeat", "Loss %"],
        &rows,
    );
    write_csv(
        "ablation_matching",
        &["policy", "uah_per_hb", "loss_pct"],
        &rows,
    )
    .expect("write csv");

    let nearest = results[0].1;
    let farthest = results[2].1;
    println!("\nShape checks:");
    check(
        "nearest-relay matching is the cheapest policy",
        results.iter().all(|(_, e, _)| nearest <= *e),
        format!("{nearest:.1} µAh/hb"),
    );
    check(
        "farthest is measurably worse (Fig. 12's distance slope)",
        farthest > nearest * 1.3,
        format!("{farthest:.1} vs {nearest:.1} µAh/hb"),
    );
    check(
        "random sits between the extremes",
        results[1].1 > nearest && results[1].1 < farthest,
        f(results[1].1, 1),
    );
}
