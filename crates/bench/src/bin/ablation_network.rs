//! Ablation — does the framework survive a different RRC machine?
//!
//! §III argues that schemes which modify the RRC mechanism "vary in
//! different cellular networks" and so are hard to deploy, while D2D
//! forwarding is network-agnostic. We test that claim by re-running the
//! headline experiment on an LTE-style two-state RRC machine (fast
//! promotion, one long CONNECTED tail, no FACH) next to the paper's
//! WCDMA machine.

use hbr_bench::{check, f, pct, print_table, write_csv};
use hbr_cellular::RrcConfig;
use hbr_core::config::RadioStack;
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};

fn run(cellular: RrcConfig, n: u32) -> hbr_core::experiment::ExperimentRun {
    ControlledExperiment::new(ExperimentConfig {
        ue_count: 1,
        transmissions: n,
        stack: RadioStack {
            cellular,
            ..RadioStack::default()
        },
        ..ExperimentConfig::default()
    })
    .run()
}

fn main() {
    let mut rows = Vec::new();
    for (name, cfg) in [
        ("WCDMA", RrcConfig::wcdma_galaxy_s4()),
        ("LTE", RrcConfig::lte_default()),
    ] {
        for n in [1u32, 7] {
            let r = run(cfg.clone(), n);
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                f(r.original_device_energy(), 0),
                pct(r.ue_saving()),
                pct(r.system_saving()),
                pct(r.signaling_saving()),
            ]);
        }
    }

    print_table(
        "Network ablation — the framework across RRC machines (1 UE, 1 m)",
        &[
            "Network",
            "n",
            "Cell µAh/hb",
            "UE saving",
            "System saving",
            "Signaling saving",
        ],
        &rows,
    );
    write_csv(
        "ablation_network",
        &[
            "network",
            "n",
            "cell_uah",
            "ue_saving",
            "sys_saving",
            "sig_saving",
        ],
        &rows,
    )
    .expect("csv");

    let wcdma7 = run(RrcConfig::wcdma_galaxy_s4(), 7);
    let lte7 = run(RrcConfig::lte_default(), 7);
    println!("\nShape checks:");
    check(
        "signaling is halved on both networks",
        wcdma7.signaling_saving() >= 0.45 && lte7.signaling_saving() >= 0.45,
        format!(
            "WCDMA {} / LTE {}",
            pct(wcdma7.signaling_saving()),
            pct(lte7.signaling_saving())
        ),
    );
    check(
        "the UE saves energy on both networks",
        wcdma7.ue_saving() > 0.4 && lte7.ue_saving() > 0.4,
        format!(
            "WCDMA {} / LTE {}",
            pct(wcdma7.ue_saving()),
            pct(lte7.ue_saving())
        ),
    );
    check(
        "whole-system savings hold on both networks",
        wcdma7.system_saving() > 0.1 && lte7.system_saving() > 0.1,
        format!(
            "WCDMA {} / LTE {}",
            pct(wcdma7.system_saving()),
            pct(lte7.system_saving())
        ),
    );
    check(
        "LTE's long CONNECTED tail makes per-heartbeat cellular even costlier",
        lte7.original_device_energy() > wcdma7.original_device_energy(),
        format!(
            "{} vs {} µAh per heartbeat",
            f(lte7.original_device_energy() / 7.0, 0),
            f(wcdma7.original_device_energy() / 7.0, 0)
        ),
    );
}
