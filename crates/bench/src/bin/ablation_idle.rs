//! Ablation — the honest cost of holding the D2D group open.
//!
//! The paper's bench compresses time between forwards, so the Wi-Fi
//! Direct group's keep-alive draw over the real 270 s periods never
//! shows up in its tables. This ablation turns that draw on and asks
//! whether the headline savings survive — a robustness check on the
//! paper's conclusion rather than a reproduction of one of its figures.

use hbr_bench::{check, pct, print_table, write_csv};
use hbr_core::experiment::{ControlledExperiment, ExperimentConfig};

fn main() {
    let mut rows = Vec::new();
    let mut last_with = 0.0;
    let mut last_without = 0.0;
    for n in [1u32, 3, 5, 7] {
        let without = ControlledExperiment::new(ExperimentConfig {
            transmissions: n,
            include_idle_keepalive: false,
            ..ExperimentConfig::default()
        })
        .run();
        let with = ControlledExperiment::new(ExperimentConfig {
            transmissions: n,
            include_idle_keepalive: true,
            ..ExperimentConfig::default()
        })
        .run();
        last_with = with.system_saving();
        last_without = without.system_saving();
        rows.push(vec![
            n.to_string(),
            pct(without.system_saving()),
            pct(with.system_saving()),
            pct(without.ue_saving()),
            pct(with.ue_saving()),
        ]);
    }

    print_table(
        "Idle keep-alive ablation — system/UE saving with the group held open",
        &[
            "n",
            "Sys saving (paper bench)",
            "Sys saving (honest idle)",
            "UE saving (paper bench)",
            "UE saving (honest idle)",
        ],
        &rows,
    );
    write_csv(
        "ablation_idle",
        &["n", "sys_paper", "sys_idle", "ue_paper", "ue_idle"],
        &rows,
    )
    .expect("write csv");

    println!("\nShape checks:");
    check(
        "keep-alive shaves some saving off",
        last_with < last_without,
        format!("{} → {}", pct(last_without), pct(last_with)),
    );
    check(
        "but the framework still wins with honest idle accounting",
        last_with > 0.10,
        pct(last_with),
    );
}
