//! Shared experiment-harness utilities: aligned table printing, CSV
//! output and paper-vs-measured shape checks.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (run with `cargo run -p hbr-bench --bin <exp> --release`):
//!
//! | Binary            | Regenerates                                        |
//! |-------------------|----------------------------------------------------|
//! | `exp_table1`      | Table I — heartbeat share of app messages          |
//! | `exp_table3`      | Table III — per-phase energy, UE vs relay          |
//! | `exp_table4`      | Table IV — relay receive energy vs messages        |
//! | `exp_fig6_fig7`   | Figs. 6–7 — current traces, D2D vs cellular        |
//! | `exp_fig8_fig9`   | Figs. 8–9 — energy & savings vs transmissions      |
//! | `exp_fig10_fig11` | Figs. 10–11 — multi-UE relay energy, wasted/saved  |
//! | `exp_fig12`       | Fig. 12 — energy vs communication distance         |
//! | `exp_fig13`       | Fig. 13 — energy vs message size                   |
//! | `exp_fig15`       | Fig. 15 — layer-3 messages vs transmissions        |
//! | `exp_strategies`  | extension — related-work strategy comparison       |
//! | `ablation_*`      | design-choice ablations (scheduler, matching, tech)|

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use hbr_sim::MetricsSnapshot;

pub mod crowd;
pub mod sweep;

pub use crowd::{auto_shards, cell_grid, run_crowd, CrowdConfig};
pub use sweep::{derive_seed, run_sweep, run_sweep_with_threads, sweep_threads};

/// Merges per-run [`MetricsSnapshot`]s into one, strictly in input
/// order. Since [`run_sweep`] returns results in input order, folding
/// its reports through here yields the same bytes at any thread count —
/// the merged snapshot is as reproducible as the runs themselves.
///
/// # Examples
///
/// ```
/// use hbr_sim::MetricsSnapshot;
///
/// let mut a = MetricsSnapshot::default();
/// a.counters.insert("runs".into(), 1);
/// let merged = hbr_bench::merge_snapshots([&a, &a]);
/// assert_eq!(merged.counters["runs"], 2);
/// ```
pub fn merge_snapshots<'a, I>(snapshots: I) -> MetricsSnapshot
where
    I: IntoIterator<Item = &'a MetricsSnapshot>,
{
    let mut merged = MetricsSnapshot::default();
    for snapshot in snapshots {
        merged.merge(snapshot);
    }
    merged
}

/// Prints a titled, column-aligned text table to stdout.
///
/// # Examples
///
/// ```
/// hbr_bench::print_table(
///     "Demo",
///     &["x", "y"],
///     &[vec!["1".into(), "2".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Writes the same rows as CSV under `results/<name>.csv` (created on
/// demand), so plots can be regenerated outside Rust.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let mut file = fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(file, "{}", headers.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// One paper-vs-measured shape check; prints a ✓/✗ verdict line and
/// returns whether it held.
pub fn check(label: &str, held: bool, detail: impl Display) -> bool {
    let mark = if held { "✓" } else { "✗" };
    println!("  [{mark}] {label}: {detail}");
    held
}

/// Formats a float with fixed precision for table cells.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage for table cells.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.361), "36.1%");
    }

    #[test]
    fn check_reports_verdict() {
        assert!(check("always true", true, "ok"));
        assert!(!check("always false", false, "nope"));
    }

    #[test]
    fn merge_snapshots_sums_in_order() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("hbr_flush_total".into(), 3);
        a.gauges.insert("hbr_energy_uah".into(), 1.5);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("hbr_flush_total".into(), 4);
        b.counters.insert("hbr_rrc_establish_total".into(), 2);
        let merged = merge_snapshots([&a, &b]);
        assert_eq!(merged.counters["hbr_flush_total"], 7);
        assert_eq!(merged.counters["hbr_rrc_establish_total"], 2);
        assert_eq!(merged.gauges["hbr_energy_uah"], 1.5);
        assert!(merge_snapshots([]).is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        write_csv("unit_test_tmp", &["a", "b"], &rows).unwrap();
        let text = std::fs::read_to_string("results/unit_test_tmp.csv").unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_file("results/unit_test_tmp.csv");
    }
}
