//! A parallel sweep harness for the experiment binaries.
//!
//! Every `exp_*` binary is a sweep: the same scenario run over a grid of
//! points (UE counts × transmission counts, relay shares, crowd sizes,
//! modes). The points are independent, so a sweep should saturate the
//! machine's cores — but it must stay *reproducible*: the CSVs under
//! `results/` are diffed across machines and thread counts, so the
//! output may not depend on scheduling.
//!
//! [`run_sweep`] guarantees that with two rules:
//!
//! 1. **Per-point RNG streams.** Each point gets its own [`SimRng`]
//!    seeded by [`derive_seed`]`(base_seed, index)` — a splitmix64 mix
//!    of the sweep seed and the point's position. No point ever observes
//!    randomness consumed by another, so a point's result is a pure
//!    function of `(base_seed, index, point)`.
//! 2. **Results in input order.** Workers pull points from a shared
//!    queue (whoever is free takes the next index) but the returned
//!    `Vec` is re-assembled by index, so callers build tables and CSVs
//!    exactly as if the loop had been sequential.
//!
//! Together these make the CSV output byte-identical whether the sweep
//! runs on one thread or sixteen. The container has no `rayon`, so the
//! pool is a scoped-thread work queue; `RAYON_NUM_THREADS` (the
//! conventional knob) and `HBR_THREADS` are still honoured, defaulting
//! to the machine's available parallelism.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use hbr_sim::SimRng;

/// The thread count a sweep will use: `RAYON_NUM_THREADS` if set, then
/// `HBR_THREADS`, then the machine's available parallelism. Values that
/// fail to parse (or are zero) are ignored.
pub fn sweep_threads() -> usize {
    for var in ["RAYON_NUM_THREADS", "HBR_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the seed for sweep point `index` from the sweep's base seed.
///
/// A splitmix64 finalizer over the (seed, index) pair: consecutive
/// indices land far apart in seed space, so per-point [`SimRng`] streams
/// never overlap the way `base_seed + index` style derivation can.
pub fn derive_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `worker` over every point, in parallel, returning the results
/// in input order.
///
/// The worker receives the point and a [`SimRng`] seeded from
/// `(base_seed, index)` via [`derive_seed`]; workers whose scenario
/// seeds itself internally may simply ignore the stream. Worker panics
/// propagate to the caller once the pool drains.
///
/// # Examples
///
/// ```
/// let squares = hbr_bench::run_sweep(42, vec![1u64, 2, 3], |&p, _rng| p * p);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn run_sweep<P, R, F>(base_seed: u64, points: Vec<P>, worker: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, &mut SimRng) -> R + Sync,
{
    run_sweep_with_threads(sweep_threads(), base_seed, points, worker)
}

/// [`run_sweep`] with an explicit thread count instead of the
/// environment-derived [`sweep_threads`] default.
///
/// The reproducibility tests pin both ends of the range — the same
/// faulted scenario at 1 thread and at N — and assert the outputs are
/// byte-identical, which they must be since each point's result is a
/// pure function of `(base_seed, index, point)`.
pub fn run_sweep_with_threads<P, R, F>(
    threads: usize,
    base_seed: u64,
    points: Vec<P>,
    worker: F,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, &mut SimRng) -> R + Sync,
{
    let n = points.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return points
            .iter()
            .enumerate()
            .map(|(i, p)| worker(p, &mut SimRng::seed_from(derive_seed(base_seed, i))))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut rng = SimRng::seed_from(derive_seed(base_seed, i));
                let result = worker(&points[i], &mut rng);
                done.lock().unwrap().push((i, result));
            });
        }
    });

    let mut indexed = done.into_inner().unwrap();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let points: Vec<usize> = (0..64).collect();
        let out = run_sweep(1, points.clone(), |&p, _| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn per_point_streams_are_independent_of_thread_count() {
        // The same sweep must produce the same draws however the points
        // are scheduled; emulate "one thread" by calling derive_seed
        // directly.
        let parallel = run_sweep(7, (0..32usize).collect(), |_, rng| {
            rng.range(0..1_000_000u64)
        });
        let sequential: Vec<u64> = (0..32usize)
            .map(|i| SimRng::seed_from(derive_seed(7, i)).range(0..1_000_000u64))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn derived_seeds_differ_across_points_and_bases() {
        let a: Vec<u64> = (0..100).map(|i| derive_seed(1, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_seed(2, i)).collect();
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "seed collisions across points/bases");
    }

    #[test]
    fn empty_and_single_point_sweeps() {
        let empty: Vec<u32> = run_sweep(0, Vec::<u32>::new(), |&p, _| p);
        assert!(empty.is_empty());
        assert_eq!(run_sweep(0, vec![5u32], |&p, _| p + 1), vec![6]);
    }
}
