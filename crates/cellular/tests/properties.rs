//! Property tests: RRC protocol invariants hold for arbitrary workloads.

use hbr_cellular::{CellularRadio, L3Message, RrcConfig, RrcState};
use hbr_energy::EnergyMeter;
use hbr_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn run_workload(
    cfg: RrcConfig,
    gaps_ms: &[u64],
    bytes: usize,
) -> (Vec<(SimTime, L3Message)>, EnergyMeter, u64) {
    let mut radio = CellularRadio::new(cfg);
    let mut meter = EnergyMeter::new();
    let mut messages = Vec::new();
    let mut t = SimTime::ZERO;
    for &gap in gaps_ms {
        t += SimDuration::from_millis(gap);
        let out = radio.transmit(t, bytes);
        for (s, seg) in &out.activity.segments {
            meter.add_segment(*s, *seg);
        }
        messages.extend(out.activity.messages);
        t = out.delivered_at;
    }
    let fin = radio.finalize(t + SimDuration::from_secs(60));
    for (s, seg) in &fin.segments {
        meter.add_segment(*s, *seg);
    }
    messages.extend(fin.messages);
    (messages, meter, radio.connections())
}

proptest! {
    /// Establishments and releases are balanced once the radio quiesces,
    /// and a release never precedes its establishment.
    #[test]
    fn connections_balance(gaps in proptest::collection::vec(1u64..20_000, 1..40)) {
        let (messages, _, connections) = run_workload(RrcConfig::wcdma_galaxy_s4(), &gaps, 74);
        let requests = messages
            .iter()
            .filter(|(_, m)| *m == L3Message::RrcConnectionRequest)
            .count() as u64;
        let releases = messages
            .iter()
            .filter(|(_, m)| *m == L3Message::RrcConnectionRelease)
            .count() as u64;
        prop_assert_eq!(requests, connections);
        prop_assert_eq!(releases, connections);

        // First message overall must be a connection request.
        prop_assert_eq!(messages.first().map(|(_, m)| *m),
                        Some(L3Message::RrcConnectionRequest));
        // And globally, at no prefix do releases outnumber requests.
        let mut sorted = messages.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut open = 0i64;
        for (_, m) in sorted {
            match m {
                L3Message::RrcConnectionRequest => open += 1,
                L3Message::RrcConnectionRelease => open -= 1,
                _ => {}
            }
            prop_assert!(open >= 0, "release before establishment");
        }
    }

    /// Back-to-back transmissions inside the tail reuse the connection, so
    /// signaling for n rapid messages is far below n full cycles.
    #[test]
    fn tail_reuse_saves_signaling(n in 2usize..20) {
        let gaps: Vec<u64> = std::iter::once(0)
            .chain(std::iter::repeat_n(500, n - 1)) // 0.5 s apart: inside DCH tail
            .collect();
        let (messages, _, connections) = run_workload(RrcConfig::wcdma_galaxy_s4(), &gaps, 74);
        prop_assert_eq!(connections, 1);
        // 0.5 s gaps sit entirely inside the 3 s DCH tail: no demotions
        // ever fire between transfers, so n messages cost exactly one
        // establish/demote/release cycle instead of n of them.
        let full_cycle = RrcConfig::wcdma_galaxy_s4().full_cycle_message_count();
        prop_assert_eq!(messages.len(), full_cycle);
    }

    /// Total energy is invariant to where `advance` is called between
    /// transmissions (accounting laziness never changes physics).
    #[test]
    fn advance_split_invariance(
        gaps in proptest::collection::vec(1u64..20_000, 1..20),
        probe_ms in proptest::collection::vec(1u64..120_000, 0..20),
    ) {
        let cfg = RrcConfig::wcdma_galaxy_s4();
        let (_, reference, _) = run_workload(cfg.clone(), &gaps, 74);

        // Re-run, sprinkling advance() probes at arbitrary instants.
        let mut radio = CellularRadio::new(cfg);
        let mut meter = EnergyMeter::new();
        let mut t = SimTime::ZERO;
        let mut probes = probe_ms.clone();
        probes.sort_unstable();
        let mut probe_iter = probes.into_iter();
        let mut next_probe = probe_iter.next();
        for &gap in &gaps {
            t += SimDuration::from_millis(gap);
            while let Some(p) = next_probe {
                let pt = SimTime::from_millis(p);
                if pt <= t {
                    if let Some(later) = pt.checked_since(SimTime::ZERO) {
                        let _ = later;
                    }
                    for (s, seg) in radio.advance(pt.max(SimTime::ZERO)).segments {
                        meter.add_segment(s, seg);
                    }
                    next_probe = probe_iter.next();
                } else {
                    break;
                }
            }
            let out = radio.transmit(t.max(SimTime::ZERO), 74);
            for (s, seg) in out.activity.segments {
                meter.add_segment(s, seg);
            }
            t = out.delivered_at;
        }
        for (s, seg) in radio.finalize(t + SimDuration::from_secs(60)).segments {
            meter.add_segment(s, seg);
        }
        let a = reference.total().as_micro_amp_hours();
        let b = meter.total().as_micro_amp_hours();
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
    }

    /// state_at is consistent with what a subsequent transmit observes:
    /// predicted Idle ⇒ new connection, predicted non-Idle ⇒ reuse.
    #[test]
    fn state_prediction_matches_behaviour(gap_ms in 1u64..30_000) {
        let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
        let first = radio.transmit(SimTime::ZERO, 74);
        let t2 = first.delivered_at + SimDuration::from_millis(gap_ms);
        let predicted = radio.state_at(t2);
        let second = radio.transmit(t2, 74);
        match predicted {
            RrcState::Idle => prop_assert_eq!(second.rrc_connections, 1),
            _ => prop_assert_eq!(second.rrc_connections, 0),
        }
    }

    /// State occupancy exactly partitions accounted time, whatever the
    /// workload, and the tail fraction stays in [0, 1].
    #[test]
    fn occupancy_partitions_time(gaps in proptest::collection::vec(1u64..30_000, 1..25)) {
        let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
        let mut t = SimTime::ZERO;
        for &gap in &gaps {
            t += SimDuration::from_millis(gap);
            let out = radio.transmit(t, 74);
            t = out.delivered_at;
        }
        let end = t + SimDuration::from_secs(60);
        radio.finalize(end);
        let occ = radio.occupancy();
        let total = occ.idle_secs + occ.dch_secs + occ.fach_secs;
        prop_assert!(
            (total - end.as_secs_f64()).abs() < 1e-6,
            "partition {total} vs horizon {}", end.as_secs_f64()
        );
        prop_assert!(occ.active_secs <= occ.dch_secs + 1e-9);
        let tail = occ.tail_fraction();
        prop_assert!((0.0..=1.0).contains(&tail));
    }

    /// Energy grows monotonically with the number of transmissions.
    #[test]
    fn energy_monotone_in_transmissions(n in 1usize..15) {
        let gaps_n: Vec<u64> = vec![10_000; n];
        let gaps_n1: Vec<u64> = vec![10_000; n + 1];
        let (_, m_n, _) = run_workload(RrcConfig::wcdma_galaxy_s4(), &gaps_n, 74);
        let (_, m_n1, _) = run_workload(RrcConfig::wcdma_galaxy_s4(), &gaps_n1, 74);
        prop_assert!(m_n1.total() > m_n.total());
    }
}
