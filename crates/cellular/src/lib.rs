//! The cellular substrate: RRC state machine, layer-3 signaling, power.
//!
//! The paper's target metric is **cellular signaling traffic**: every data
//! transfer over a WCDMA/LTE network first establishes a Radio Resource
//! Control (RRC) connection and later releases it, and each
//! establish/release cycle exchanges a burst of layer-3 control messages
//! with the base station (§II-B). Frequent small heartbeat transfers
//! therefore translate into disproportionate control-channel load — the
//! *signaling storm* — and into energy wasted in the radio's high-power
//! tail states (Fig. 7).
//!
//! This crate models exactly the pieces the evaluation measures:
//!
//! * [`RrcConfig`] — timers, currents, data rates and signaling message
//!   sequences; defaults are calibrated against the paper (see
//!   `RrcConfig::wcdma_galaxy_s4`).
//! * [`CellularRadio`] — a per-device lazy state machine
//!   (IDLE / CELL_DCH / CELL_FACH) that, for every transmission, yields
//!   the energy segments and the timestamped [`L3Message`]s the operation
//!   produces. This is the NetOptiMaster-equivalent capture point.
//! * [`SignalingCapture`] — the log of layer-3 messages (Fig. 14/15).
//! * [`BaseStation`] — aggregates signaling load across radios and exposes
//!   the congestion signal (paging failure) that motivates the work (§II-B).
//!
//! # Examples
//!
//! ```
//! use hbr_cellular::{CellularRadio, RrcConfig};
//! use hbr_sim::SimTime;
//!
//! let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
//! let outcome = radio.transmit(SimTime::ZERO, 74); // one WeChat heartbeat
//! assert_eq!(outcome.rrc_connections, 1);
//! assert!(!outcome.activity.messages.is_empty());
//! ```

pub mod bs;
pub mod config;
pub mod l3;
pub mod radio;

pub use bs::BaseStation;
pub use config::RrcConfig;
pub use l3::{L3Message, SignalingCapture};
pub use radio::{
    CellularRadio, RadioActivity, RrcState, RrcTransitionRecord, StateOccupancy, TransmitOutcome,
};
