//! Base-station-side aggregation: the operator's view of signaling load.
//!
//! §II-B: the operator's control channel has finite capacity, and massive
//! heartbeat-driven signaling "greatly deteriorates user experience …,
//! such as higher rate of paging failure". [`BaseStation`] collects every
//! radio's layer-3 activity and exposes the load and congestion metrics
//! the motivation section describes.

use hbr_sim::{DeviceId, SimTime};
use serde::{Deserialize, Serialize};

use crate::l3::SignalingCapture;
use crate::radio::RadioActivity;

/// One cell's control-plane bookkeeping.
///
/// # Examples
///
/// ```
/// use hbr_cellular::{BaseStation, CellularRadio, RrcConfig};
/// use hbr_sim::{DeviceId, SimTime};
///
/// let mut bs = BaseStation::new(100.0);
/// let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
/// let out = radio.transmit(SimTime::ZERO, 74);
/// bs.record(DeviceId::new(0), &out.activity, out.rrc_connections);
/// assert_eq!(bs.rrc_connections(), 1);
/// assert_eq!(bs.total_l3(), 5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaseStation {
    capture: SignalingCapture,
    rrc_connections: u64,
    /// Control-channel capacity in layer-3 messages per second.
    capacity_msgs_per_sec: f64,
}

impl BaseStation {
    /// Creates a base station whose control channel saturates at
    /// `capacity_msgs_per_sec` layer-3 messages per second.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive and finite.
    pub fn new(capacity_msgs_per_sec: f64) -> Self {
        assert!(
            capacity_msgs_per_sec.is_finite() && capacity_msgs_per_sec > 0.0,
            "control-channel capacity must be positive"
        );
        BaseStation {
            capture: SignalingCapture::new(),
            rrc_connections: 0,
            capacity_msgs_per_sec,
        }
    }

    /// A base station that keeps only aggregate counters (total layer-3
    /// messages, RRC connections), dropping the per-message capture log.
    /// The crowd engine's cells use this; see [`SignalingCapture::compact`].
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive and finite.
    pub fn compact(capacity_msgs_per_sec: f64) -> Self {
        let mut bs = BaseStation::new(capacity_msgs_per_sec);
        bs.capture = SignalingCapture::compact();
        bs
    }

    /// Records one radio's activity burst at the cell.
    pub fn record(&mut self, device: DeviceId, activity: &RadioActivity, new_connections: u32) {
        self.capture
            .record_all(device, activity.messages.iter().copied());
        self.rrc_connections += u64::from(new_connections);
    }

    /// The layer-3 capture log (the NetOptiMaster trace).
    pub fn capture(&self) -> &SignalingCapture {
        &self.capture
    }

    /// Total layer-3 messages seen by this cell.
    pub fn total_l3(&self) -> u64 {
        self.capture.total()
    }

    /// Total RRC connections established at this cell.
    pub fn rrc_connections(&self) -> u64 {
        self.rrc_connections
    }

    /// Signaling load (messages per second) over a window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or reversed.
    pub fn load(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to
            .checked_since(from)
            .expect("load window must not be reversed");
        assert!(!span.is_zero(), "load window must be non-empty");
        self.capture.count_between(from, to) as f64 / span.as_secs_f64()
    }

    /// The devices generating the most signaling, as `(device, count)`
    /// rows sorted descending — the operator's "who is storming my
    /// control channel" view.
    pub fn top_talkers(&self, limit: usize) -> Vec<(DeviceId, u64)> {
        let mut counts: std::collections::BTreeMap<DeviceId, u64> = Default::default();
        for e in self.capture.entries() {
            *counts.entry(e.device).or_insert(0) += 1;
        }
        let mut rows: Vec<(DeviceId, u64)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(limit);
        rows
    }

    /// Paging failure probability as a function of window load: zero up
    /// to 70% of capacity, then rising linearly to 1.0 at twice capacity —
    /// the "degraded network performance" regime of §II-B.
    pub fn paging_failure_probability(&self, from: SimTime, to: SimTime) -> f64 {
        let load = self.load(from, to);
        let knee = 0.7 * self.capacity_msgs_per_sec;
        let ceiling = 2.0 * self.capacity_msgs_per_sec;
        if load <= knee {
            0.0
        } else {
            ((load - knee) / (ceiling - knee)).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RrcConfig;
    use crate::radio::CellularRadio;
    use hbr_sim::SimDuration;

    fn one_heartbeat_cell() -> BaseStation {
        let mut bs = BaseStation::new(100.0);
        let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
        let out = radio.transmit(SimTime::ZERO, 74);
        bs.record(DeviceId::new(0), &out.activity, out.rrc_connections);
        let tail = radio.finalize(SimTime::from_secs(60));
        bs.record(DeviceId::new(0), &tail, 0);
        bs
    }

    #[test]
    fn full_cycle_counts_eight() {
        let bs = one_heartbeat_cell();
        assert_eq!(bs.total_l3(), 8);
        assert_eq!(bs.rrc_connections(), 1);
    }

    #[test]
    fn load_is_messages_per_second() {
        let bs = one_heartbeat_cell();
        let load = bs.load(SimTime::ZERO, SimTime::from_secs(80));
        assert!((load - 8.0 / 80.0).abs() < 1e-9);
    }

    #[test]
    fn paging_failure_kicks_in_past_the_knee() {
        let mut bs = BaseStation::new(0.5); // capacity: 0.5 msg/s
        let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
        // Hammer the cell: 50 back-to-back heartbeat cycles ≈ 1 msg/s.
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            let out = radio.transmit(t, 74);
            bs.record(DeviceId::new(0), &out.activity, out.rrc_connections);
            t = out.delivered_at + SimDuration::from_secs(6); // full release
            let tail = radio.advance(t);
            bs.record(DeviceId::new(0), &tail, 0);
        }
        let p = bs.paging_failure_probability(SimTime::ZERO, t);
        assert!(p > 0.5, "overloaded cell should page-fail often, got {p}");

        let quiet = one_heartbeat_cell();
        assert_eq!(
            quiet.paging_failure_probability(SimTime::ZERO, SimTime::from_secs(3600)),
            0.0
        );
    }

    #[test]
    fn top_talkers_ranks_devices() {
        let mut bs = BaseStation::new(100.0);
        for (dev, cycles) in [(0u32, 3usize), (1, 1), (2, 2)] {
            let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
            let mut t = SimTime::ZERO;
            for _ in 0..cycles {
                let out = radio.transmit(t, 74);
                bs.record(DeviceId::new(dev), &out.activity, out.rrc_connections);
                t = out.delivered_at + SimDuration::from_secs(10);
                bs.record(DeviceId::new(dev), &radio.advance(t), 0);
            }
        }
        let top = bs.top_talkers(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, DeviceId::new(0));
        assert_eq!(top[1].0, DeviceId::new(2));
        assert!(top[0].1 > top[1].1);
        assert!(bs.top_talkers(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_load_window_panics() {
        one_heartbeat_cell().load(SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        BaseStation::new(0.0);
    }
}
