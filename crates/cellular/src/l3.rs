//! Layer-3 signaling messages and their capture log.
//!
//! The paper measures signaling cost by capturing layer-3 messages with
//! NetOptiMaster on a WCDMA network (§V-B, Fig. 14) and counting them
//! (Fig. 15). [`SignalingCapture`] is that instrument's stand-in: every
//! RRC transition appends its timestamped messages here.

use std::fmt;

use hbr_sim::{DeviceId, SimTime};
use serde::{Deserialize, Serialize};

/// A layer-3 RRC control message, as NetOptiMaster would label it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum L3Message {
    /// UE → network: asks for an RRC connection.
    RrcConnectionRequest,
    /// Network → UE: grants the connection.
    RrcConnectionSetup,
    /// UE → network: confirms the connection.
    RrcConnectionSetupComplete,
    /// Network → UE: configures the data radio bearer.
    RadioBearerSetup,
    /// UE → network: confirms the bearer.
    RadioBearerSetupComplete,
    /// Network → UE: DCH → FACH reconfiguration (tail demotion).
    RadioBearerReconfiguration,
    /// Extra reconfiguration triggered by larger data volumes.
    TransportChannelReconfiguration,
    /// UE → network: FACH → DCH re-promotion.
    CellUpdate,
    /// Network → UE: confirms the cell update.
    CellUpdateConfirm,
    /// Network → UE: tears the connection down.
    RrcConnectionRelease,
    /// UE → network: confirms the teardown.
    RrcConnectionReleaseComplete,
    /// Network → UE: page for mobile-terminated traffic.
    PagingType1,
}

impl fmt::Display for L3Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            L3Message::RrcConnectionRequest => "RRC CONNECTION REQUEST",
            L3Message::RrcConnectionSetup => "RRC CONNECTION SETUP",
            L3Message::RrcConnectionSetupComplete => "RRC CONNECTION SETUP COMPLETE",
            L3Message::RadioBearerSetup => "RADIO BEARER SETUP",
            L3Message::RadioBearerSetupComplete => "RADIO BEARER SETUP COMPLETE",
            L3Message::RadioBearerReconfiguration => "RADIO BEARER RECONFIGURATION",
            L3Message::TransportChannelReconfiguration => "TRANSPORT CHANNEL RECONFIGURATION",
            L3Message::CellUpdate => "CELL UPDATE",
            L3Message::CellUpdateConfirm => "CELL UPDATE CONFIRM",
            L3Message::RrcConnectionRelease => "RRC CONNECTION RELEASE",
            L3Message::RrcConnectionReleaseComplete => "RRC CONNECTION RELEASE COMPLETE",
            L3Message::PagingType1 => "PAGING TYPE 1",
        };
        f.write_str(s)
    }
}

/// One captured entry: which device exchanged which message, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedMessage {
    /// Capture timestamp.
    pub time: SimTime,
    /// The device whose radio exchanged the message.
    pub device: DeviceId,
    /// The message type.
    pub message: L3Message,
}

/// The layer-3 capture log — the simulation's NetOptiMaster.
///
/// # Examples
///
/// ```
/// use hbr_cellular::{L3Message, SignalingCapture};
/// use hbr_sim::{DeviceId, SimTime};
///
/// let mut capture = SignalingCapture::new();
/// capture.record(SimTime::ZERO, DeviceId::new(0), L3Message::RrcConnectionRequest);
/// assert_eq!(capture.total(), 1);
/// assert_eq!(capture.count_for(DeviceId::new(0)), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SignalingCapture {
    entries: Vec<CapturedMessage>,
    counted: u64,
    compact: bool,
}

impl SignalingCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        SignalingCapture::default()
    }

    /// Creates a capture that keeps only the message count, dropping the
    /// per-message log. [`SignalingCapture::total`] behaves exactly as
    /// on a full capture; entry-level queries ([`SignalingCapture::entries`],
    /// [`SignalingCapture::count_for`], rate windows) see an empty log.
    /// The crowd engine uses this so a city-scale cell does not retain
    /// every layer-3 message it ever saw.
    pub fn compact() -> Self {
        SignalingCapture {
            compact: true,
            ..SignalingCapture::default()
        }
    }

    /// Appends one message to the log.
    pub fn record(&mut self, time: SimTime, device: DeviceId, message: L3Message) {
        self.counted += 1;
        if self.compact {
            return;
        }
        self.entries.push(CapturedMessage {
            time,
            device,
            message,
        });
    }

    /// Appends a batch of `(time, message)` pairs for one device.
    pub fn record_all<I>(&mut self, device: DeviceId, messages: I)
    where
        I: IntoIterator<Item = (SimTime, L3Message)>,
    {
        for (time, message) in messages {
            self.record(time, device, message);
        }
    }

    /// Every captured entry, in capture order.
    pub fn entries(&self) -> &[CapturedMessage] {
        &self.entries
    }

    /// Total number of captured layer-3 messages — the paper's y-axis in
    /// Fig. 15.
    pub fn total(&self) -> u64 {
        self.counted
    }

    /// Messages attributed to one device.
    pub fn count_for(&self, device: DeviceId) -> u64 {
        self.entries.iter().filter(|e| e.device == device).count() as u64
    }

    /// Messages captured in the half-open window `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.time >= from && e.time < to)
            .count() as u64
    }

    /// Count of a specific message type.
    pub fn count_of(&self, message: L3Message) -> u64 {
        self.entries.iter().filter(|e| e.message == message).count() as u64
    }

    /// Merges another capture into this one, keeping time order stable by
    /// re-sorting on (time, insertion order is preserved for ties).
    pub fn merge(&mut self, other: &SignalingCapture) {
        self.counted += other.counted;
        self.entries.extend_from_slice(&other.entries);
        self.entries.sort_by_key(|e| e.time);
    }

    /// Histogram of captured message types, sorted by descending count —
    /// the composition view an operator dashboard shows.
    pub fn histogram(&self) -> Vec<(L3Message, u64)> {
        let mut counts: std::collections::BTreeMap<L3Message, u64> = Default::default();
        for e in &self.entries {
            *counts.entry(e.message).or_insert(0) += 1;
        }
        let mut out: Vec<(L3Message, u64)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Messages per second over the capture's span ([`None`] when the
    /// capture holds fewer than two entries).
    pub fn rate(&self) -> Option<f64> {
        let first = self.entries.first()?.time;
        let last = self.entries.last()?.time;
        let span = last.checked_since(first)?.as_secs_f64();
        (span > 0.0).then(|| self.entries.len() as f64 / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        DeviceId::new(i)
    }

    #[test]
    fn records_and_counts() {
        let mut c = SignalingCapture::new();
        c.record(
            SimTime::from_secs(1),
            dev(0),
            L3Message::RrcConnectionRequest,
        );
        c.record(SimTime::from_secs(2), dev(1), L3Message::RrcConnectionSetup);
        c.record(
            SimTime::from_secs(3),
            dev(0),
            L3Message::RrcConnectionRelease,
        );
        assert_eq!(c.total(), 3);
        assert_eq!(c.count_for(dev(0)), 2);
        assert_eq!(c.count_for(dev(9)), 0);
        assert_eq!(c.count_of(L3Message::RrcConnectionSetup), 1);
    }

    #[test]
    fn window_is_half_open() {
        let mut c = SignalingCapture::new();
        for s in 1..=5 {
            c.record(SimTime::from_secs(s), dev(0), L3Message::CellUpdate);
        }
        assert_eq!(
            c.count_between(SimTime::from_secs(2), SimTime::from_secs(4)),
            2
        );
        assert_eq!(c.count_between(SimTime::ZERO, SimTime::from_secs(100)), 5);
    }

    #[test]
    fn record_all_batches() {
        let mut c = SignalingCapture::new();
        c.record_all(
            dev(3),
            vec![
                (SimTime::ZERO, L3Message::RrcConnectionRequest),
                (SimTime::from_millis(40), L3Message::RrcConnectionSetup),
            ],
        );
        assert_eq!(c.count_for(dev(3)), 2);
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = SignalingCapture::new();
        a.record(SimTime::from_secs(5), dev(0), L3Message::CellUpdate);
        let mut b = SignalingCapture::new();
        b.record(SimTime::from_secs(1), dev(1), L3Message::PagingType1);
        a.merge(&b);
        assert_eq!(a.entries()[0].device, dev(1));
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn histogram_counts_and_sorts() {
        let mut c = SignalingCapture::new();
        for _ in 0..3 {
            c.record(SimTime::ZERO, dev(0), L3Message::CellUpdate);
        }
        c.record(SimTime::from_secs(1), dev(0), L3Message::PagingType1);
        let hist = c.histogram();
        assert_eq!(hist[0], (L3Message::CellUpdate, 3));
        assert_eq!(hist[1], (L3Message::PagingType1, 1));
    }

    #[test]
    fn rate_needs_a_span() {
        let mut c = SignalingCapture::new();
        assert_eq!(c.rate(), None);
        c.record(SimTime::ZERO, dev(0), L3Message::CellUpdate);
        assert_eq!(c.rate(), None, "zero span");
        c.record(SimTime::from_secs(10), dev(0), L3Message::CellUpdate);
        assert_eq!(c.rate(), Some(0.2));
    }

    #[test]
    fn display_names_are_nonempty() {
        for m in [
            L3Message::RrcConnectionRequest,
            L3Message::RadioBearerReconfiguration,
            L3Message::PagingType1,
        ] {
            assert!(!format!("{m}").is_empty());
        }
    }
}
