//! RRC configuration: timers, currents, rates, signaling sequences.
//!
//! # Calibration
//!
//! The defaults in [`RrcConfig::wcdma_galaxy_s4`] are fitted to the
//! paper's measurements rather than to any datasheet:
//!
//! * **Energy.** A full IDLE → DCH → (tail) → IDLE cycle carrying one
//!   small heartbeat integrates to ≈ 581 µAh. That constant is derived
//!   from the paper's own numbers: at one forwarded message the D2D system
//!   "reaches nearly the same energy consumption as the original system"
//!   (Fig. 9), i.e.
//!   `E_cell ≈ (discovery + connection)_UE+relay + send_UE + receive_relay
//!   = 132.24 + 63.74 + 122.50 + 60.29 + 73.09 + 129 ≈ 581 µAh`
//!   using Table III/IV values. With that E_cell, the UE-side saving at
//!   one message is `1 − 269.07/581 ≈ 54%`, matching the paper's 55%.
//! * **Trace shape.** The cycle spends ≈ 2 s promoting, a short active
//!   burst, then ≈ 5.5 s of DCH/FACH tail — reproducing the ~8 s elevated
//!   plateau of Fig. 7 against the ~1 s spike of Fig. 6.
//! * **Signaling.** One establish/release cycle exchanges 8 layer-3
//!   messages (5 establishment + 1 demotion + 2 release), matching the
//!   ≈ 8 messages/transmission slope of the original system in Fig. 15.
//!   Every extra kilobyte in one connection adds one
//!   `TransportChannelReconfiguration`, reproducing the slight growth the
//!   paper observes for relays serving more UEs.

use hbr_energy::MilliAmps;
use hbr_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::l3::L3Message;

/// Full parameter set for a [`CellularRadio`](crate::CellularRadio).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrcConfig {
    /// Time to promote IDLE → CELL_DCH (RRC connection establishment).
    pub promotion_delay: SimDuration,
    /// Time to re-promote CELL_FACH → CELL_DCH.
    pub fach_promotion_delay: SimDuration,
    /// Inactivity timer before CELL_DCH demotes to CELL_FACH (T1).
    pub dch_tail: SimDuration,
    /// Inactivity timer before CELL_FACH demotes to IDLE (T2). Zero
    /// disables the FACH state entirely (LTE-style two-state machine).
    pub fach_tail: SimDuration,
    /// Current drawn while promoting.
    pub promotion_current: MilliAmps,
    /// Current drawn during active transfer in CELL_DCH.
    pub active_current: MilliAmps,
    /// Current drawn while lingering in CELL_DCH (the tail problem).
    pub dch_tail_current: MilliAmps,
    /// Current drawn in CELL_FACH.
    pub fach_current: MilliAmps,
    /// Uplink goodput in bytes per second while in CELL_DCH.
    pub uplink_bytes_per_sec: f64,
    /// Minimum active-transfer duration, whatever the payload size.
    pub min_active: SimDuration,
    /// One extra `TransportChannelReconfiguration` per this many payload
    /// bytes beyond the first chunk (0 disables volume signaling).
    pub volume_signaling_chunk: usize,
}

impl RrcConfig {
    /// WCDMA parameters calibrated to the paper's Galaxy S4 measurements;
    /// see the module docs for the derivation.
    pub fn wcdma_galaxy_s4() -> Self {
        RrcConfig {
            promotion_delay: SimDuration::from_millis(2_000),
            fach_promotion_delay: SimDuration::from_millis(900),
            dch_tail: SimDuration::from_millis(3_000),
            fach_tail: SimDuration::from_millis(2_500),
            promotion_current: MilliAmps::new(300.0),
            active_current: MilliAmps::new(600.0),
            dch_tail_current: MilliAmps::new(350.0),
            fach_current: MilliAmps::new(130.0),
            uplink_bytes_per_sec: 200_000.0,
            min_active: SimDuration::from_millis(200),
            volume_signaling_chunk: 1024,
        }
    }

    /// LTE-style two-state machine: faster promotion, a single long
    /// connected tail, no FACH.
    pub fn lte_default() -> Self {
        RrcConfig {
            promotion_delay: SimDuration::from_millis(260),
            fach_promotion_delay: SimDuration::from_millis(0),
            dch_tail: SimDuration::from_millis(10_000),
            fach_tail: SimDuration::ZERO,
            promotion_current: MilliAmps::new(450.0),
            active_current: MilliAmps::new(700.0),
            dch_tail_current: MilliAmps::new(300.0),
            fach_current: MilliAmps::new(0.0),
            uplink_bytes_per_sec: 1_000_000.0,
            min_active: SimDuration::from_millis(100),
            volume_signaling_chunk: 4096,
        }
    }

    /// `true` when the FACH intermediate state is modelled.
    pub fn has_fach(&self) -> bool {
        !self.fach_tail.is_zero()
    }

    /// Active-transfer duration for a payload of `bytes`.
    pub fn transfer_duration(&self, bytes: usize) -> SimDuration {
        let rate = SimDuration::from_secs_f64(bytes as f64 / self.uplink_bytes_per_sec);
        rate.max(self.min_active)
    }

    /// Layer-3 sequence for IDLE → DCH establishment (5 messages).
    pub fn establishment_messages(&self) -> &'static [L3Message] {
        &[
            L3Message::RrcConnectionRequest,
            L3Message::RrcConnectionSetup,
            L3Message::RrcConnectionSetupComplete,
            L3Message::RadioBearerSetup,
            L3Message::RadioBearerSetupComplete,
        ]
    }

    /// Layer-3 sequence for FACH → DCH re-promotion (2 messages).
    pub fn repromotion_messages(&self) -> &'static [L3Message] {
        &[L3Message::CellUpdate, L3Message::CellUpdateConfirm]
    }

    /// Layer-3 sequence for DCH → FACH demotion (1 message).
    pub fn demotion_messages(&self) -> &'static [L3Message] {
        &[L3Message::RadioBearerReconfiguration]
    }

    /// Layer-3 sequence for connection release (2 messages).
    pub fn release_messages(&self) -> &'static [L3Message] {
        &[
            L3Message::RrcConnectionRelease,
            L3Message::RrcConnectionReleaseComplete,
        ]
    }

    /// Extra volume-driven messages for a payload of `bytes`.
    pub fn volume_messages(&self, bytes: usize) -> usize {
        bytes.checked_div(self.volume_signaling_chunk).unwrap_or(0)
    }

    /// Predicted charge (µAh) of one full RRC cycle carrying `bytes` from
    /// IDLE: promotion + active transfer + DCH tail + FACH tail. This is
    /// the per-heartbeat cellular cost the UE-side energy pre-judgment
    /// compares D2D sessions against.
    pub fn full_cycle_charge_uah(&self, bytes: usize) -> f64 {
        let mas = self.promotion_current.as_milli_amps() * self.promotion_delay.as_secs_f64()
            + self.active_current.as_milli_amps() * self.transfer_duration(bytes).as_secs_f64()
            + self.dch_tail_current.as_milli_amps() * self.dch_tail.as_secs_f64()
            + self.fach_current.as_milli_amps() * self.fach_tail.as_secs_f64();
        mas / 3.6
    }

    /// Layer-3 messages in one full establish + demote + release cycle for
    /// a small payload: the per-heartbeat signaling cost of the original
    /// system.
    pub fn full_cycle_message_count(&self) -> usize {
        self.establishment_messages().len()
            + if self.has_fach() {
                self.demotion_messages().len()
            } else {
                0
            }
            + self.release_messages().len()
    }
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig::wcdma_galaxy_s4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcdma_cycle_is_eight_messages() {
        // 5 establishment + 1 demotion + 2 release = 8 — the Fig. 15 slope.
        assert_eq!(RrcConfig::wcdma_galaxy_s4().full_cycle_message_count(), 8);
    }

    #[test]
    fn lte_cycle_skips_fach() {
        let lte = RrcConfig::lte_default();
        assert!(!lte.has_fach());
        assert_eq!(lte.full_cycle_message_count(), 7);
    }

    #[test]
    fn transfer_duration_floors_at_min_active() {
        let cfg = RrcConfig::wcdma_galaxy_s4();
        assert_eq!(cfg.transfer_duration(54), cfg.min_active);
        assert!(cfg.transfer_duration(1_000_000) > cfg.min_active);
    }

    #[test]
    fn volume_messages_scale_with_bytes() {
        let cfg = RrcConfig::wcdma_galaxy_s4();
        assert_eq!(cfg.volume_messages(54), 0);
        assert_eq!(cfg.volume_messages(2_500), 2);
        let mut free = cfg.clone();
        free.volume_signaling_chunk = 0;
        assert_eq!(free.volume_messages(1 << 20), 0);
    }

    #[test]
    fn calibrated_cycle_energy_near_581_uah() {
        // promotion 2 s × 300 mA + active 0.2 s × 600 mA
        // + DCH tail 3 s × 350 mA + FACH 2.5 s × 130 mA
        // = (600 + 120 + 1050 + 325) mA·s = 2095 mA·s ≈ 581.9 µAh.
        let cfg = RrcConfig::wcdma_galaxy_s4();
        let mas = cfg.promotion_current.as_milli_amps() * cfg.promotion_delay.as_secs_f64()
            + cfg.active_current.as_milli_amps() * cfg.min_active.as_secs_f64()
            + cfg.dch_tail_current.as_milli_amps() * cfg.dch_tail.as_secs_f64()
            + cfg.fach_current.as_milli_amps() * cfg.fach_tail.as_secs_f64();
        let uah = mas / 3.6;
        assert!(
            (uah - 581.0).abs() < 5.0,
            "calibrated cycle = {uah:.1} µAh, expected ≈ 581"
        );
    }
}
