//! The per-device RRC state machine.
//!
//! [`CellularRadio`] is *lazy*: instead of scheduling demotion timers on
//! the global event queue, it records how long it has occupied each state
//! the next time anyone interacts with it (or at
//! [`CellularRadio::finalize`]). The returned [`RadioActivity`] carries
//! the exact absolute-time energy segments and layer-3 messages the radio
//! produced, which the caller feeds into the device's
//! [`EnergyMeter`](hbr_energy::EnergyMeter) and the scenario's
//! [`SignalingCapture`](crate::SignalingCapture). Laziness keeps the
//! radio self-contained and unit-testable while producing exactly the
//! same traces an eagerly-timed model would.

use hbr_energy::{MilliAmps, Phase, Segment};
use hbr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::RrcConfig;
use crate::l3::L3Message;

/// The RRC protocol state of a radio (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrcState {
    /// No RRC connection; the radio only listens to paging.
    Idle,
    /// Dedicated channel: full power, full rate (WCDMA CELL_DCH / LTE
    /// CONNECTED).
    CellDch,
    /// Shared low-rate channel (WCDMA CELL_FACH).
    CellFach,
}

impl RrcState {
    /// Short lowercase label for metrics and event streams (`"idle"`,
    /// `"dch"`, `"fach"`).
    pub fn label(self) -> &'static str {
        match self {
            RrcState::Idle => "idle",
            RrcState::CellDch => "dch",
            RrcState::CellFach => "fach",
        }
    }

    /// `true` if a radio observed in `self` may legally be observed in
    /// `next` some time later (§II-B state machine, under the lazy
    /// accounting this module uses: several internal hops may collapse
    /// into one observed step, e.g. DCH → FACH → IDLE between two
    /// observations reads as DCH → IDLE).
    ///
    /// The single impossible observation is `Idle → CellFach`: FACH is
    /// only reachable by demotion from DCH, and any activity from IDLE
    /// promotes straight to DCH first — so an idle radio can never be
    /// seen in FACH without an intervening DCH observation.
    pub fn can_transition_to(self, next: RrcState) -> bool {
        !matches!((self, next), (RrcState::Idle, RrcState::CellFach))
    }
}

/// One observed RRC state change, with how long the radio dwelt in the
/// state it left — the raw material for state-residency histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RrcTransitionRecord {
    /// When the radio entered `to`.
    pub at: SimTime,
    /// The state left behind.
    pub from: RrcState,
    /// The state entered.
    pub to: RrcState,
    /// Time spent in `from` before this transition.
    pub dwell: SimDuration,
}

/// Energy segments and layer-3 messages produced by radio operations,
/// stamped with absolute times.
#[derive(Debug, Clone, Default)]
pub struct RadioActivity {
    /// `(absolute start, segment)` pairs to feed an `EnergyMeter`.
    pub segments: Vec<(SimTime, Segment)>,
    /// Timestamped layer-3 messages to feed a `SignalingCapture`.
    pub messages: Vec<(SimTime, L3Message)>,
    /// RRC state changes this activity caused, in time order.
    pub transitions: Vec<RrcTransitionRecord>,
}

impl RadioActivity {
    /// Appends all records of `other`.
    pub fn extend(&mut self, other: RadioActivity) {
        self.segments.extend(other.segments);
        self.messages.extend(other.messages);
        self.transitions.extend(other.transitions);
    }

    fn push_segment(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        current: MilliAmps,
        phase: Phase,
    ) {
        if duration.is_zero() {
            return;
        }
        self.segments.push((
            start,
            Segment {
                offset: SimDuration::ZERO,
                duration,
                current,
                phase,
            },
        ));
    }
}

/// The result of one [`CellularRadio::transmit`] call.
#[derive(Debug, Clone)]
pub struct TransmitOutcome {
    /// Energy and signaling produced by the transmission (and any state
    /// housekeeping that happened first).
    pub activity: RadioActivity,
    /// When the last payload byte reaches the network — heartbeats are
    /// considered delivered to the IM server at this instant.
    pub delivered_at: SimTime,
    /// 1 if this transmission had to establish a new RRC connection,
    /// 0 if it rode an existing one (DCH occupancy or FACH re-promotion).
    pub rrc_connections: u32,
}

/// Cumulative time the radio spent in each RRC state — the occupancy
/// breakdown RRC-optimisation papers (and operators) reason about.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateOccupancy {
    /// Seconds in IDLE (camped, paging only).
    pub idle_secs: f64,
    /// Seconds in CELL_DCH, split below into active vs tail.
    pub dch_secs: f64,
    /// Seconds of the DCH time that were actual transfer/promotion.
    pub active_secs: f64,
    /// Seconds in CELL_FACH.
    pub fach_secs: f64,
}

impl StateOccupancy {
    /// Fraction of non-idle time that was pure tail (energy wasted
    /// waiting for timers) — the inefficiency fast dormancy attacks.
    pub fn tail_fraction(&self) -> f64 {
        let connected = self.dch_secs + self.fach_secs;
        if connected == 0.0 {
            0.0
        } else {
            (connected - self.active_secs).max(0.0) / connected
        }
    }
}

/// A per-device cellular radio with a lazily evaluated RRC state machine.
///
/// # Examples
///
/// ```
/// use hbr_cellular::{CellularRadio, RrcConfig, RrcState};
/// use hbr_sim::SimTime;
///
/// let mut radio = CellularRadio::new(RrcConfig::wcdma_galaxy_s4());
/// assert_eq!(radio.state_at(SimTime::ZERO), RrcState::Idle);
///
/// let outcome = radio.transmit(SimTime::ZERO, 74);
/// assert_eq!(outcome.rrc_connections, 1);
/// // Right after the transfer the radio sits in its DCH tail.
/// assert_eq!(radio.state_at(outcome.delivered_at), RrcState::CellDch);
/// ```
#[derive(Debug, Clone)]
pub struct CellularRadio {
    cfg: RrcConfig,
    state: RrcState,
    /// When the current state began. For `CellDch` this is the end of the
    /// last active transfer, i.e. the start of the tail.
    state_since: SimTime,
    /// When the current state was *entered* (for `CellDch`, the original
    /// promotion instant — unlike `state_since`, repeated transfers do
    /// not reset it). Drives dwell times in [`RrcTransitionRecord`]s.
    entered_at: SimTime,
    /// Occupancy energy has been recorded up to this instant.
    accounted_until: SimTime,
    total_connections: u64,
    total_transmissions: u64,
    total_bytes: u64,
    occupancy: StateOccupancy,
}

impl CellularRadio {
    /// Creates an idle radio at time zero.
    pub fn new(cfg: RrcConfig) -> Self {
        CellularRadio {
            cfg,
            state: RrcState::Idle,
            state_since: SimTime::ZERO,
            entered_at: SimTime::ZERO,
            accounted_until: SimTime::ZERO,
            total_connections: 0,
            total_transmissions: 0,
            total_bytes: 0,
            occupancy: StateOccupancy::default(),
        }
    }

    /// Cumulative per-state occupancy up to the last accounted instant.
    pub fn occupancy(&self) -> StateOccupancy {
        self.occupancy
    }

    /// The configuration this radio runs with.
    pub fn config(&self) -> &RrcConfig {
        &self.cfg
    }

    /// Total RRC connections established so far.
    pub fn connections(&self) -> u64 {
        self.total_connections
    }

    /// Total transmissions performed so far.
    pub fn transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// Total payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.total_bytes
    }

    /// The protocol state the radio would be in at `at` (assuming no
    /// further transmissions). Does not mutate accounting.
    pub fn state_at(&self, at: SimTime) -> RrcState {
        match self.state {
            RrcState::Idle => RrcState::Idle,
            RrcState::CellDch => {
                let demote = self.state_since.saturating_add(self.cfg.dch_tail);
                if at < demote {
                    RrcState::CellDch
                } else if self.cfg.has_fach() {
                    let release = demote.saturating_add(self.cfg.fach_tail);
                    if at < release {
                        RrcState::CellFach
                    } else {
                        RrcState::Idle
                    }
                } else {
                    RrcState::Idle
                }
            }
            RrcState::CellFach => {
                let release = self.state_since.saturating_add(self.cfg.fach_tail);
                if at < release {
                    RrcState::CellFach
                } else {
                    RrcState::Idle
                }
            }
        }
    }

    /// Moves the machine into `to` at `at`, recording the transition
    /// (and the dwell completed in the state left behind) into
    /// `activity`.
    fn enter(&mut self, activity: &mut RadioActivity, at: SimTime, to: RrcState) {
        activity.transitions.push(RrcTransitionRecord {
            at,
            from: self.state,
            to,
            dwell: at.saturating_since(self.entered_at),
        });
        self.state = to;
        self.state_since = at;
        self.entered_at = at;
    }

    /// Brings the state machine's accounting up to `now`, applying any
    /// demotions whose timers expired, and returns the energy/signaling
    /// that occupancy produced. Call this at scenario end (`finalize`) or
    /// before reading time-sensitive state.
    pub fn advance(&mut self, now: SimTime) -> RadioActivity {
        let mut activity = RadioActivity::default();
        if now <= self.accounted_until {
            return activity;
        }
        loop {
            match self.state {
                RrcState::Idle => {
                    self.occupancy.idle_secs += (now - self.accounted_until).as_secs_f64();
                    self.accounted_until = now;
                    break;
                }
                RrcState::CellDch => {
                    let demote_at = self.state_since.saturating_add(self.cfg.dch_tail);
                    if now < demote_at {
                        self.occupancy.dch_secs += (now - self.accounted_until).as_secs_f64();
                        activity.push_segment(
                            self.accounted_until,
                            now - self.accounted_until,
                            self.cfg.dch_tail_current,
                            Phase::CellularTail,
                        );
                        self.accounted_until = now;
                        break;
                    }
                    self.occupancy.dch_secs += (demote_at - self.accounted_until).as_secs_f64();
                    activity.push_segment(
                        self.accounted_until,
                        demote_at - self.accounted_until,
                        self.cfg.dch_tail_current,
                        Phase::CellularTail,
                    );
                    self.accounted_until = demote_at;
                    if self.cfg.has_fach() {
                        for m in self.cfg.demotion_messages() {
                            activity.messages.push((demote_at, *m));
                        }
                        self.enter(&mut activity, demote_at, RrcState::CellFach);
                    } else {
                        for m in self.cfg.release_messages() {
                            activity.messages.push((demote_at, *m));
                        }
                        self.enter(&mut activity, demote_at, RrcState::Idle);
                    }
                }
                RrcState::CellFach => {
                    let release_at = self.state_since.saturating_add(self.cfg.fach_tail);
                    if now < release_at {
                        self.occupancy.fach_secs += (now - self.accounted_until).as_secs_f64();
                        activity.push_segment(
                            self.accounted_until,
                            now - self.accounted_until,
                            self.cfg.fach_current,
                            Phase::CellularTail,
                        );
                        self.accounted_until = now;
                        break;
                    }
                    self.occupancy.fach_secs += (release_at - self.accounted_until).as_secs_f64();
                    activity.push_segment(
                        self.accounted_until,
                        release_at - self.accounted_until,
                        self.cfg.fach_current,
                        Phase::CellularTail,
                    );
                    self.accounted_until = release_at;
                    for m in self.cfg.release_messages() {
                        activity.messages.push((release_at, *m));
                    }
                    self.enter(&mut activity, release_at, RrcState::Idle);
                }
            }
        }
        activity
    }

    /// Transmits `bytes` of payload starting at `now`.
    ///
    /// Handles whatever RRC work is needed first — establishment from
    /// IDLE (5 layer-3 messages across the ~2 s promotion), re-promotion
    /// from FACH, or nothing if the radio is still in its DCH window —
    /// then the active transfer itself, plus any data-volume signaling.
    ///
    /// A transfer requested while the previous one is still in the air
    /// (i.e. `now` before the last `delivered_at`) queues behind it: the
    /// radio serialises, exactly like the single TX chain in a phone.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> TransmitOutcome {
        let now = now.max(self.accounted_until);
        let mut activity = self.advance(now);
        let mut new_connections = 0u32;

        let transfer_start = match self.state {
            RrcState::Idle => {
                new_connections = 1;
                self.total_connections += 1;
                let msgs = self.cfg.establishment_messages();
                let n = msgs.len() as u64;
                for (i, m) in msgs.iter().enumerate() {
                    // Spread the handshake across the promotion window, the
                    // way a real capture shows it.
                    let offset = SimDuration::from_micros(
                        self.cfg.promotion_delay.as_micros() * i as u64 / n.max(1),
                    );
                    activity.messages.push((now + offset, *m));
                }
                activity.push_segment(
                    now,
                    self.cfg.promotion_delay,
                    self.cfg.promotion_current,
                    Phase::CellularPromotion,
                );
                now + self.cfg.promotion_delay
            }
            RrcState::CellFach => {
                for m in self.cfg.repromotion_messages() {
                    activity.messages.push((now, *m));
                }
                activity.push_segment(
                    now,
                    self.cfg.fach_promotion_delay,
                    self.cfg.promotion_current,
                    Phase::CellularPromotion,
                );
                now + self.cfg.fach_promotion_delay
            }
            RrcState::CellDch => now,
        };

        let duration = self.cfg.transfer_duration(bytes);
        activity.push_segment(
            transfer_start,
            duration,
            self.cfg.active_current,
            Phase::CellularActive,
        );
        for _ in 0..self.cfg.volume_messages(bytes) {
            activity
                .messages
                .push((transfer_start, L3Message::TransportChannelReconfiguration));
        }

        let delivered_at = transfer_start + duration;
        let busy = (delivered_at - now).as_secs_f64();
        self.occupancy.dch_secs += busy;
        self.occupancy.active_secs += busy;
        if self.state != RrcState::CellDch {
            self.enter(&mut activity, now, RrcState::CellDch);
        }
        self.state_since = delivered_at; // tail timer restarts after activity
        self.accounted_until = delivered_at;
        self.total_transmissions += 1;
        self.total_bytes += bytes as u64;

        TransmitOutcome {
            activity,
            delivered_at,
            rrc_connections: new_connections,
        }
    }

    /// Flushes all remaining tail occupancy up to `now`. Alias of
    /// [`CellularRadio::advance`] named for call sites at scenario end.
    pub fn finalize(&mut self, now: SimTime) -> RadioActivity {
        self.advance(now)
    }

    /// Receives a mobile-terminated payload of `bytes` announced by a
    /// page at `now` — the downlink path IM pushes travel when the
    /// heartbeat machinery has kept the session alive.
    ///
    /// From IDLE the network first sends a `PagingType1` on the paging
    /// channel and the radio answers with a full RRC establishment; from
    /// a connected state the payload rides the existing channel without
    /// paging. Energy and state effects are identical to an uplink
    /// transfer of the same size (the model does not distinguish TX/RX
    /// power).
    pub fn receive_paged(&mut self, now: SimTime, bytes: usize) -> TransmitOutcome {
        let now = now.max(self.accounted_until);
        let needs_page = self.state_at(now) == RrcState::Idle;
        let mut outcome = self.transmit(now, bytes);
        if needs_page {
            // The page precedes the connection request in the capture.
            outcome
                .activity
                .messages
                .insert(0, (now, L3Message::PagingType1));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_energy::EnergyMeter;

    fn radio() -> CellularRadio {
        CellularRadio::new(RrcConfig::wcdma_galaxy_s4())
    }

    #[test]
    fn only_idle_to_fach_is_illegal() {
        use RrcState::*;
        for from in [Idle, CellDch, CellFach] {
            for to in [Idle, CellDch, CellFach] {
                let legal = from.can_transition_to(to);
                assert_eq!(
                    legal,
                    !(from == Idle && to == CellFach),
                    "{from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn observed_states_follow_legal_transitions() {
        // Drive a radio through a full cycle, observing at many instants;
        // every consecutive pair of observations must be legal.
        let mut r = radio();
        let out = r.transmit(SimTime::from_secs(5), 74);
        let mut prev = RrcState::Idle;
        for s in 0..40 {
            let at = out.delivered_at + SimDuration::from_millis(s * 500);
            let state = r.state_at(at);
            assert!(prev.can_transition_to(state), "{prev:?} -> {state:?}");
            prev = state;
        }
        assert_eq!(prev, RrcState::Idle, "tails must have expired");
    }

    fn apply(meter: &mut EnergyMeter, activity: &RadioActivity) {
        for (start, seg) in &activity.segments {
            meter.add_segment(*start, *seg);
        }
    }

    #[test]
    fn full_cycle_energy_matches_calibration() {
        let mut r = radio();
        let mut meter = EnergyMeter::new();
        let out = r.transmit(SimTime::ZERO, 74);
        apply(&mut meter, &out.activity);
        // Let every tail expire.
        let tail = r.finalize(SimTime::from_secs(60));
        apply(&mut meter, &tail);
        let uah = meter.total().as_micro_amp_hours();
        assert!(
            (uah - 581.0).abs() < 10.0,
            "one heartbeat cycle = {uah:.1} µAh, calibrated to ≈ 581"
        );
    }

    #[test]
    fn full_cycle_signaling_is_eight_messages() {
        let mut r = radio();
        let out = r.transmit(SimTime::ZERO, 74);
        assert_eq!(out.activity.messages.len(), 5, "establishment = 5 msgs");
        let tail = r.finalize(SimTime::from_secs(60));
        assert_eq!(tail.messages.len(), 3, "demotion 1 + release 2");
        assert_eq!(out.rrc_connections, 1);
    }

    #[test]
    fn dch_reuse_needs_no_new_connection() {
        let mut r = radio();
        let first = r.transmit(SimTime::ZERO, 74);
        // Second transfer 1 s after delivery: still inside the 3 s DCH tail.
        let t2 = first.delivered_at + SimDuration::from_secs(1);
        let second = r.transmit(t2, 74);
        assert_eq!(second.rrc_connections, 0);
        assert!(second
            .activity
            .messages
            .iter()
            .all(|(_, m)| *m != L3Message::RrcConnectionRequest));
        assert_eq!(r.connections(), 1);
    }

    #[test]
    fn fach_repromotion_uses_cell_update() {
        let mut r = radio();
        let first = r.transmit(SimTime::ZERO, 74);
        // 4 s after delivery: DCH tail (3 s) expired, inside FACH (2.5 s).
        let t2 = first.delivered_at + SimDuration::from_secs(4);
        assert_eq!(r.state_at(t2), RrcState::CellFach);
        let second = r.transmit(t2, 74);
        assert_eq!(second.rrc_connections, 0);
        assert!(second
            .activity
            .messages
            .iter()
            .any(|(_, m)| *m == L3Message::CellUpdate));
    }

    #[test]
    fn idle_after_both_tails() {
        let mut r = radio();
        let first = r.transmit(SimTime::ZERO, 74);
        let later = first.delivered_at + SimDuration::from_secs(10);
        assert_eq!(r.state_at(later), RrcState::Idle);
        let second = r.transmit(later, 74);
        assert_eq!(second.rrc_connections, 1);
        assert_eq!(r.connections(), 2);
    }

    #[test]
    fn tail_energy_is_split_on_interleaved_advance() {
        let mut a = radio();
        let mut b = radio();
        let out_a = a.transmit(SimTime::ZERO, 74);
        let out_b = b.transmit(SimTime::ZERO, 74);
        assert_eq!(out_a.delivered_at, out_b.delivered_at);

        // Radio A is advanced in two steps, radio B in one; totals must match.
        let mut meter_a = EnergyMeter::new();
        let mut meter_b = EnergyMeter::new();
        apply(&mut meter_a, &out_a.activity);
        apply(&mut meter_b, &out_b.activity);
        let mid = out_a.delivered_at + SimDuration::from_millis(1_500);
        apply(&mut meter_a, &a.advance(mid));
        apply(&mut meter_a, &a.advance(SimTime::from_secs(60)));
        apply(&mut meter_b, &b.advance(SimTime::from_secs(60)));
        let ea = meter_a.total().as_micro_amp_hours();
        let eb = meter_b.total().as_micro_amp_hours();
        assert!(
            (ea - eb).abs() < 1e-6,
            "split advance changed energy: {ea} vs {eb}"
        );
    }

    #[test]
    fn volume_signaling_grows_with_payload() {
        let mut r = radio();
        let out = r.transmit(SimTime::ZERO, 3_000);
        let reconfigs = out
            .activity
            .messages
            .iter()
            .filter(|(_, m)| *m == L3Message::TransportChannelReconfiguration)
            .count();
        assert_eq!(reconfigs, 2);
    }

    #[test]
    fn lte_two_state_machine_releases_directly() {
        let mut r = CellularRadio::new(RrcConfig::lte_default());
        let out = r.transmit(SimTime::ZERO, 74);
        let tail = r.finalize(SimTime::from_secs(60));
        assert_eq!(out.rrc_connections, 1);
        // LTE: no RadioBearerReconfiguration demotion, straight to release.
        assert!(tail.activity_messages_contains(L3Message::RrcConnectionRelease));
        assert!(!tail.activity_messages_contains(L3Message::RadioBearerReconfiguration));
    }

    impl RadioActivity {
        fn activity_messages_contains(&self, needle: L3Message) -> bool {
            self.messages.iter().any(|(_, m)| *m == needle)
        }
    }

    #[test]
    fn delivered_at_reflects_promotion_and_rate() {
        let cfg = RrcConfig::wcdma_galaxy_s4();
        let mut r = CellularRadio::new(cfg.clone());
        let out = r.transmit(SimTime::ZERO, 74);
        assert_eq!(
            out.delivered_at,
            SimTime::ZERO + cfg.promotion_delay + cfg.min_active
        );
        assert_eq!(r.transmissions(), 1);
        assert_eq!(r.bytes_sent(), 74);
    }

    #[test]
    fn occupancy_partitions_time_and_exposes_the_tail() {
        let mut r = radio();
        let out = r.transmit(SimTime::ZERO, 74);
        let _ = r.finalize(SimTime::from_secs(100));
        let occ = r.occupancy();
        // Total accounted time = 100 s, split across states.
        let total = occ.idle_secs + occ.dch_secs + occ.fach_secs;
        assert!((total - 100.0).abs() < 1e-6, "partition broke: {total}");
        // Active time = promotion (2 s) + transfer (0.2 s).
        assert!((occ.active_secs - 2.2).abs() < 1e-6);
        // Tail: 3 s DCH + 2.5 s FACH of 7.7 s connected ≈ 71%.
        assert!((occ.tail_fraction() - 5.5 / 7.7).abs() < 0.01);
        let _ = out;
    }

    #[test]
    fn occupancy_empty_radio_is_zero() {
        let r = radio();
        assert_eq!(r.occupancy(), StateOccupancy::default());
        assert_eq!(r.occupancy().tail_fraction(), 0.0);
    }

    #[test]
    fn paged_receive_from_idle_pages_then_establishes() {
        let mut r = radio();
        let out = r.receive_paged(SimTime::ZERO, 512);
        assert_eq!(out.rrc_connections, 1);
        assert_eq!(out.activity.messages[0].1, L3Message::PagingType1);
        assert_eq!(out.activity.messages[1].1, L3Message::RrcConnectionRequest);
    }

    #[test]
    fn paged_receive_in_tail_skips_the_page() {
        let mut r = radio();
        let first = r.transmit(SimTime::ZERO, 74);
        // Still inside the DCH tail: the downlink rides the open channel.
        let out = r.receive_paged(first.delivered_at + SimDuration::from_secs(1), 512);
        assert_eq!(out.rrc_connections, 0);
        assert!(out
            .activity
            .messages
            .iter()
            .all(|(_, m)| *m != L3Message::PagingType1));
    }

    #[test]
    fn advance_is_idempotent() {
        let mut r = radio();
        r.transmit(SimTime::ZERO, 74);
        let first = r.advance(SimTime::from_secs(60));
        assert!(!first.segments.is_empty());
        let second = r.advance(SimTime::from_secs(60));
        assert!(second.segments.is_empty());
        assert!(second.messages.is_empty());
    }

    #[test]
    fn transitions_cover_the_full_cycle_with_dwells() {
        let cfg = RrcConfig::wcdma_galaxy_s4();
        let mut r = CellularRadio::new(cfg.clone());
        let out = r.transmit(SimTime::from_secs(10), 74);
        assert_eq!(out.activity.transitions.len(), 1);
        let promo = out.activity.transitions[0];
        assert_eq!((promo.from, promo.to), (RrcState::Idle, RrcState::CellDch));
        assert_eq!(promo.at, SimTime::from_secs(10));
        assert_eq!(promo.dwell, SimDuration::from_secs(10), "10 s idle first");

        let tail = r.finalize(SimTime::from_secs(100));
        let pairs: Vec<_> = tail.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            pairs,
            vec![
                (RrcState::CellDch, RrcState::CellFach),
                (RrcState::CellFach, RrcState::Idle),
            ]
        );
        // DCH dwell = promotion + transfer + DCH tail; FACH dwell = FACH tail.
        let dch_dwell = cfg.promotion_delay + cfg.min_active + cfg.dch_tail;
        assert_eq!(tail.transitions[0].dwell, dch_dwell);
        assert_eq!(tail.transitions[1].dwell, cfg.fach_tail);
        assert!(tail
            .transitions
            .iter()
            .all(|t| t.from.can_transition_to(t.to)));
    }

    #[test]
    fn dch_reuse_records_no_transition() {
        let mut r = radio();
        let first = r.transmit(SimTime::ZERO, 74);
        let second = r.transmit(first.delivered_at + SimDuration::from_secs(1), 74);
        assert!(
            second.activity.transitions.is_empty(),
            "riding the open DCH window is not a state change"
        );
    }

    #[test]
    fn state_labels_are_lowercase_and_distinct() {
        assert_eq!(RrcState::Idle.label(), "idle");
        assert_eq!(RrcState::CellDch.label(), "dch");
        assert_eq!(RrcState::CellFach.label(), "fach");
    }

    #[test]
    fn overlapping_transmissions_serialise() {
        let mut r = radio();
        let first = r.transmit(SimTime::from_secs(10), 74);
        // Requested mid-flight: queues behind the first transfer instead of
        // rewriting history.
        let second = r.transmit(SimTime::from_secs(10), 74);
        assert!(second.delivered_at >= first.delivered_at);
        assert_eq!(
            second.rrc_connections, 0,
            "back-to-back transfers share the connection"
        );
    }
}
