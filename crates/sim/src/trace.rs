//! Bounded execution tracing.
//!
//! Scenario debugging needs to answer "what happened around t = 812 s?"
//! without drowning in events. [`Tracer`] is a bounded, explicitly
//! enabled event log: subsystems record one-line entries, the ring
//! evicts the oldest beyond the capacity, and the result renders as
//! plain text.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One recorded trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// A short static category, e.g. `"flush"`, `"fallback"`.
    pub label: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}s] {:<10} {}",
            self.time.as_secs_f64(),
            self.label,
            self.detail
        )
    }
}

/// A bounded ring of [`TraceEntry`]s. A capacity of zero disables
/// recording entirely (and makes [`Tracer::record`] free).
///
/// # Examples
///
/// ```
/// use hbr_sim::{SimTime, Tracer};
///
/// let mut tracer = Tracer::with_capacity(2);
/// tracer.record(SimTime::from_secs(1), "a", "first");
/// tracer.record(SimTime::from_secs(2), "b", "second");
/// tracer.record(SimTime::from_secs(3), "c", "third");
/// // The ring kept only the newest two entries.
/// assert_eq!(tracer.len(), 2);
/// assert_eq!(tracer.iter().next().unwrap().label, "b");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer (capacity zero).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer keeping at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one entry (a no-op when disabled).
    ///
    /// Stored times are clamped to nondecreasing order — the event loop
    /// only moves forward, but a handler may stamp a completion instant
    /// a hair ahead of still-queued events — which is what lets
    /// [`between`](Self::between) binary-search the ring.
    pub fn record(&mut self, time: SimTime, label: &'static str, detail: impl Into<String>) {
        if self.capacity == 0 {
            return;
        }
        // Entries arrive in *event* order, which is almost — but not
        // exactly — time order: a handler acting at a transfer's
        // completion instant (e.g. a capacity flush at packet arrival)
        // stamps a time slightly ahead of events still queued before
        // that instant. Clamp to nondecreasing so `between` can keep
        // binary-searching; the skew is bounded by one transfer.
        let time = self.entries.back().map_or(time, |last| last.time.max(time));
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            label,
            detail: detail.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries the ring evicted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries whose time lies in `[from, to)`.
    ///
    /// The ring is time-sorted (see [`record`](Self::record)), so both
    /// window edges are found by binary search and the iterator walks
    /// only the matching slice — O(log n) to locate a window instead of
    /// scanning the whole ring.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEntry> {
        let start = self.entries.partition_point(|e| e.time < from);
        let end = self.entries.partition_point(|e| e.time < to);
        self.entries.range(start..end.max(start))
    }

    /// Renders the retained entries as text, one per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier entries evicted …\n", self.dropped));
        }
        for entry in &self.entries {
            out.push_str(&entry.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, "x", "ignored");
        assert!(t.is_empty());
        assert_eq!(t.to_text(), "");
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5u64 {
            t.record(SimTime::from_secs(i), "tick", format!("#{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let labels: Vec<_> = t.iter().map(|e| e.detail.clone()).collect();
        assert_eq!(labels, vec!["#2", "#3", "#4"]);
        assert!(t.to_text().starts_with("… 2 earlier entries evicted …"));
    }

    #[test]
    fn between_filters_by_time() {
        let mut t = Tracer::with_capacity(10);
        for i in 0..10u64 {
            t.record(SimTime::from_secs(i), "tick", "");
        }
        let window: Vec<_> = t
            .between(SimTime::from_secs(3), SimTime::from_secs(6))
            .collect();
        assert_eq!(window.len(), 3);
        assert_eq!(window[0].time, SimTime::from_secs(3));
    }

    #[test]
    fn between_handles_edges_and_duplicates() {
        let mut t = Tracer::with_capacity(16);
        for secs in [1u64, 2, 2, 2, 5, 8] {
            t.record(SimTime::from_secs(secs), "tick", "");
        }
        // All duplicates at t=2 are included; the half-open end excludes
        // the entry sitting exactly at `to`.
        assert_eq!(
            t.between(SimTime::from_secs(2), SimTime::from_secs(5))
                .count(),
            3
        );
        // Windows before, after and between entries are empty.
        assert_eq!(t.between(SimTime::ZERO, SimTime::from_secs(1)).count(), 0);
        assert_eq!(
            t.between(SimTime::from_secs(3), SimTime::from_secs(5))
                .count(),
            0
        );
        assert_eq!(
            t.between(SimTime::from_secs(9), SimTime::from_secs(99))
                .count(),
            0
        );
        // A reversed window is empty rather than a panic.
        assert_eq!(
            t.between(SimTime::from_secs(5), SimTime::from_secs(2))
                .count(),
            0
        );
        // The whole-ring window matches iter().
        assert_eq!(
            t.between(SimTime::ZERO, SimTime::from_secs(100)).count(),
            t.len()
        );
    }

    #[test]
    fn out_of_order_entry_is_clamped_to_keep_the_ring_sorted() {
        let mut t = Tracer::with_capacity(8);
        // A handler acting at a transfer-completion instant stamps a
        // time ahead of events still queued before it.
        t.record(SimTime::from_secs(10), "flush", "at completion");
        t.record(SimTime::from_secs(9), "tick", "queued earlier");
        let times: Vec<_> = t.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![SimTime::from_secs(10), SimTime::from_secs(10)]);
        // The clamped ring stays binary-searchable.
        assert_eq!(
            t.between(SimTime::from_secs(10), SimTime::from_secs(11))
                .count(),
            2
        );
    }

    #[test]
    fn display_is_readable() {
        let mut t = Tracer::with_capacity(1);
        t.record(SimTime::from_millis(1500), "flush", "relay dev#0, 3 hbs");
        let text = t.to_text();
        assert!(text.contains("1.500s"));
        assert!(text.contains("flush"));
        assert!(text.contains("3 hbs"));
    }
}
