//! Small summary-statistics helpers used by the experiment reports.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Online summary of a stream of `f64` samples: count, sum, min, max, mean.
///
/// # Examples
///
/// ```
/// use hbr_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), Some(2.0));
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN sample would silently poison every
    /// derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Summary::record called with NaN");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or [`None`] before any sample arrives.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or [`None`] before any sample arrives.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or [`None`] before any sample arrives.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count, mean, self.min, self.max
            ),
            None => write!(f, "n=0 (empty)"),
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// A named monotonically increasing counter, used for tallies such as
/// "layer-3 messages" or "expired heartbeats".
///
/// # Examples
///
/// ```
/// use hbr_sim::Counter;
///
/// let mut rrc = Counter::default();
/// rrc.add(3);
/// rrc.incr();
/// assert_eq!(rrc.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(format!("{s}"), "n=0 (empty)");
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [4.0, -2.0, 10.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 12.0);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(-2.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn summary_merge() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(format!("{c}"), "10");
    }
}
