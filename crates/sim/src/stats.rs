//! Small summary-statistics helpers used by the experiment reports.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Online summary of a stream of `f64` samples: count, sum, min, max,
/// mean, and variance (Welford's algorithm — one pass, no sample
/// storage, numerically stable).
///
/// # Examples
///
/// ```
/// use hbr_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), Some(2.0));
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// assert_eq!(s.variance(), Some(2.0 / 3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Welford running mean (kept separately from `sum / count` for the
    /// update's stability; the public [`mean`](Self::mean) stays derived
    /// from the sum so existing outputs do not move).
    welford_mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            welford_mean: 0.0,
            m2: 0.0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN sample would silently poison every
    /// derived statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Summary::record called with NaN");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let delta = value - self.welford_mean;
        self.welford_mean += delta / self.count as f64;
        self.m2 += delta * (value - self.welford_mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or [`None`] before any sample arrives.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, or [`None`] before any sample arrives.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or [`None`] before any sample arrives.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance (`M2 / n`), or [`None`] before any sample
    /// arrives. A single sample has variance `0`.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or [`None`] before any sample
    /// arrives.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another summary into this one, combining the variance
    /// accumulators with the parallel formula (Chan et al.): the result
    /// matches recording both sample streams into a single summary, up
    /// to floating-point rounding.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = other.welford_mean - self.welford_mean;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.welford_mean += delta * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count, mean, self.min, self.max
            ),
            None => write!(f, "n=0 (empty)"),
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// A named monotonically increasing counter, used for tallies such as
/// "layer-3 messages" or "expired heartbeats".
///
/// # Examples
///
/// ```
/// use hbr_sim::Counter;
///
/// let mut rrc = Counter::default();
/// rrc.add(3);
/// rrc.incr();
/// assert_eq!(rrc.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(format!("{s}"), "n=0 (empty)");
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [4.0, -2.0, 10.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 12.0);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(-2.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn summary_merge() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn variance_matches_the_two_pass_formula() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = samples.into_iter().collect();
        // Textbook set: population variance 4, stddev 2.
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        // Single sample: defined, and zero.
        let one: Summary = [42.0].into_iter().collect();
        assert_eq!(one.variance(), Some(0.0));
        assert_eq!(Summary::new().variance(), None);
        assert_eq!(Summary::new().stddev(), None);
    }

    #[test]
    fn merged_variance_equals_sequential_variance() {
        // Splitting a stream at any point and merging must give the
        // same moments as recording it sequentially (Chan et al.).
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let whole: Summary = samples.iter().copied().collect();
        for split in [0usize, 1, 13, 50, 99, 100] {
            let mut left: Summary = samples[..split].iter().copied().collect();
            let right: Summary = samples[split..].iter().copied().collect();
            left.merge(&right);
            assert_eq!(left.count(), whole.count());
            assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
            assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Naive sum-of-squares cancels catastrophically here; Welford
        // keeps the small spread around a huge mean.
        let offset = 1.0e9;
        let s: Summary = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .into_iter()
            .collect();
        assert!((s.variance().unwrap() - 22.5).abs() < 1e-6);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(format!("{c}"), "10");
    }
}
