//! The discrete-event engine: a virtual clock plus a stable priority queue.
//!
//! Two properties matter for reproducibility and are guaranteed here:
//!
//! 1. **Total, stable ordering.** Events fire in non-decreasing time order;
//!    events scheduled for the same instant fire in the order they were
//!    scheduled (FIFO), never in heap-internal order.
//! 2. **Lazy cancellation.** [`Simulation::cancel`] marks an event dead in
//!    O(log n) amortised without disturbing the heap; dead events are
//!    skipped at pop time. This is how timers (feedback timeouts, RRC tail
//!    timers, scheduler deadlines) are retracted.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, used to [`cancel`](Simulation::cancel)
/// it before it fires.
///
/// # Examples
///
/// ```
/// use hbr_sim::{SimDuration, Simulation};
///
/// let mut sim = Simulation::new();
/// let id = sim.schedule_after(SimDuration::from_secs(5), "timeout");
/// assert!(sim.cancel(id));
/// assert!(sim.pop().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// An event returned by [`Simulation::pop`]: the payload plus the instant
/// and handle it fired with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredEvent<E> {
    /// The instant the event fired; equals [`Simulation::now`] right after
    /// the pop.
    pub time: SimTime,
    /// The handle the event was scheduled under.
    pub id: EventId,
    /// The scheduled payload.
    pub event: E,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the earliest
    /// event first, with the lowest sequence number breaking ties.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation: virtual clock + event queue.
///
/// The engine is generic over the event payload `E`; each subsystem defines
/// its own event enum and drives the loop itself via [`Simulation::pop`],
/// which keeps the borrow of the simulation short so handlers can schedule
/// follow-up events freely.
///
/// # Examples
///
/// ```
/// use hbr_sim::{SimDuration, SimTime, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.schedule_at(SimTime::from_secs(2), 2u32);
/// sim.schedule_at(SimTime::from_secs(1), 1u32);
///
/// let first = sim.pop().expect("an event is queued");
/// assert_eq!((first.time, first.event), (SimTime::from_secs(1), 1));
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    next_id: u64,
    /// Ids currently sitting in `queue`, so `cancel` is O(1).
    live: HashSet<EventId>,
    cancelled: HashSet<EventId>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            live: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// The current virtual time. Advances only when events are popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `event` to fire at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`Simulation::now`]: scheduling in
    /// the past is always a logic error in a discrete-event model.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {now}",
            now = self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time,
            seq,
            id,
            event,
        });
        self.live.insert(id);
        id
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        let time = self.now.saturating_add(delay);
        self.schedule_at(time, event)
    }

    /// Schedules `event` to fire at the current instant, after every event
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// The firing time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.queue.peek().map(|s| s.time)
    }

    /// Pops the next live event, advancing the clock to its firing time.
    /// Returns [`None`] when the queue is exhausted (the clock then stays
    /// where it is).
    pub fn pop(&mut self) -> Option<FiredEvent<E>> {
        self.skip_cancelled();
        let scheduled = self.queue.pop()?;
        debug_assert!(scheduled.time >= self.now);
        self.live.remove(&scheduled.id);
        self.now = scheduled.time;
        Some(FiredEvent {
            time: scheduled.time,
            id: scheduled.id,
            event: scheduled.event,
        })
    }

    /// Pops the next live event only if it fires at or before `limit`.
    ///
    /// Unlike [`Simulation::pop`], this never advances the clock past
    /// `limit`: when the next event is later (or absent) the clock is moved
    /// exactly to `limit` and [`None`] is returned, which makes bounded
    /// `while let` loops natural:
    ///
    /// ```
    /// use hbr_sim::{SimDuration, SimTime, Simulation};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule_after(SimDuration::from_secs(1), ());
    /// sim.schedule_after(SimDuration::from_secs(10), ());
    ///
    /// let mut fired = 0;
    /// while let Some(_ev) = sim.pop_until(SimTime::from_secs(5)) {
    ///     fired += 1;
    /// }
    /// assert_eq!(fired, 1);
    /// assert_eq!(sim.now(), SimTime::from_secs(5));
    /// assert_eq!(sim.pending(), 1);
    /// ```
    pub fn pop_until(&mut self, limit: SimTime) -> Option<FiredEvent<E>> {
        self.skip_cancelled();
        match self.queue.peek() {
            Some(s) if s.time <= limit => self.pop(),
            _ => {
                if limit > self.now {
                    self.now = limit;
                }
                None
            }
        }
    }

    /// Runs the event loop until `limit`, dispatching each event to
    /// `handler`. The handler receives the simulation itself, so it can
    /// schedule or cancel follow-up events.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F)
    where
        F: FnMut(&mut Self, FiredEvent<E>),
    {
        while let Some(fired) = self.pop_until(limit) {
            handler(self, fired);
        }
    }

    /// Drops cancelled entries sitting at the top of the heap so `peek`/
    /// `pop` always observe a live event.
    fn skip_cancelled(&mut self) {
        while let Some(top) = self.queue.peek() {
            if self.cancelled.remove(&top.id) {
                self.queue.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(3), "c");
        sim.schedule_at(SimTime::from_secs(1), "a");
        sim.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|f| f.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Simulation::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|f| f.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops_only() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.pop();
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.pop().is_none());
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut sim = Simulation::new();
        let keep = sim.schedule_at(SimTime::from_secs(1), "keep");
        let drop = sim.schedule_at(SimTime::from_secs(2), "drop");
        assert!(sim.cancel(drop));
        assert!(!sim.cancel(drop), "double cancel reports false");
        let fired = sim.pop().unwrap();
        assert_eq!(fired.id, keep);
        assert!(sim.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut sim = Simulation::new();
        let id = sim.schedule_at(SimTime::from_secs(1), ());
        sim.pop();
        assert!(!sim.cancel(id));
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulation<()> = Simulation::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn pending_counts_live_events() {
        let mut sim = Simulation::new();
        let a = sim.schedule_at(SimTime::from_secs(1), ());
        sim.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        assert!(!sim.is_idle());
        sim.pop();
        assert!(sim.is_idle());
    }

    #[test]
    fn pop_until_respects_limit_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(9), 9);
        assert_eq!(sim.pop_until(SimTime::from_secs(5)).unwrap().event, 1);
        assert!(sim.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // The later event is still live and fires once the limit allows.
        assert_eq!(sim.pop_until(SimTime::from_secs(10)).unwrap().event, 9);
    }

    #[test]
    fn run_until_dispatches_and_allows_rescheduling() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(1), 0u32);
        let mut fired = Vec::new();
        sim.run_until(SimTime::from_secs(10), |sim, ev| {
            fired.push((ev.time, ev.event));
            if ev.event < 3 {
                sim.schedule_after(SimDuration::from_secs(2), ev.event + 1);
            }
        });
        assert_eq!(
            fired,
            vec![
                (SimTime::from_secs(1), 0),
                (SimTime::from_secs(3), 1),
                (SimTime::from_secs(5), 2),
                (SimTime::from_secs(7), 3),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.pop();
        sim.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulation::new();
        let first = sim.schedule_at(SimTime::from_secs(1), ());
        sim.schedule_at(SimTime::from_secs(2), ());
        sim.cancel(first);
        assert_eq!(sim.peek_time(), Some(SimTime::from_secs(2)));
    }
}
