//! Deterministic observability: a metrics registry and a typed event
//! stream.
//!
//! The evaluation (§V) lives on *why* things happened — which of
//! Algorithm 1's three conditions flushed a batch, how long radios
//! dwelt in each RRC state, where the energy went. This module gives
//! every subsystem a shared, zero-cost-when-disabled place to record
//! those quantities:
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   [`Histogram`]s. Bucket boundaries are static and counts are
//!   integers, so a snapshot is byte-identical at any sweep thread
//!   count (like the golden-trace artifacts).
//! * [`TelemetryEvent`] / [`EventLog`] — a typed event stream
//!   (flushes, RRC transitions, relay matches, fallbacks, faults,
//!   energy phases) serialized as JSONL for machine consumption and the
//!   `hbr timeline` explainer.
//! * [`MetricsSnapshot`] — an immutable, mergeable copy of a registry
//!   that renders as JSON and as a Prometheus-style text exposition.
//!
//! # Determinism rules
//!
//! Exported artifacts may contain **no wall-clock values**: every time
//! is a [`SimTime`], every count an integer, every float derived from
//! simulated quantities. Map iteration uses `BTreeMap`, merges happen
//! in caller-defined (input) order, and float formatting uses Rust's
//! shortest-roundtrip `{}` — so two runs of the same scenario produce
//! byte-identical files, regardless of machine or thread count.
//!
//! # Examples
//!
//! ```
//! use hbr_sim::telemetry::{MetricsRegistry, DWELL_BUCKETS};
//!
//! let mut m = MetricsRegistry::enabled();
//! m.incr("hbr_flush_total{reason=\"capacity\"}");
//! m.observe("hbr_rrc_dwell_seconds{state=\"dch\"}", DWELL_BUCKETS, 4.2);
//! let snap = m.snapshot();
//! assert!(snap.to_json().contains("hbr_flush_total"));
//! assert!(snap.to_prometheus().contains("bucket"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::SimTime;

/// RRC state-dwell and D2D latency buckets, seconds.
pub const DWELL_BUCKETS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0];

/// Relay buffer occupancy / aggregation size buckets (heartbeats).
pub const SIZE_BUCKETS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Queueing-delay buckets, seconds (up against the 270 s relay period).
pub const DELAY_BUCKETS: &[f64] = &[1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 270.0];

/// A fixed-bucket histogram: static upper boundaries, integer counts.
///
/// The boundary slice is part of the histogram's identity — observing
/// into the same name with different boundaries panics, which keeps the
/// exported artifact schema stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds (`le`), ascending. A final `+Inf` bucket
    /// is implicit.
    bounds: &'static [f64],
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over the given static boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN — it would land in no bucket and poison the sum.
    pub fn observe(&mut self, value: f64) {
        assert!(!value.is_nan(), "Histogram::observe called with NaN");
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// The static bucket boundaries.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts (the last entry is the `+Inf` overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the boundary slices differ — two histograms under one
    /// name must share a schema.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket boundaries"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A registry of named metrics. Disabled registries make every record
/// call a cheap early return and snapshot to an empty artifact.
///
/// Metric names follow the Prometheus convention, with any labels
/// inlined: `hbr_flush_total{reason="capacity"}`. `BTreeMap` keys give
/// every export a stable order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// A disabled registry: all record calls are no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// An enabled registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// `true` if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments the named counter by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the named gauge (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Adds to the named gauge (for additive quantities like joules).
    pub fn add_gauge(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        *self.gauges.entry(name.to_string()).or_insert(0.0) += value;
    }

    /// Observes one sample into the named histogram, creating it over
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &'static [f64], value: f64) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An immutable, mergeable copy of a [`MetricsRegistry`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counts, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values, by metric name.
    pub gauges: BTreeMap<String, f64>,
    /// Distributions, by metric name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// `true` if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges another snapshot into this one: counters and histogram
    /// buckets add, gauges add (they carry additive quantities here).
    /// Deterministic as long as callers merge in a fixed order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[..],"counts":[..],"count":n,"sum":x}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, n)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), n);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"bounds\":[", json_string(name));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*b));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, json_f64(h.sum));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms expand into cumulative `_bucket{le=...}` series plus
    /// `_count` and `_sum`, exactly as a scrape endpoint would show them.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, n) in &self.counters {
            let _ = writeln!(out, "{name} {n}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name} {}", json_f64(*v));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let le = json_f64(*bound);
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{}le=\"{le}\"}} {cumulative}",
                    prefix_labels(labels)
                );
            }
            cumulative += h.counts.last().copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{base}_bucket{{{}le=\"+Inf\"}} {cumulative}",
                prefix_labels(labels)
            );
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_count{suffix} {}", h.count);
            let _ = writeln!(out, "{base}_sum{suffix} {}", json_f64(h.sum));
        }
        out
    }
}

/// Splits `name{labels}` into `(name, labels)`; labels may be empty.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Existing labels followed by a comma, or nothing — so a `le` label can
/// always be appended inside one brace pair.
fn prefix_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Formats a float for JSON: Rust's shortest-roundtrip `{}` notation is
/// deterministic across platforms, with integral values kept integral
/// (`3` not `3.0` would be ambiguous with counters, so keep the `.0`).
pub fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// JSON-escapes and quotes a string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One typed telemetry event. Every variant carries enough context to
/// explain itself in a timeline without joining against other streams.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A relay flushed its aggregation buffer (Algorithm 1 fired).
    Flush {
        /// The flushing relay's index.
        device: u32,
        /// Which of the three conditions fired (`"capacity"`,
        /// `"expiration"`, `"period"`) — or `"outage-queued"` when the
        /// batch had to wait out a cellular outage.
        reason: &'static str,
        /// Collected (forwarded) heartbeats in the batch.
        buffered: usize,
        /// The relay's own heartbeats sent along.
        own: usize,
        /// Total payload bytes.
        bytes: usize,
    },
    /// A radio's RRC state machine moved.
    RrcTransition {
        /// The device whose radio moved.
        device: u32,
        /// State label before (`"idle"`, `"dch"`, `"fach"`).
        from: &'static str,
        /// State label after.
        to: &'static str,
        /// How long the radio dwelt in `from`, seconds.
        dwell_secs: f64,
    },
    /// A UE matched a relay and starts establishing a D2D link.
    RelayMatch {
        /// The matching UE.
        device: u32,
        /// The chosen relay.
        relay: u32,
    },
    /// A UE's attachment tore down (link close, rematch, fault, death).
    RelayDepart {
        /// The detaching UE.
        device: u32,
        /// The relay it was attached to.
        relay: u32,
    },
    /// A heartbeat took the cellular fallback path.
    Fallback {
        /// The rescuing device.
        device: u32,
        /// Why (`"feedback-timeout"`, `"d2d-down"`, `"blackout"`,
        /// `"no-relay"`, `"relay-rejected"`).
        cause: &'static str,
    },
    /// The reliable-delivery layer scheduled a D2D retransmission for a
    /// heartbeat whose first attempt failed (transfer loss, feedback
    /// miss, or relay departure).
    Retry {
        /// The source device whose heartbeat is being retried.
        device: u32,
        /// Why (`"transfer-failed"`, `"feedback-timeout"`,
        /// `"relay-departed"`).
        cause: &'static str,
        /// 1-based retransmission attempt number.
        attempt: u32,
    },
    /// A UE re-matched to a different relay after its previous one
    /// failed it (departure or feedback timeout) — one hop, then the
    /// cellular fallback.
    Handover {
        /// The UE performing the handover.
        device: u32,
        /// The relay that failed it.
        from_relay: u32,
        /// The newly matched relay.
        to_relay: u32,
    },
    /// A fault-plan entry fired.
    FaultInjected {
        /// The entry's index in the [`FaultPlan`](crate::fault::FaultPlan).
        index: usize,
        /// Fault kind label (`"link-drop"`, `"cellular-outage"`, ...).
        kind: &'static str,
        /// The targeted device, if the kind has one.
        device: Option<u32>,
    },
    /// Per-phase-group energy a device accumulated (emitted at scenario
    /// end, one event per non-zero group).
    EnergyPhase {
        /// The device.
        device: u32,
        /// Phase-group label (`"Discovery"`, `"Cellular"`, ...).
        group: &'static str,
        /// Charge drawn in that group, µAh.
        uah: f64,
    },
    /// The fleet-level digest the sharded crowd engine folds from every
    /// cell's epoch pulse at a barrier (one event per epoch; fleet
    /// scope, so no device).
    FleetPulse {
        /// Epoch index, 0-based.
        epoch: u32,
        /// Cells that contributed to the fold.
        cells: u32,
        /// Cumulative D2D forwards across the fleet.
        forwards: u64,
        /// Cumulative cellular fallbacks across the fleet.
        fallbacks: u64,
        /// Heartbeats queued behind cellular outages at the barrier.
        outage_queued: u64,
        /// Cumulative layer-3 messages across every cell.
        l3: u64,
        /// Cumulative server-accepted heartbeats (reliable-delivery
        /// ledger; 0 when the layer is off).
        delivered: u64,
        /// Cumulative D2D retransmissions scheduled by the
        /// reliable-delivery layer.
        retries: u64,
    },
}

impl TelemetryEvent {
    /// The event's kind tag, as serialized in the `event` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::Flush { .. } => "flush",
            TelemetryEvent::RrcTransition { .. } => "rrc",
            TelemetryEvent::RelayMatch { .. } => "match",
            TelemetryEvent::RelayDepart { .. } => "depart",
            TelemetryEvent::Fallback { .. } => "fallback",
            TelemetryEvent::Retry { .. } => "retry",
            TelemetryEvent::Handover { .. } => "handover",
            TelemetryEvent::FaultInjected { .. } => "fault",
            TelemetryEvent::EnergyPhase { .. } => "energy",
            TelemetryEvent::FleetPulse { .. } => "pulse",
        }
    }

    /// The device the event concerns, if device-scoped.
    pub fn device(&self) -> Option<u32> {
        match self {
            TelemetryEvent::Flush { device, .. }
            | TelemetryEvent::RrcTransition { device, .. }
            | TelemetryEvent::RelayMatch { device, .. }
            | TelemetryEvent::RelayDepart { device, .. }
            | TelemetryEvent::Fallback { device, .. }
            | TelemetryEvent::Retry { device, .. }
            | TelemetryEvent::Handover { device, .. }
            | TelemetryEvent::EnergyPhase { device, .. } => Some(*device),
            TelemetryEvent::FaultInjected { device, .. } => *device,
            TelemetryEvent::FleetPulse { .. } => None,
        }
    }

    /// Rewrites every device index the event carries through `map` —
    /// how the sharded crowd engine translates a cell's local indices
    /// back to fleet-global ones when merging per-cell event streams.
    pub fn remap_devices(&mut self, map: impl Fn(u32) -> u32) {
        match self {
            TelemetryEvent::Flush { device, .. }
            | TelemetryEvent::RrcTransition { device, .. }
            | TelemetryEvent::Fallback { device, .. }
            | TelemetryEvent::Retry { device, .. }
            | TelemetryEvent::EnergyPhase { device, .. } => *device = map(*device),
            TelemetryEvent::RelayMatch { device, relay }
            | TelemetryEvent::RelayDepart { device, relay } => {
                *device = map(*device);
                *relay = map(*relay);
            }
            TelemetryEvent::Handover {
                device,
                from_relay,
                to_relay,
            } => {
                *device = map(*device);
                *from_relay = map(*from_relay);
                *to_relay = map(*to_relay);
            }
            TelemetryEvent::FaultInjected { device, .. } => {
                if let Some(d) = device.as_mut() {
                    *d = map(*d);
                }
            }
            TelemetryEvent::FleetPulse { .. } => {}
        }
    }
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub event: TelemetryEvent,
}

impl EventRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    /// Times are integer microseconds (`t_us`) — exact, and immune to
    /// float-parsing drift on the way back in.
    pub fn to_jsonl(&self) -> String {
        let t_us = self.time.saturating_since(SimTime::ZERO).as_micros();
        let mut out = format!(
            "{{\"t_us\":{t_us},\"event\":{}",
            json_string(self.event.kind())
        );
        match &self.event {
            TelemetryEvent::Flush {
                device,
                reason,
                buffered,
                own,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"device\":{device},\"reason\":{},\"buffered\":{buffered},\"own\":{own},\"bytes\":{bytes}",
                    json_string(reason)
                );
            }
            TelemetryEvent::RrcTransition {
                device,
                from,
                to,
                dwell_secs,
            } => {
                let _ = write!(
                    out,
                    ",\"device\":{device},\"from\":{},\"to\":{},\"dwell_secs\":{}",
                    json_string(from),
                    json_string(to),
                    json_f64(*dwell_secs)
                );
            }
            TelemetryEvent::RelayMatch { device, relay }
            | TelemetryEvent::RelayDepart { device, relay } => {
                let _ = write!(out, ",\"device\":{device},\"relay\":{relay}");
            }
            TelemetryEvent::Fallback { device, cause } => {
                let _ = write!(out, ",\"device\":{device},\"cause\":{}", json_string(cause));
            }
            TelemetryEvent::Retry {
                device,
                cause,
                attempt,
            } => {
                let _ = write!(
                    out,
                    ",\"device\":{device},\"cause\":{},\"attempt\":{attempt}",
                    json_string(cause)
                );
            }
            TelemetryEvent::Handover {
                device,
                from_relay,
                to_relay,
            } => {
                let _ = write!(
                    out,
                    ",\"device\":{device},\"from_relay\":{from_relay},\"to_relay\":{to_relay}"
                );
            }
            TelemetryEvent::FaultInjected {
                index,
                kind,
                device,
            } => {
                let _ = write!(out, ",\"index\":{index},\"kind\":{}", json_string(kind));
                if let Some(d) = device {
                    let _ = write!(out, ",\"device\":{d}");
                }
            }
            TelemetryEvent::EnergyPhase { device, group, uah } => {
                let _ = write!(
                    out,
                    ",\"device\":{device},\"group\":{},\"uah\":{}",
                    json_string(group),
                    json_f64(*uah)
                );
            }
            TelemetryEvent::FleetPulse {
                epoch,
                cells,
                forwards,
                fallbacks,
                outage_queued,
                l3,
                delivered,
                retries,
            } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"cells\":{cells},\"forwards\":{forwards},\"fallbacks\":{fallbacks},\"outage_queued\":{outage_queued},\"l3\":{l3},\"delivered\":{delivered},\"retries\":{retries}"
                );
            }
        }
        out.push('}');
        out
    }
}

/// An append-only typed event log. Disabled logs drop records for free.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    records: Vec<EventRecord>,
}

impl EventLog {
    /// A disabled log.
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// `true` if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (a no-op when disabled).
    pub fn record(&mut self, time: SimTime, event: TelemetryEvent) {
        if !self.enabled {
            return;
        }
        self.records.push(EventRecord { time, event });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The retained records, in recording order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Consumes the log, returning the records.
    pub fn into_records(self) -> Vec<EventRecord> {
        self.records
    }
}

/// The two telemetry channels a scenario carries, constructed together.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// The metrics registry.
    pub metrics: MetricsRegistry,
    /// The typed event stream.
    pub events: EventLog,
}

impl Telemetry {
    /// Both channels disabled (the default — zero recording cost).
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Both channels enabled.
    pub fn enabled() -> Self {
        Telemetry {
            metrics: MetricsRegistry::enabled(),
            events: EventLog::enabled(),
        }
    }

    /// `true` if either channel records.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.events.is_enabled()
    }
}

/// A scalar parsed back out of a JSONL event line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A quoted string (unescaped).
    Str(String),
    /// A number, kept as its raw token for lossless integer reads.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if it parses as one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line (as produced by
/// [`EventRecord::to_jsonl`]) into a field map. Returns [`None`] on
/// malformed input or non-scalar values — the timeline reader skips
/// such lines rather than guessing.
pub fn parse_jsonl_line(line: &str) -> Option<BTreeMap<String, JsonScalar>> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = BTreeMap::new();
    let mut chars = body.char_indices().peekable();
    loop {
        // Skip whitespace and a separating comma.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        let Some(&(start, c)) = chars.peek() else {
            break;
        };
        if c != '"' {
            return None;
        }
        let key_end = scan_string(body, start)?;
        let key = unescape(&body[start + 1..key_end])?;
        // Advance past the key and the colon.
        while matches!(chars.peek(), Some((i, _)) if *i <= key_end) {
            chars.next();
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let (vstart, vc) = *chars.peek()?;
        let value = if vc == '"' {
            let vend = scan_string(body, vstart)?;
            while matches!(chars.peek(), Some((i, _)) if *i <= vend) {
                chars.next();
            }
            JsonScalar::Str(unescape(&body[vstart + 1..vend])?)
        } else {
            let mut vend = body.len();
            for (i, c) in body[vstart..].char_indices() {
                if c == ',' {
                    vend = vstart + i;
                    break;
                }
            }
            while matches!(chars.peek(), Some((i, _)) if *i < vend) {
                chars.next();
            }
            let raw = body[vstart..vend].trim();
            match raw {
                "true" => JsonScalar::Bool(true),
                "false" => JsonScalar::Bool(false),
                "null" => JsonScalar::Null,
                num if num.parse::<f64>().is_ok() => JsonScalar::Num(num.to_string()),
                _ => return None,
            }
        };
        fields.insert(key, value);
    }
    Some(fields)
}

/// Finds the closing quote of the string starting at `open` (which must
/// index a `"`), honouring backslash escapes. Returns the index of the
/// closing quote.
fn scan_string(s: &str, open: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Undoes [`json_string`]'s escaping.
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            '/' => out.push('/'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100.0] {
            h.observe(v);
        }
        // le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {3.9, 4.0}; +Inf: {100}.
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - 112.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        Histogram::new(&[1.0]).observe(f64::NAN);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        m.incr("x");
        m.set_gauge("y", 1.0);
        m.observe("z", DWELL_BUCKETS, 1.0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn snapshot_merge_adds_everything() {
        let mut a = MetricsRegistry::enabled();
        a.incr("c");
        a.add_gauge("g", 1.5);
        a.observe("h", SIZE_BUCKETS, 3.0);
        let mut b = MetricsRegistry::enabled();
        b.add("c", 2);
        b.add_gauge("g", 0.5);
        b.observe("h", SIZE_BUCKETS, 100.0);
        b.incr("only_b");

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("c"), 3);
        assert_eq!(merged.counter("only_b"), 1);
        assert_eq!(merged.gauges["g"], 2.0);
        let h = &merged.histograms["h"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.counts().last(), Some(&1), "100 lands in +Inf");
    }

    #[test]
    fn json_rendering_is_stable_and_parseable_shape() {
        let mut m = MetricsRegistry::enabled();
        m.incr("hbr_flush_total{reason=\"capacity\"}");
        m.set_gauge("hbr_energy_uah", 581.25);
        m.observe("hbr_dwell", DWELL_BUCKETS, 3.0);
        let json = m.snapshot().to_json();
        assert_eq!(json, m.snapshot().to_json(), "rendering is deterministic");
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"hbr_flush_total{reason=\\\"capacity\\\"}\":1"));
        assert!(json.contains("\"hbr_energy_uah\":581.25"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn prometheus_exposition_expands_histograms() {
        let mut m = MetricsRegistry::enabled();
        m.observe("hbr_dwell_seconds{state=\"dch\"}", &[1.0, 5.0], 3.0);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("hbr_dwell_seconds_bucket{state=\"dch\",le=\"1.0\"} 0"));
        assert!(text.contains("hbr_dwell_seconds_bucket{state=\"dch\",le=\"5.0\"} 1"));
        assert!(text.contains("hbr_dwell_seconds_bucket{state=\"dch\",le=\"+Inf\"} 1"));
        assert!(text.contains("hbr_dwell_seconds_count{state=\"dch\"} 1"));
        assert!(text.contains("hbr_dwell_seconds_sum{state=\"dch\"} 3.0"));
    }

    #[test]
    fn event_jsonl_round_trips() {
        let record = EventRecord {
            time: SimTime::from_millis(812_500),
            event: TelemetryEvent::Flush {
                device: 7,
                reason: "capacity",
                buffered: 8,
                own: 1,
                bytes: 666,
            },
        };
        let line = record.to_jsonl();
        let fields = parse_jsonl_line(&line).expect("line parses");
        assert_eq!(fields["t_us"].as_u64(), Some(812_500_000));
        assert_eq!(fields["event"].as_str(), Some("flush"));
        assert_eq!(fields["device"].as_u64(), Some(7));
        assert_eq!(fields["reason"].as_str(), Some("capacity"));
        assert_eq!(fields["buffered"].as_u64(), Some(8));
    }

    #[test]
    fn every_event_kind_serializes_and_parses() {
        let events = [
            TelemetryEvent::Flush {
                device: 0,
                reason: "period",
                buffered: 2,
                own: 1,
                bytes: 222,
            },
            TelemetryEvent::RrcTransition {
                device: 1,
                from: "dch",
                to: "fach",
                dwell_secs: 3.25,
            },
            TelemetryEvent::RelayMatch {
                device: 2,
                relay: 0,
            },
            TelemetryEvent::RelayDepart {
                device: 2,
                relay: 0,
            },
            TelemetryEvent::Fallback {
                device: 3,
                cause: "feedback-timeout",
            },
            TelemetryEvent::Retry {
                device: 3,
                cause: "transfer-failed",
                attempt: 2,
            },
            TelemetryEvent::Handover {
                device: 3,
                from_relay: 0,
                to_relay: 5,
            },
            TelemetryEvent::FaultInjected {
                index: 0,
                kind: "cellular-outage",
                device: None,
            },
            TelemetryEvent::EnergyPhase {
                device: 4,
                group: "Cellular",
                uah: 1234.5,
            },
            TelemetryEvent::FleetPulse {
                epoch: 1,
                cells: 4,
                forwards: 10,
                fallbacks: 2,
                outage_queued: 0,
                l3: 12,
                delivered: 11,
                retries: 1,
            },
        ];
        for event in events {
            let kind = event.kind();
            let line = EventRecord {
                time: SimTime::from_secs(1),
                event,
            }
            .to_jsonl();
            let fields = parse_jsonl_line(&line).unwrap_or_else(|| panic!("parse {line}"));
            assert_eq!(fields["event"].as_str(), Some(kind), "{line}");
        }
    }

    #[test]
    fn disabled_event_log_is_free() {
        let mut log = EventLog::disabled();
        log.record(
            SimTime::ZERO,
            TelemetryEvent::Fallback {
                device: 0,
                cause: "feedback-timeout",
            },
        );
        assert!(log.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl_line("not json").is_none());
        assert!(parse_jsonl_line("{\"unterminated\":\"").is_none());
        assert!(parse_jsonl_line("{\"deep\":{\"no\":1}}").is_none());
        assert!(parse_jsonl_line("{}")
            .map(|m| m.is_empty())
            .unwrap_or(false));
    }

    #[test]
    fn parse_handles_escapes_and_scalars() {
        let fields =
            parse_jsonl_line("{\"s\":\"a\\\"b\\n\",\"n\":-1.5,\"b\":true,\"z\":null}").unwrap();
        assert_eq!(fields["s"].as_str(), Some("a\"b\n"));
        assert_eq!(fields["n"].as_f64(), Some(-1.5));
        assert_eq!(fields["b"], JsonScalar::Bool(true));
        assert_eq!(fields["z"], JsonScalar::Null);
    }

    #[test]
    fn json_f64_keeps_integral_values_marked() {
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(3.25), "3.25");
        assert_eq!(json_f64(0.1), "0.1");
    }
}
