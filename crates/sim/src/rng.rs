//! Deterministic randomness for scenarios.
//!
//! All stochastic choices in the framework — heartbeat jitter, mobility
//! waypoints, discovery latencies, failure injection — draw from a
//! [`SimRng`] seeded by the scenario. Re-running a scenario with the same
//! seed therefore reproduces the exact event trace, which the integration
//! tests assert.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A seedable random number generator with simulation-oriented helpers.
///
/// # Examples
///
/// ```
/// use hbr_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit scenario seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per device, so
    /// adding a device does not perturb the streams of the others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the parent's next word with the stream index through
        // splitmix64 so sibling forks are decorrelated.
        let mut z = self
            .inner
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed duration with the given mean — the
    /// classic inter-arrival model for foreground app traffic.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is the zero duration.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        assert!(
            !mean.is_zero(),
            "exp_duration requires a positive mean duration"
        );
        // Inverse-CDF sampling; clamp the uniform away from 0 so ln is finite.
        let u = self.unit().max(1e-12);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// A duration jittered uniformly within `±frac` of `base` (e.g. ±5%
    /// heartbeat timer slack).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or not finite.
    pub fn jitter(&mut self, base: SimDuration, frac: f64) -> SimDuration {
        assert!(
            frac.is_finite() && frac >= 0.0,
            "jitter fraction must be finite and non-negative, got {frac}"
        );
        if frac == 0.0 || base.is_zero() {
            return base;
        }
        let factor = 1.0 + self.range(-frac..frac);
        base.mul_f64(factor.max(0.0))
    }

    /// Gaussian sample via Box–Muller (no extra dependency needed).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns [`None`] for an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.range(0..items.len());
            Some(&items[idx])
        }
    }

    /// Mutable access to the underlying [`rand`] generator for
    /// distributions this wrapper does not cover.
    pub fn inner_mut(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn forks_are_deterministic_and_decorrelated() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut g0 = parent3.fork(0);
        // A different stream index gives a different sequence even from the
        // same parent state.
        let mut parent4 = SimRng::seed_from(9);
        let mut g1 = parent4.fork(1);
        assert_ne!(g0.next_u64(), g1.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0), "p is clamped to [0,1]");
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let mean = SimDuration::from_secs(10);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| rng.exp_duration(mean).as_secs_f64())
            .sum::<f64>();
        let avg = total / n as f64;
        assert!(
            (avg - 10.0).abs() < 0.3,
            "empirical mean {avg} too far from 10"
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from(13);
        let base = SimDuration::from_secs(100);
        for _ in 0..1000 {
            let j = rng.jitter(base, 0.05);
            assert!(j >= SimDuration::from_secs(95) && j <= SimDuration::from_secs(105));
        }
        assert_eq!(rng.jitter(base, 0.0), base);
    }

    #[test]
    fn normal_is_roughly_centred() {
        let mut rng = SimRng::seed_from(17);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.normal(5.0, 2.0)).sum();
        let avg = sum / n as f64;
        assert!((avg - 5.0).abs() < 0.1, "empirical mean {avg} off from 5");
    }

    #[test]
    fn pick_handles_empty_and_full() {
        let mut rng = SimRng::seed_from(19);
        let empty: [u8; 0] = [];
        assert_eq!(rng.pick(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.pick(&items).unwrap()));
    }
}
