//! Shared identity types.
//!
//! Every layer of the stack — mobility tracks, radios, energy meters, the
//! relaying framework — refers to the same physical smartphone, so the
//! device identifier lives here in the kernel crate rather than in any one
//! subsystem.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one simulated smartphone across all subsystems.
///
/// # Examples
///
/// ```
/// use hbr_sim::DeviceId;
///
/// let relay = DeviceId::new(0);
/// let ue = DeviceId::new(1);
/// assert_ne!(relay, ue);
/// assert_eq!(format!("{relay}"), "dev#0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(u32);

impl DeviceId {
    /// Creates a device id from a raw index.
    pub const fn new(index: u32) -> Self {
        DeviceId(index)
    }

    /// The raw index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(index: u32) -> Self {
        DeviceId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = DeviceId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(DeviceId::from(7u32), id);
        assert_eq!(format!("{id}"), "dev#7");
    }
}
