//! Declarative, seeded fault plans for chaos scenarios.
//!
//! A [`FaultPlan`] is a time-ordered schedule of [`FaultEvent`]s the
//! scenario engine executes deterministically: every fault fires at its
//! configured instant, and any randomness a fault needs (e.g. windowed
//! payload loss) is drawn from a dedicated fault stream seeded via
//! [`fault_stream_seed`] — a splitmix64 derivation of the scenario seed —
//! so faulted runs stay byte-reproducible at any thread count and an
//! *empty* plan leaves every other RNG stream untouched.
//!
//! The taxonomy mirrors the failure modes the paper's fallback loop must
//! survive (§III-A): the aggregation point leaving or dying, the D2D
//! link degrading or dropping mid-transfer, discovery going dark, and —
//! beyond the paper — the cellular uplink itself blacking out.
//!
//! # Examples
//!
//! ```
//! use hbr_sim::fault::{FaultKind, FaultPlan};
//! use hbr_sim::{DeviceId, SimDuration, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .with(
//!         SimTime::from_secs(1800),
//!         FaultKind::CellularOutage {
//!             duration: SimDuration::from_secs(120),
//!         },
//!     )
//!     .with(
//!         SimTime::from_secs(3600),
//!         FaultKind::RelayDeparture {
//!             device: DeviceId::new(0),
//!             rejoin_after: Some(SimDuration::from_secs(900)),
//!         },
//!     );
//! assert_eq!(plan.events().len(), 2);
//! ```

use crate::ids::DeviceId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device's D2D link dies and its D2D radio stays unusable for a
    /// window: any current attachment tears down and heartbeats take the
    /// direct cellular path until the window closes.
    LinkDrop {
        /// The affected device (a UE's uplink, or a relay — which drops
        /// every member's link at once).
        device: DeviceId,
        /// How long the device's D2D radio stays down.
        d2d_down_for: SimDuration,
    },
    /// Interference window: transfers on the device's link suffer this
    /// much extra loss probability on top of the distance-based model.
    LinkDegrade {
        /// The sender whose link degrades (applies to re-established
        /// links too while the window lasts).
        device: DeviceId,
        /// Additional loss probability, clamped to `[0, 1]`.
        extra_loss: f64,
        /// How long the interference lasts.
        duration: SimDuration,
    },
    /// A relay leaves the system (powered off, walked away): members are
    /// detached, its buffered batch is discarded (the sources' feedback
    /// timers rescue those heartbeats) and it stops advertising.
    RelayDeparture {
        /// The departing relay.
        device: DeviceId,
        /// If set, the relay returns to service after this long (churn);
        /// [`None`] means it never comes back.
        rejoin_after: Option<SimDuration>,
    },
    /// Discovery goes dark globally: no UE can (re)match a relay while
    /// the window lasts; unmatched heartbeats take the cellular path.
    DiscoveryBlackout {
        /// Blackout length.
        duration: SimDuration,
    },
    /// The cellular uplink is down for everyone: transmissions queue at
    /// the devices and drain when the outage ends.
    CellularOutage {
        /// Outage length.
        duration: SimDuration,
    },
    /// Windowed heartbeat payload loss on the device's D2D transfers:
    /// each forwarded payload is lost with `probability`, drawn from the
    /// dedicated fault stream (the link itself stays up — models
    /// payload-level corruption the link layer does not detect).
    PayloadLoss {
        /// The sender whose payloads are at risk.
        device: DeviceId,
        /// Per-transfer loss probability, clamped to `[0, 1]`.
        probability: f64,
        /// How long the loss window lasts.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// Short kebab-case label for metrics and event streams.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LinkDrop { .. } => "link-drop",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::RelayDeparture { .. } => "relay-departure",
            FaultKind::DiscoveryBlackout { .. } => "discovery-blackout",
            FaultKind::CellularOutage { .. } => "cellular-outage",
            FaultKind::PayloadLoss { .. } => "payload-loss",
        }
    }

    /// The device the fault targets, if the kind has one (blackouts and
    /// outages are global).
    pub fn device(self) -> Option<DeviceId> {
        match self {
            FaultKind::LinkDrop { device, .. }
            | FaultKind::LinkDegrade { device, .. }
            | FaultKind::RelayDeparture { device, .. }
            | FaultKind::PayloadLoss { device, .. } => Some(device),
            FaultKind::DiscoveryBlackout { .. } | FaultKind::CellularOutage { .. } => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, time-ordered schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every scenario).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a fault, keeping the schedule sorted by firing time (stable:
    /// simultaneous faults keep insertion order).
    pub fn schedule(&mut self, at: SimTime, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// Appends an event *without* the sorted insert, returning its
    /// stable index. Mid-run injection (`Scenario::inject_fault`)
    /// requires this: indices already handed out to scheduled
    /// fault-due events must keep pointing at the same entries, which
    /// [`schedule`](Self::schedule)'s sorted insert would shift.
    pub fn append(&mut self, at: SimTime, kind: FaultKind) -> usize {
        self.events.push(FaultEvent { at, kind });
        self.events.len() - 1
    }

    /// Builder-style [`schedule`](Self::schedule).
    #[must_use]
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.schedule(at, kind);
        self
    }

    /// The scheduled faults, sorted by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Generates a random plan for stress runs: roughly one fault per
    /// `mean_interval` across `duration`, mixing every [`FaultKind`],
    /// targeting devices drawn from `devices`. Deterministic in `seed`.
    pub fn random(
        seed: u64,
        duration: SimDuration,
        mean_interval: SimDuration,
        devices: &[DeviceId],
    ) -> Self {
        let mut rng = SimRng::seed_from(fault_stream_seed(seed));
        let mut plan = FaultPlan::new();
        if devices.is_empty() {
            return plan;
        }
        let mut t = SimTime::ZERO + rng.exp_duration(mean_interval);
        let horizon = SimTime::ZERO + duration;
        while t < horizon {
            let device = *rng.pick(devices).expect("devices is non-empty");
            let window = SimDuration::from_secs(rng.range(30u64..300));
            let kind = match rng.range(0u8..6) {
                0 => FaultKind::LinkDrop {
                    device,
                    d2d_down_for: window,
                },
                1 => FaultKind::LinkDegrade {
                    device,
                    extra_loss: rng.unit(),
                    duration: window,
                },
                2 => FaultKind::RelayDeparture {
                    device,
                    rejoin_after: rng.chance(0.7).then_some(window),
                },
                3 => FaultKind::DiscoveryBlackout { duration: window },
                4 => FaultKind::CellularOutage { duration: window },
                _ => FaultKind::PayloadLoss {
                    device,
                    probability: rng.unit(),
                    duration: window,
                },
            };
            plan.schedule(t, kind);
            t += rng.exp_duration(mean_interval);
        }
        plan
    }
}

/// Derives the seed of the dedicated fault RNG stream from the scenario
/// seed (splitmix64 finalizer over a tagged input). Keeping the fault
/// stream separate means injecting faults never perturbs the draws of
/// the mobility/jitter/discovery streams: a faulted run diverges from
/// its clean twin only through the faults themselves.
pub fn fault_stream_seed(scenario_seed: u64) -> u64 {
    let mut z = scenario_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xFAC1_7000_0000_0001);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of the dedicated *retry* RNG stream (backoff jitter
/// for the reliable-delivery layer) from the scenario seed. Same
/// splitmix64 finalizer shape as [`fault_stream_seed`] but a different
/// stream tag, so the two streams are decorrelated from each other and
/// from the scenario streams. The retry stream is only drawn from when a
/// retransmission is actually scheduled, so clean (fault-free) runs
/// consume zero draws and golden traces stay byte-identical.
pub fn retry_stream_seed(scenario_seed: u64) -> u64 {
    let mut z = scenario_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD2D0_ACC0_0000_0002);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_time_order() {
        let plan = FaultPlan::new()
            .with(
                SimTime::from_secs(100),
                FaultKind::DiscoveryBlackout {
                    duration: SimDuration::from_secs(10),
                },
            )
            .with(
                SimTime::from_secs(50),
                FaultKind::CellularOutage {
                    duration: SimDuration::from_secs(10),
                },
            )
            .with(
                SimTime::from_secs(100),
                FaultKind::LinkDrop {
                    device: DeviceId::new(1),
                    d2d_down_for: SimDuration::from_secs(5),
                },
            );
        let times: Vec<_> = plan.events().iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(times, vec![50.0, 100.0, 100.0]);
        // Stable: the blackout scheduled first stays ahead of the drop.
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::DiscoveryBlackout { .. }
        ));
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().events().is_empty());
    }

    #[test]
    fn fault_stream_seed_differs_from_scenario_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_ne!(fault_stream_seed(seed), seed);
        }
        assert_ne!(fault_stream_seed(1), fault_stream_seed(2));
    }

    #[test]
    fn retry_stream_is_distinct_from_fault_and_scenario_streams() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_ne!(retry_stream_seed(seed), seed);
            assert_ne!(retry_stream_seed(seed), fault_stream_seed(seed));
        }
        assert_ne!(retry_stream_seed(1), retry_stream_seed(2));
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let devices = [DeviceId::new(0), DeviceId::new(1), DeviceId::new(2)];
        let duration = SimDuration::from_secs(4 * 3600);
        let mean = SimDuration::from_secs(1800);
        let a = FaultPlan::random(7, duration, mean, &devices);
        let b = FaultPlan::random(7, duration, mean, &devices);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "4 h at a 30 min mean should yield faults");
        let horizon = SimTime::ZERO + duration;
        assert!(a.events().iter().all(|e| e.at < horizon));
        let c = FaultPlan::random(8, duration, mean, &devices);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn random_plan_without_devices_is_empty() {
        assert!(FaultPlan::random(
            1,
            SimDuration::from_secs(3600),
            SimDuration::from_secs(60),
            &[]
        )
        .is_empty());
    }
}
