//! Virtual clock types.
//!
//! Simulated time is measured in whole microseconds since the start of the
//! scenario. A microsecond grid is fine enough to resolve every interval in
//! the paper (the shortest modelled activity is a sub-millisecond layer-3
//! message; the longest is a multi-hour workload) while keeping arithmetic
//! exact — no floating-point clock drift between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock, in microseconds since scenario start.
///
/// `SimTime` is an absolute point in time; the span between two instants is
/// a [`SimDuration`].
///
/// # Examples
///
/// ```
/// use hbr_sim::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(270);
/// assert_eq!(t + SimDuration::from_secs(30), SimTime::from_secs(300));
/// assert_eq!(t.as_secs_f64(), 270.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in whole microseconds.
///
/// # Examples
///
/// ```
/// use hbr_sim::SimDuration;
///
/// let period = SimDuration::from_secs(270);
/// assert_eq!(period * 2, SimDuration::from_secs(540));
/// assert_eq!(period / 2, SimDuration::from_secs(135));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The scenario start instant (time zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after scenario start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after scenario start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after scenario start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the
    /// microsecond grid.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds since scenario start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since scenario start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since scenario start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds since scenario start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span since an earlier instant, or [`None`] if `earlier` is later
    /// than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Span since an earlier instant, clamping to zero if `earlier` is in
    /// fact later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; useful as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the microsecond
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds in this span (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// This span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative float, rounding to the microsecond
    /// grid.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Subtracts, clamping at zero instead of panicking.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: scenario clock exceeded u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: instant before scenario start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Span between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::checked_since`] when ordering is not statically known.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;

    /// How many whole `rhs` spans fit into `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is the zero span.
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero-length SimDuration");
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is the zero span.
    fn rem(self, rhs: SimDuration) -> SimDuration {
        assert!(!rhs.is_zero(), "remainder by zero-length SimDuration");
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
        assert_eq!(
            SimDuration::from_secs_f64(0.0001),
            SimDuration::from_micros(100)
        );
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(9) / d, 2);
        assert_eq!(SimDuration::from_secs(9) % d, SimDuration::from_secs(1));
    }

    #[test]
    fn checked_and_saturating() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(4)));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::MAX), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_past_start_panics() {
        let _ = SimTime::from_secs(1) - SimDuration::from_secs(2);
    }

    // Bad fractional inputs must be loud. An `as u64` cast would map a
    // negative or NaN input to a silent zero (and +inf to u64::MAX),
    // turning a mistyped duration into a zero-length run.
    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-0.001);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn infinite_duration_panics() {
        let _ = SimDuration::from_secs_f64(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_scale_factor_panics() {
        let _ = SimDuration::from_secs(10).mul_f64(-2.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_scale_factor_panics() {
        let _ = SimDuration::from_secs(10).mul_f64(f64::NAN);
    }

    #[test]
    fn sum_and_scaling() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.5),
            SimDuration::from_secs(5)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "t=1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }
}
