//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the D2D heartbeat relaying framework
//! reproduction: every other crate (cellular radios, Wi-Fi Direct links,
//! energy accounting, the relaying framework itself) runs on top of the
//! event engine defined here.
//!
//! The kernel is deliberately small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution virtual clock.
//! * [`Simulation`] — a priority event queue with stable FIFO ordering for
//!   simultaneous events and lazy cancellation.
//! * [`SimRng`] — a seedable random number generator wrapper so that a
//!   scenario seed reproduces the exact same trace, run after run.
//! * [`stats`] — tiny summary-statistics helpers shared by the reports.
//!
//! # Examples
//!
//! ```
//! use hbr_sim::{SimDuration, SimTime, Simulation};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_after(SimDuration::from_secs(1), Event::Ping);
//! sim.schedule_after(SimDuration::from_secs(2), Event::Pong);
//!
//! let mut seen = Vec::new();
//! while let Some(fired) = sim.pop() {
//!     seen.push(fired.event);
//! }
//! assert_eq!(seen, vec![Event::Ping, Event::Pong]);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

pub mod engine;
pub mod fault;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use engine::{EventId, FiredEvent, Simulation};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ids::DeviceId;
pub use rng::SimRng;
pub use stats::{Counter, Summary};
pub use telemetry::{
    EventLog, EventRecord, Histogram, MetricsRegistry, MetricsSnapshot, Telemetry, TelemetryEvent,
};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, Tracer};
