//! Property-based tests for the event engine and clock types.

use hbr_sim::{SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = sim.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
        }
    }

    /// Events at equal instants pop in scheduling (FIFO) order.
    #[test]
    fn ties_break_fifo(groups in proptest::collection::vec((0u64..100, 1usize..6), 1..50)) {
        let mut sim = Simulation::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                sim.schedule_at(SimTime::from_micros(t), idx);
                idx += 1;
            }
        }
        let mut by_time: std::collections::BTreeMap<SimTime, Vec<usize>> = Default::default();
        while let Some(ev) = sim.pop() {
            by_time.entry(ev.time).or_default().push(ev.event);
        }
        for (_, order) in by_time {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(order, sorted);
        }
    }

    /// Cancelling a random subset of events removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        kill_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_micros(t), i)))
            .collect();
        let mut killed = std::collections::HashSet::new();
        for (i, id) in &ids {
            if *kill_mask.get(*i % kill_mask.len()).unwrap_or(&false) {
                prop_assert!(sim.cancel(*id));
                killed.insert(*i);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some(ev) = sim.pop() {
            fired.insert(ev.event);
        }
        prop_assert_eq!(fired.len() + killed.len(), times.len());
        prop_assert!(fired.is_disjoint(&killed));
    }

    /// pending() always equals scheduled − fired − cancelled.
    #[test]
    fn pending_is_consistent(ops in proptest::collection::vec(0u8..3, 1..300)) {
        let mut sim = Simulation::new();
        let mut ids = Vec::new();
        let mut live = 0i64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(sim.schedule_after(SimDuration::from_micros(i as u64 + 1), i));
                    live += 1;
                }
                1 => {
                    if let Some(id) = ids.pop() {
                        if sim.cancel(id) {
                            live -= 1;
                        }
                    }
                }
                _ => {
                    if sim.pop().is_some() {
                        live -= 1;
                    }
                }
            }
            prop_assert_eq!(sim.pending() as i64, live);
        }
    }

    /// Duration arithmetic round-trips through seconds within one microsecond.
    #[test]
    fn duration_f64_round_trip(micros in 0u64..=10_000_000_000) {
        let d = SimDuration::from_micros(micros);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_micros().abs_diff(d.as_micros());
        prop_assert!(diff <= 1, "round trip drifted by {diff}µs");
    }

    /// time + (b − a) == time − a + b for any a ≤ b (associativity on the grid).
    #[test]
    fn time_arithmetic_consistent(base in 0u64..1_000_000, a in 0u64..1000, extra in 0u64..1000) {
        let t = SimTime::from_micros(base + a);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(a + extra);
        prop_assert_eq!(t - da + db, t + (db - da));
    }
}
