//! Property-based tests for the event engine and clock types.

use hbr_sim::{SimDuration, SimTime, Simulation, Summary};
use proptest::prelude::*;

/// Bounded, NaN-free samples for `Summary` properties.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6..1.0e6f64, 0..60)
}

fn summarise(xs: &[f64]) -> Summary {
    xs.iter().copied().collect()
}

/// Exact equality on the discrete stats, tolerance on the floating-point
/// moments — `merge` documents "up to floating-point rounding".
fn assert_close(a: &Summary, b: &Summary) {
    prop_assert_eq!(a.count(), b.count());
    prop_assert_eq!(a.min(), b.min(), "min is exact (no arithmetic)");
    prop_assert_eq!(a.max(), b.max(), "max is exact (no arithmetic)");
    let close = |x: Option<f64>, y: Option<f64>| match (x, y) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => false,
    };
    prop_assert!(close(a.mean(), b.mean()), "means differ: {a} vs {b}");
    prop_assert!(
        close(a.variance(), b.variance()),
        "variances differ: {:?} vs {:?}",
        a.variance(),
        b.variance()
    );
}

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = sim.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
        }
    }

    /// Events at equal instants pop in scheduling (FIFO) order.
    #[test]
    fn ties_break_fifo(groups in proptest::collection::vec((0u64..100, 1usize..6), 1..50)) {
        let mut sim = Simulation::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                sim.schedule_at(SimTime::from_micros(t), idx);
                idx += 1;
            }
        }
        let mut by_time: std::collections::BTreeMap<SimTime, Vec<usize>> = Default::default();
        while let Some(ev) = sim.pop() {
            by_time.entry(ev.time).or_default().push(ev.event);
        }
        for (_, order) in by_time {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(order, sorted);
        }
    }

    /// Cancelling a random subset of events removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        kill_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_micros(t), i)))
            .collect();
        let mut killed = std::collections::HashSet::new();
        for (i, id) in &ids {
            if *kill_mask.get(*i % kill_mask.len()).unwrap_or(&false) {
                prop_assert!(sim.cancel(*id));
                killed.insert(*i);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some(ev) = sim.pop() {
            fired.insert(ev.event);
        }
        prop_assert_eq!(fired.len() + killed.len(), times.len());
        prop_assert!(fired.is_disjoint(&killed));
    }

    /// pending() always equals scheduled − fired − cancelled.
    #[test]
    fn pending_is_consistent(ops in proptest::collection::vec(0u8..3, 1..300)) {
        let mut sim = Simulation::new();
        let mut ids = Vec::new();
        let mut live = 0i64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    ids.push(sim.schedule_after(SimDuration::from_micros(i as u64 + 1), i));
                    live += 1;
                }
                1 => {
                    if let Some(id) = ids.pop() {
                        if sim.cancel(id) {
                            live -= 1;
                        }
                    }
                }
                _ => {
                    if sim.pop().is_some() {
                        live -= 1;
                    }
                }
            }
            prop_assert_eq!(sim.pending() as i64, live);
        }
    }

    /// Duration arithmetic round-trips through seconds within one microsecond.
    #[test]
    fn duration_f64_round_trip(micros in 0u64..=10_000_000_000) {
        let d = SimDuration::from_micros(micros);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_micros().abs_diff(d.as_micros());
        prop_assert!(diff <= 1, "round trip drifted by {diff}µs");
    }

    /// time + (b − a) == time − a + b for any a ≤ b (associativity on the grid).
    #[test]
    fn time_arithmetic_consistent(base in 0u64..1_000_000, a in 0u64..1000, extra in 0u64..1000) {
        let t = SimTime::from_micros(base + a);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(a + extra);
        prop_assert_eq!(t - da + db, t + (db - da));
    }

    /// merge(a, b) ≍ merge(b, a): shard telemetry may be folded in any
    /// order without moving the merged statistics.
    #[test]
    fn summary_merge_commutes(xs in samples(), ys in samples()) {
        let mut ab = summarise(&xs);
        ab.merge(&summarise(&ys));
        let mut ba = summarise(&ys);
        ba.merge(&summarise(&xs));
        assert_close(&ab, &ba);
    }

    /// (a ∪ b) ∪ c ≍ a ∪ (b ∪ c): folding shards pairwise in any shape
    /// gives the same statistics, so tree merges equal sequential ones.
    #[test]
    fn summary_merge_is_associative(xs in samples(), ys in samples(), zs in samples()) {
        let mut left = summarise(&xs);
        left.merge(&summarise(&ys));
        left.merge(&summarise(&zs));
        let mut bc = summarise(&ys);
        bc.merge(&summarise(&zs));
        let mut right = summarise(&xs);
        right.merge(&bc);
        assert_close(&left, &right);
    }

    /// Merging per-shard summaries matches recording the concatenated
    /// stream into a single summary — the contract the sharded crowd
    /// engine's report merge relies on.
    #[test]
    fn summary_merge_matches_sequential_recording(xs in samples(), ys in samples()) {
        let mut merged = summarise(&xs);
        merged.merge(&summarise(&ys));
        let whole: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert_close(&merged, &summarise(&whole));
    }

    /// `Tracer::record` clamps out-of-order stamps to the ring's tail
    /// (handlers acting at a transfer's completion instant can run
    /// behind an already-recorded later entry), so the ring stays
    /// sorted and `between`'s two binary searches stay valid under
    /// *arbitrary* non-monotone stamp sequences — not just the single
    /// inversion the unit test pins.
    #[test]
    fn tracer_stays_binary_searchable_under_non_monotone_stamps(
        stamps in proptest::collection::vec(0u64..5_000, 1..120),
        windows in proptest::collection::vec((0u64..6_000, 0u64..6_000), 1..12),
    ) {
        let mut tracer = hbr_sim::Tracer::with_capacity(256);
        for &s in &stamps {
            tracer.record(SimTime::from_micros(s), "evt", "");
        }
        // The ring itself must be non-decreasing …
        let times: Vec<SimTime> = tracer.iter().map(|e| e.time).collect();
        prop_assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "ring went unsorted: {times:?}"
        );
        // … and every clamp only ever moves a stamp *forward* onto the
        // tail, so the multiset of recorded times dominates the inputs.
        prop_assert_eq!(times.len(), stamps.len());
        for (&raw, &kept) in stamps.iter().zip(&times) {
            prop_assert!(kept >= SimTime::from_micros(raw));
        }
        // `between` (two partition_points over the ring) must agree
        // with a linear scan for any query window, including empty and
        // inverted ones.
        for &(a, b) in &windows {
            let (from, to) = (SimTime::from_micros(a), SimTime::from_micros(b));
            let fast = tracer.between(from, to).count();
            let slow = times.iter().filter(|&&t| t >= from && t < to).count();
            prop_assert_eq!(
                fast, slow,
                "between({}, {}) disagrees with linear scan", from, to
            );
        }
    }
}
