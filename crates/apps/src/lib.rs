//! IM application models: heartbeat profiles, traffic mixes, presence.
//!
//! Heartbeats exist to keep an IM client "always online": the server arms
//! an expiration timer and the app must refresh it periodically (§II-A).
//! Everything the relaying framework needs to know about an app is its
//! heartbeat **period**, **size** and **expiration budget**; everything
//! the motivation tables need is how heartbeats mix with foreground
//! traffic. This crate provides both:
//!
//! * [`AppProfile`] — per-app constants with the paper's published values
//!   (WeChat 270 s / 74 B, QQ 300 s / 378 B, WhatsApp 240 s / 66 B, and
//!   the Table I heartbeat shares).
//! * [`Heartbeat`] / [`HeartbeatSchedule`] — the periodic messages with
//!   timer jitter.
//! * [`TrafficGenerator`] — heartbeats + Poisson foreground messages whose
//!   mix reproduces Table I.
//! * [`ImServer`] — the server-side expiration timers; lets experiments
//!   measure whether a scheduling policy ever lets presence lapse.
//!
//! # Examples
//!
//! ```
//! use hbr_apps::AppProfile;
//!
//! let wechat = AppProfile::wechat();
//! assert_eq!(wechat.heartbeat_period.as_secs(), 270);
//! assert_eq!(wechat.heartbeat_size, 74);
//! ```

pub mod generator;
pub mod message;
pub mod profile;
pub mod server;

pub use generator::{HeartbeatSchedule, TrafficEvent, TrafficGenerator};
pub use message::{Heartbeat, MessageId, MessageIdGen};
pub use profile::{AppId, AppProfile};
pub use server::{DeliveryOutcome, ImServer};
