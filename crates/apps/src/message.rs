//! Heartbeat messages — the payload the whole framework exists to carry.

use std::fmt;

use hbr_sim::{DeviceId, SimTime};
use serde::{Deserialize, Serialize};

use crate::profile::AppId;

/// Globally unique message identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MessageId(u64);

impl MessageId {
    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// Hands out unique [`MessageId`]s.
///
/// # Examples
///
/// ```
/// use hbr_apps::MessageIdGen;
///
/// let mut ids = MessageIdGen::new();
/// assert_ne!(ids.next_id(), ids.next_id());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageIdGen {
    next: u64,
}

impl MessageIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        MessageIdGen::default()
    }

    /// Returns a fresh unique id.
    pub fn next_id(&mut self) -> MessageId {
        let id = MessageId(self.next);
        self.next += 1;
        id
    }
}

/// One heartbeat message in flight.
///
/// Everything the scheduling algorithm of §III-C needs travels with the
/// message: its creation instant (the `t_k` of Table II once it reaches a
/// relay) and its expiration deadline (`T_k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Unique id, used for delivery feedback.
    pub id: MessageId,
    /// The application that produced it.
    pub app: AppId,
    /// The smartphone that produced it.
    pub source: DeviceId,
    /// Per-(device, app) sequence number.
    pub seq: u32,
    /// Payload size in bytes.
    pub size: usize,
    /// When the app emitted it.
    pub created_at: SimTime,
    /// Hard deadline: delivering after this instant is useless because
    /// the server's expiration timer has already fired.
    pub expires_at: SimTime,
}

impl Heartbeat {
    /// `true` if the message is still useful at `now`.
    pub fn is_fresh(&self, now: SimTime) -> bool {
        now < self.expires_at
    }

    /// The remaining delay budget at `now` (zero once expired).
    pub fn slack(&self, now: SimTime) -> hbr_sim::SimDuration {
        self.expires_at.saturating_since(now)
    }

    /// The latest delivery instant that cannot open a *session* liveness
    /// gap. The server's expiration window spans the full budget
    /// (`expires_at - created_at`, three periods), but it is anchored to
    /// the previous accepted refresh: when that one arrived with zero
    /// delay, a message delivered later than two thirds of its budget
    /// after creation stretches the refresh gap past the window even
    /// though the message itself is still individually fresh. Recovery
    /// paths that add delay (retries, re-delegation) must respect this
    /// deadline rather than `expires_at`.
    pub fn liveness_deadline(&self) -> SimTime {
        let budget = self.expires_at.saturating_since(self.created_at);
        self.created_at + budget / 3 * 2
    }
}

impl fmt::Display for Heartbeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} from {} ({} seq {}, {}B, expires {})",
            self.id, self.source, self.app, self.seq, self.size, self.expires_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbr_sim::SimDuration;

    fn hb(created: u64, expires: u64) -> Heartbeat {
        Heartbeat {
            id: MessageId(1),
            app: AppId::new(0),
            source: DeviceId::new(0),
            seq: 0,
            size: 74,
            created_at: SimTime::from_secs(created),
            expires_at: SimTime::from_secs(expires),
        }
    }

    #[test]
    fn freshness_and_slack() {
        let h = hb(0, 100);
        assert!(h.is_fresh(SimTime::from_secs(99)));
        assert!(
            !h.is_fresh(SimTime::from_secs(100)),
            "deadline is exclusive"
        );
        assert_eq!(h.slack(SimTime::from_secs(40)), SimDuration::from_secs(60));
        assert_eq!(h.slack(SimTime::from_secs(200)), SimDuration::ZERO);
    }

    #[test]
    fn liveness_deadline_is_two_thirds_of_the_budget() {
        // A 720 s budget (the 3× period of a 240 s app): delivery past
        // created + 480 s can stretch the server's refresh gap beyond
        // its expiration window even though the message stays fresh.
        let h = hb(100, 820);
        assert_eq!(h.liveness_deadline(), SimTime::from_secs(580));
    }

    #[test]
    fn id_generator_is_unique_and_dense() {
        let mut g = MessageIdGen::new();
        let ids: Vec<_> = (0..100).map(|_| g.next_id()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.raw(), i as u64);
        }
    }

    #[test]
    fn display_is_informative() {
        let text = format!("{}", hb(0, 100));
        assert!(text.contains("msg#1"));
        assert!(text.contains("74B"));
    }
}
