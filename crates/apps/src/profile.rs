//! Per-application heartbeat constants.
//!
//! The numbers below are the paper's own: §II-A gives the periods and
//! sizes ("the heartbeat messages of QQ, WeChat, and WhatsApp are sent
//! every 300 seconds, 270 seconds, and 240 seconds. Their sizes are 378
//! Bytes, 74 Bytes and 66 Bytes"), Table I gives the share of heartbeats
//! among each app's messages. Facebook's period/size are not published in
//! the paper; we use the MQTT default keep-alive of 60 s and a 66 B
//! packet, documented as an assumption in DESIGN.md.

use std::fmt;

use hbr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifies an application across the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(u32);

impl AppId {
    /// Creates an application id.
    pub const fn new(raw: u32) -> Self {
        AppId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Everything the framework knows about one IM application.
///
/// # Examples
///
/// ```
/// use hbr_apps::AppProfile;
///
/// for app in AppProfile::paper_apps() {
///     assert!(app.heartbeat_share > 0.4, "{} share", app.name);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Stable identifier.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// Interval between heartbeats.
    pub heartbeat_period: SimDuration,
    /// Heartbeat payload size in bytes.
    pub heartbeat_size: usize,
    /// How long a heartbeat may be delayed in flight before the server
    /// would have timed the client out anyway. Commercial servers use
    /// ≈ 3× the period (§III-C); the framework itself additionally caps
    /// delay at the relay's own period.
    pub expiration: SimDuration,
    /// Fraction of this app's messages that are heartbeats (Table I).
    pub heartbeat_share: f64,
}

impl AppProfile {
    /// WeChat: 270 s period, 74 B, 50% heartbeat share.
    pub fn wechat() -> Self {
        AppProfile::built_in(0, "WeChat", 270, 74, 0.50)
    }

    /// QQ: 300 s period, 378 B, 52.6% heartbeat share.
    pub fn qq() -> Self {
        AppProfile::built_in(1, "QQ", 300, 378, 0.526)
    }

    /// WhatsApp: 240 s period, 66 B, 61.9% heartbeat share.
    pub fn whatsapp() -> Self {
        AppProfile::built_in(2, "WhatsApp", 240, 66, 0.619)
    }

    /// Facebook Messenger: Table I gives the 48.4% share; period/size are
    /// the MQTT keep-alive defaults (assumption, see DESIGN.md).
    pub fn facebook_messenger() -> Self {
        AppProfile::built_in(3, "Facebook", 60, 66, 0.484)
    }

    /// Looks a paper app up by (case-insensitive) name.
    ///
    /// # Examples
    ///
    /// ```
    /// use hbr_apps::AppProfile;
    ///
    /// assert!(AppProfile::by_name("WeChat").is_some());
    /// assert!(AppProfile::by_name("qq").is_some());
    /// assert!(AppProfile::by_name("icq").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<AppProfile> {
        AppProfile::paper_apps()
            .into_iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// The four applications of Table I, in the paper's column order.
    pub fn paper_apps() -> Vec<AppProfile> {
        vec![
            AppProfile::wechat(),
            AppProfile::whatsapp(),
            AppProfile::qq(),
            AppProfile::facebook_messenger(),
        ]
    }

    /// A custom application profile.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero, the size is zero, or the share is
    /// outside `(0, 1)`.
    pub fn custom(
        id: AppId,
        name: impl Into<String>,
        heartbeat_period: SimDuration,
        heartbeat_size: usize,
        heartbeat_share: f64,
    ) -> Self {
        assert!(
            !heartbeat_period.is_zero(),
            "heartbeat period must be positive"
        );
        assert!(heartbeat_size > 0, "heartbeat size must be positive");
        assert!(
            heartbeat_share > 0.0 && heartbeat_share < 1.0,
            "heartbeat share must be in (0, 1), got {heartbeat_share}"
        );
        AppProfile {
            id,
            name: name.into(),
            heartbeat_period,
            heartbeat_size,
            expiration: heartbeat_period * 3,
            heartbeat_share,
        }
    }

    fn built_in(id: u32, name: &str, period_secs: u64, size: usize, share: f64) -> Self {
        AppProfile::custom(
            AppId::new(id),
            name,
            SimDuration::from_secs(period_secs),
            size,
            share,
        )
    }

    /// Overrides the expiration budget (builder style).
    pub fn with_expiration(mut self, expiration: SimDuration) -> Self {
        assert!(!expiration.is_zero(), "expiration must be positive");
        self.expiration = expiration;
        self
    }

    /// Mean interval between *foreground* (non-heartbeat) messages that
    /// reproduces this app's Table I heartbeat share: if heartbeats tick
    /// every `P` and make up share `s` of messages, data messages arrive
    /// every `P · s / (1 − s)` on average.
    pub fn foreground_mean_interval(&self) -> SimDuration {
        let s = self.heartbeat_share;
        self.heartbeat_period.mul_f64(s / (1.0 - s))
    }
}

impl fmt::Display for AppProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (hb every {}s, {}B)",
            self.name,
            self.heartbeat_period.as_secs(),
            self.heartbeat_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let wechat = AppProfile::wechat();
        assert_eq!(wechat.heartbeat_period, SimDuration::from_secs(270));
        assert_eq!(wechat.heartbeat_size, 74);
        assert_eq!(wechat.heartbeat_share, 0.50);
        let qq = AppProfile::qq();
        assert_eq!(qq.heartbeat_period, SimDuration::from_secs(300));
        assert_eq!(qq.heartbeat_size, 378);
        let whatsapp = AppProfile::whatsapp();
        assert_eq!(whatsapp.heartbeat_period, SimDuration::from_secs(240));
        assert_eq!(whatsapp.heartbeat_size, 66);
    }

    #[test]
    fn default_expiration_is_3x_period() {
        // §III-C: "it is usually set as 3T for commercial apps".
        let wechat = AppProfile::wechat();
        assert_eq!(wechat.expiration, SimDuration::from_secs(810));
    }

    #[test]
    fn ids_are_distinct() {
        let apps = AppProfile::paper_apps();
        let mut ids: Vec<_> = apps.iter().map(|a| a.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), apps.len());
    }

    #[test]
    fn foreground_interval_reproduces_share() {
        // WeChat: share 0.5 → data messages as often as heartbeats.
        assert_eq!(
            AppProfile::wechat().foreground_mean_interval(),
            SimDuration::from_secs(270)
        );
        // WhatsApp: share 0.619 → data messages are rarer than heartbeats.
        assert!(
            AppProfile::whatsapp().foreground_mean_interval()
                > AppProfile::whatsapp().heartbeat_period
        );
    }

    #[test]
    fn with_expiration_overrides() {
        let app = AppProfile::wechat().with_expiration(SimDuration::from_secs(100));
        assert_eq!(app.expiration, SimDuration::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "share")]
    fn share_of_one_rejected() {
        AppProfile::custom(AppId::new(99), "Bad", SimDuration::from_secs(10), 10, 1.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(format!("{}", AppProfile::qq()).contains("QQ"));
        assert_eq!(format!("{}", AppId::new(2)), "app#2");
    }
}
