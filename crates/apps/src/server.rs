//! The IM server's view: expiration timers and online status.
//!
//! §II-A: *"IM servers set expiration timers to determine a client is
//! online or not. In order to maintain online status, IM apps send
//! heartbeat messages frequently to reset the expiration timers."* The
//! [`ImServer`] tracks, per `(device, app)`, when the last heartbeat
//! arrived, so experiments can check that a scheduling policy never lets
//! presence lapse — the user-visible correctness criterion of the whole
//! framework.

use std::collections::BTreeMap;

use hbr_sim::{DeviceId, SimDuration, SimTime};

use crate::message::Heartbeat;
use crate::profile::AppId;

/// Why one delivery attempt was accepted or swallowed — the dedup
/// observation point for conformance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Fresh, first sighting: the session timer was reset.
    Accepted,
    /// The exact message id was seen before (same copy re-sent, e.g.
    /// a relay flush racing a cellular fallback of the same message).
    DuplicateId,
    /// A different message id but an already-accepted
    /// `(source, app, seq)` triple — a retransmit under a fresh id.
    DuplicateSeq,
    /// First sighting, but past the heartbeat's expiration.
    Expired,
}

impl std::fmt::Display for DeliveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeliveryOutcome::Accepted => "accepted",
            DeliveryOutcome::DuplicateId => "duplicate-id",
            DeliveryOutcome::DuplicateSeq => "duplicate-seq",
            DeliveryOutcome::Expired => "expired",
        })
    }
}

/// Per-(device, app) presence tracking with expiration timers.
///
/// # Examples
///
/// ```
/// use hbr_apps::{AppProfile, ImServer};
/// use hbr_sim::{DeviceId, SimDuration, SimTime};
///
/// let mut server = ImServer::new(SimDuration::from_secs(810)); // 3 × WeChat period
/// let device = DeviceId::new(0);
/// let app = AppProfile::wechat().id;
///
/// server.register(device, app, SimTime::ZERO);
/// assert!(server.is_online(device, app, SimTime::from_secs(800)));
/// assert!(!server.is_online(device, app, SimTime::from_secs(811)));
/// ```
#[derive(Debug, Clone)]
pub struct ImServer {
    expiration: SimDuration,
    /// Delivery history per session, in arrival order.
    history: BTreeMap<(DeviceId, AppId), Vec<SimTime>>,
    delivered: u64,
    rejected_expired: u64,
    duplicates: u64,
    seen: std::collections::HashSet<crate::message::MessageId>,
    /// (source, app, seq) triples already accepted — catches retransmit
    /// duplicates that arrive under a *fresh* message id (a retried
    /// heartbeat re-sent over another path keeps its sequence number).
    seen_seq: std::collections::HashSet<(DeviceId, AppId, u32)>,
}

impl ImServer {
    /// Creates a server whose sessions expire `expiration` after the last
    /// heartbeat.
    ///
    /// # Panics
    ///
    /// Panics if `expiration` is zero.
    pub fn new(expiration: SimDuration) -> Self {
        assert!(!expiration.is_zero(), "expiration must be positive");
        ImServer {
            expiration,
            history: BTreeMap::new(),
            delivered: 0,
            rejected_expired: 0,
            duplicates: 0,
            seen: Default::default(),
            seen_seq: Default::default(),
        }
    }

    /// The configured expiration timeout.
    pub fn expiration(&self) -> SimDuration {
        self.expiration
    }

    /// Registers a session as online starting at `at` (login).
    pub fn register(&mut self, device: DeviceId, app: AppId, at: SimTime) {
        self.history.entry((device, app)).or_default().push(at);
    }

    /// Delivers a heartbeat at `at`. Returns `true` if the heartbeat was
    /// accepted (fresh and not a duplicate); expired heartbeats are
    /// rejected and counted, duplicates are ignored.
    pub fn deliver(&mut self, hb: &Heartbeat, at: SimTime) -> bool {
        self.deliver_observed(hb, at) == DeliveryOutcome::Accepted
    }

    /// [`ImServer::deliver`] with the dedup decision exposed: which of
    /// the two dedup layers (message id, then `(source, app, seq)`)
    /// swallowed a rejected delivery, or whether it arrived stale.
    /// Conformance harnesses assert on the exact layer so a duplicate
    /// storm cannot silently shift from seq-dedup to id-dedup.
    pub fn deliver_observed(&mut self, hb: &Heartbeat, at: SimTime) -> DeliveryOutcome {
        if !self.seen.insert(hb.id) {
            self.duplicates += 1;
            return DeliveryOutcome::DuplicateId;
        }
        if !self.seen_seq.insert((hb.source, hb.app, hb.seq)) {
            self.duplicates += 1;
            return DeliveryOutcome::DuplicateSeq;
        }
        if !hb.is_fresh(at) {
            self.rejected_expired += 1;
            return DeliveryOutcome::Expired;
        }
        self.history
            .entry((hb.source, hb.app))
            .or_default()
            .push(at);
        self.delivered += 1;
        DeliveryOutcome::Accepted
    }

    /// Whether the session is online at `at`: the last refresh at or
    /// before `at` is less than the expiration timeout ago.
    pub fn is_online(&self, device: DeviceId, app: AppId, at: SimTime) -> bool {
        let Some(refreshes) = self.history.get(&(device, app)) else {
            return false;
        };
        refreshes
            .iter()
            .rev()
            .find(|&&r| r <= at)
            .is_some_and(|&last| at - last < self.expiration)
    }

    /// The accepted-refresh instants recorded for one session, in
    /// arrival order. Diagnostic surface for liveness audits.
    pub fn refresh_history(&self, device: DeviceId, app: AppId) -> &[SimTime] {
        self.history
            .get(&(device, app))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total accepted heartbeats.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Heartbeats rejected because they arrived after their deadline.
    pub fn rejected_expired(&self) -> u64 {
        self.rejected_expired
    }

    /// Duplicate deliveries ignored (e.g. a relay forwarded *and* the
    /// fallback fired).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Total seconds the session spent offline inside `[from, to]`, i.e.
    /// intervals where no refresh was newer than the expiration window.
    /// This is the user-visible damage a bad scheduler causes.
    pub fn offline_time(
        &self,
        device: DeviceId,
        app: AppId,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        assert!(from <= to, "offline_time requires from <= to");
        let Some(refreshes) = self.history.get(&(device, app)) else {
            return to - from;
        };
        // Sweep: `cursor` marks how far coverage extends; any refresh that
        // starts past the cursor exposes an offline hole in between.
        let mut offline = SimDuration::ZERO;
        let mut cursor = from;
        for &r in refreshes {
            if r > to {
                break;
            }
            if r > cursor {
                offline += r - cursor;
                cursor = r;
            }
            let covered_until = (r + self.expiration).min(to);
            if covered_until > cursor {
                cursor = covered_until;
            }
        }
        if to > cursor {
            offline += to - cursor;
        }
        offline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageIdGen;

    fn hb(ids: &mut MessageIdGen, created: u64, expires: u64) -> Heartbeat {
        Heartbeat {
            id: ids.next_id(),
            app: AppId::new(0),
            source: DeviceId::new(0),
            // Real generators give every heartbeat of a session a fresh
            // sequence number; mirror that so seq-dedup stays quiet.
            seq: created as u32,
            size: 74,
            created_at: SimTime::from_secs(created),
            expires_at: SimTime::from_secs(expires),
        }
    }

    #[test]
    fn fresh_heartbeats_keep_session_online() {
        let mut server = ImServer::new(SimDuration::from_secs(810));
        let mut ids = MessageIdGen::new();
        server.register(DeviceId::new(0), AppId::new(0), SimTime::ZERO);
        for k in 1..=10u64 {
            let h = hb(&mut ids, 270 * k, 270 * k + 810);
            assert!(server.deliver(&h, SimTime::from_secs(270 * k + 5)));
        }
        assert_eq!(server.delivered(), 10);
        assert!(server.is_online(DeviceId::new(0), AppId::new(0), SimTime::from_secs(2700)));
    }

    #[test]
    fn deliver_observed_names_the_dedup_layer() {
        let mut server = ImServer::new(SimDuration::from_secs(810));
        let mut ids = MessageIdGen::new();
        let first = hb(&mut ids, 0, 810);
        assert_eq!(
            server.deliver_observed(&first, SimTime::from_secs(5)),
            DeliveryOutcome::Accepted
        );
        // Same copy re-sent: caught by the id layer.
        assert_eq!(
            server.deliver_observed(&first, SimTime::from_secs(6)),
            DeliveryOutcome::DuplicateId
        );
        // A retransmit under a fresh id but the same (source, app, seq):
        // caught by the seq layer, never by the id layer.
        let retransmit = Heartbeat {
            id: ids.next_id(),
            ..first
        };
        assert_eq!(
            server.deliver_observed(&retransmit, SimTime::from_secs(7)),
            DeliveryOutcome::DuplicateSeq
        );
        // First sighting past expiry.
        let stale = hb(&mut ids, 10, 100);
        assert_eq!(
            server.deliver_observed(&stale, SimTime::from_secs(100)),
            DeliveryOutcome::Expired
        );
        assert_eq!(server.delivered(), 1);
        assert_eq!(server.duplicates(), 2);
        assert_eq!(server.rejected_expired(), 1);
    }

    #[test]
    fn expired_heartbeat_is_rejected() {
        let mut server = ImServer::new(SimDuration::from_secs(810));
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids, 0, 100);
        assert!(!server.deliver(&h, SimTime::from_secs(100)));
        assert_eq!(server.rejected_expired(), 1);
        assert_eq!(server.delivered(), 0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut server = ImServer::new(SimDuration::from_secs(810));
        let mut ids = MessageIdGen::new();
        let h = hb(&mut ids, 0, 1000);
        assert!(server.deliver(&h, SimTime::from_secs(1)));
        assert!(!server.deliver(&h, SimTime::from_secs(2)));
        assert_eq!(server.duplicates(), 1);
        assert_eq!(server.delivered(), 1);
    }

    #[test]
    fn retransmit_under_fresh_id_is_deduped_by_seq() {
        let mut server = ImServer::new(SimDuration::from_secs(810));
        let mut ids = MessageIdGen::new();
        let original = hb(&mut ids, 10, 1000);
        assert!(server.deliver(&original, SimTime::from_secs(11)));
        // A retried copy keeps (source, app, seq) but gets a new id —
        // e.g. the D2D path landed late *and* the retry landed.
        let retry = Heartbeat {
            id: ids.next_id(),
            ..original
        };
        assert!(!server.deliver(&retry, SimTime::from_secs(12)));
        assert_eq!(server.duplicates(), 1);
        assert_eq!(server.delivered(), 1);
    }

    #[test]
    fn unknown_session_is_offline() {
        let server = ImServer::new(SimDuration::from_secs(810));
        assert!(!server.is_online(DeviceId::new(9), AppId::new(9), SimTime::from_secs(1)));
        assert_eq!(
            server.offline_time(
                DeviceId::new(9),
                AppId::new(9),
                SimTime::ZERO,
                SimTime::from_secs(100)
            ),
            SimDuration::from_secs(100)
        );
    }

    #[test]
    fn offline_time_measures_gaps() {
        let mut server = ImServer::new(SimDuration::from_secs(100));
        let device = DeviceId::new(0);
        let app = AppId::new(0);
        server.register(device, app, SimTime::ZERO); // covered [0,100)
        let mut ids = MessageIdGen::new();
        // Next refresh only at t=250: offline in [100, 250).
        let h = hb(&mut ids, 250, 1000);
        server.deliver(&h, SimTime::from_secs(250)); // covered [250,350)
        let offline = server.offline_time(device, app, SimTime::ZERO, SimTime::from_secs(400));
        // Holes: [100,250) = 150 and [350,400) = 50.
        assert_eq!(offline, SimDuration::from_secs(200));
    }

    #[test]
    fn continuous_refreshes_mean_zero_offline() {
        let mut server = ImServer::new(SimDuration::from_secs(300));
        let device = DeviceId::new(0);
        let app = AppId::new(0);
        server.register(device, app, SimTime::ZERO);
        let mut ids = MessageIdGen::new();
        for k in 1..=20u64 {
            let h = hb(&mut ids, 270 * k, 270 * k + 810);
            server.deliver(&h, SimTime::from_secs(270 * k));
        }
        assert_eq!(
            server.offline_time(device, app, SimTime::ZERO, SimTime::from_secs(5400)),
            SimDuration::ZERO
        );
    }
}
