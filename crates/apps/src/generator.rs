//! Workload generation: heartbeat schedules and mixed traffic.

use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::message::{Heartbeat, MessageIdGen};
use crate::profile::AppProfile;

/// Produces the periodic heartbeat stream of one `(device, app)` pair.
///
/// Real heartbeat timers drift (Android alarms coalesce, the app may
/// reset its timer on foreground traffic), so a uniform ±`jitter_frac`
/// slack is applied to every interval.
///
/// # Examples
///
/// ```
/// use hbr_apps::{AppProfile, HeartbeatSchedule, MessageIdGen};
/// use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};
///
/// let mut schedule = HeartbeatSchedule::new(DeviceId::new(0), AppProfile::wechat(), 0.0);
/// let mut ids = MessageIdGen::new();
/// let mut rng = SimRng::seed_from(1);
/// let first = schedule.next_heartbeat(&mut ids, &mut rng);
/// assert_eq!(first.created_at, SimTime::from_secs(270));
/// ```
#[derive(Debug, Clone)]
pub struct HeartbeatSchedule {
    device: DeviceId,
    app: AppProfile,
    jitter_frac: f64,
    next_at: SimTime,
    seq: u32,
}

impl HeartbeatSchedule {
    /// Creates a schedule whose first heartbeat fires one period from
    /// time zero.
    ///
    /// # Panics
    ///
    /// Panics if `jitter_frac` is negative or not finite.
    pub fn new(device: DeviceId, app: AppProfile, jitter_frac: f64) -> Self {
        assert!(
            jitter_frac.is_finite() && jitter_frac >= 0.0,
            "jitter fraction must be finite and non-negative"
        );
        HeartbeatSchedule {
            device,
            next_at: SimTime::ZERO + app.heartbeat_period,
            app,
            jitter_frac,
            seq: 0,
        }
    }

    /// The device this schedule belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The application profile driving the schedule.
    pub fn app(&self) -> &AppProfile {
        &self.app
    }

    /// When the next heartbeat will be emitted.
    pub fn peek_next(&self) -> SimTime {
        self.next_at
    }

    /// Emits the next heartbeat and advances the timer.
    pub fn next_heartbeat(&mut self, ids: &mut MessageIdGen, rng: &mut SimRng) -> Heartbeat {
        let created_at = self.next_at;
        let hb = Heartbeat {
            id: ids.next_id(),
            app: self.app.id,
            source: self.device,
            seq: self.seq,
            size: self.app.heartbeat_size,
            created_at,
            expires_at: created_at + self.app.expiration,
        };
        self.seq += 1;
        let interval = rng.jitter(self.app.heartbeat_period, self.jitter_frac);
        self.next_at = created_at + interval;
        hb
    }

    /// Emits every heartbeat up to (and including) `until`.
    pub fn heartbeats_until(
        &mut self,
        until: SimTime,
        ids: &mut MessageIdGen,
        rng: &mut SimRng,
    ) -> Vec<Heartbeat> {
        let mut out = Vec::new();
        while self.next_at <= until {
            out.push(self.next_heartbeat(ids, rng));
        }
        out
    }
}

/// One event in a mixed traffic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A keep-alive heartbeat.
    Heartbeat(Heartbeat),
    /// A foreground (user-visible) message of the given size.
    Data {
        /// Emission instant.
        at: SimTime,
        /// Payload size in bytes.
        size: usize,
    },
}

impl TrafficEvent {
    /// The emission instant of this event.
    pub fn at(&self) -> SimTime {
        match self {
            TrafficEvent::Heartbeat(hb) => hb.created_at,
            TrafficEvent::Data { at, .. } => *at,
        }
    }

    /// `true` if this is a heartbeat.
    pub fn is_heartbeat(&self) -> bool {
        matches!(self, TrafficEvent::Heartbeat(_))
    }
}

/// Generates one app's full traffic trace — heartbeats plus foreground
/// messages — whose heartbeat share converges to the app's Table I
/// value.
///
/// Foreground traffic is **session-bursty**: real IM usage comes in
/// conversations — the user opens the app and exchanges several messages
/// seconds apart, then leaves it idle. Sessions start as a Poisson
/// process whose mean is scaled so the *total message count* still
/// reproduces the app's Table I heartbeat share; inside a session,
/// messages are seconds apart (and therefore share RRC connections on
/// the cellular side, which is why heartbeats dominate *signaling* far
/// more than they dominate bytes — the §I motivation).
///
/// # Examples
///
/// ```
/// use hbr_apps::{AppProfile, TrafficGenerator};
/// use hbr_sim::{DeviceId, SimDuration, SimRng, SimTime};
///
/// let mut generator = TrafficGenerator::new(DeviceId::new(0), AppProfile::whatsapp());
/// let mut rng = SimRng::seed_from(42);
/// let trace = generator.trace_until(SimTime::from_secs(24 * 3600), &mut rng);
/// let heartbeats = trace.iter().filter(|e| e.is_heartbeat()).count();
/// assert!(heartbeats > 0 && heartbeats < trace.len());
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    schedule: HeartbeatSchedule,
    ids: MessageIdGen,
    /// Mean foreground payload in bytes (user messages, receipts, sync).
    pub data_size_mean: usize,
    /// Mean messages per foreground session (geometric, ≥ 1).
    pub session_burst_mean: f64,
}

impl TrafficGenerator {
    /// Creates a generator with 2% heartbeat-timer jitter, 512 B mean
    /// foreground payloads and ~6-message conversation bursts.
    pub fn new(device: DeviceId, app: AppProfile) -> Self {
        TrafficGenerator {
            schedule: HeartbeatSchedule::new(device, app, 0.02),
            ids: MessageIdGen::new(),
            data_size_mean: 512,
            session_burst_mean: 6.0,
        }
    }

    /// The application being generated.
    pub fn app(&self) -> &AppProfile {
        self.schedule.app()
    }

    /// Generates the complete, time-sorted trace up to `until`.
    pub fn trace_until(&mut self, until: SimTime, rng: &mut SimRng) -> Vec<TrafficEvent> {
        let mut events: Vec<TrafficEvent> = self
            .schedule
            .heartbeats_until(until, &mut self.ids, rng)
            .into_iter()
            .map(TrafficEvent::Heartbeat)
            .collect();

        // Sessions arrive Poisson; scaling the inter-session mean by the
        // burst size keeps the total message count (and hence the Table I
        // share) unchanged.
        let per_message_mean = self.schedule.app().foreground_mean_interval();
        let session_mean = per_message_mean.mul_f64(self.session_burst_mean.max(1.0));
        let mut t = SimTime::ZERO + rng.exp_duration(session_mean);
        while t <= until {
            // Geometric burst length with the configured mean.
            let p_continue = 1.0 - 1.0 / self.session_burst_mean.max(1.0);
            let mut at = t;
            loop {
                let size = (rng.range(0.25..2.0) * self.data_size_mean as f64) as usize;
                events.push(TrafficEvent::Data { at, size });
                if at > until || !rng.chance(p_continue) {
                    break;
                }
                // Messages within a conversation are seconds apart.
                at += SimDuration::from_secs_f64(rng.range(2.0..10.0));
            }
            t += rng.exp_duration(session_mean);
        }
        events.retain(|e| e.at() <= until);
        events.sort_by_key(TrafficEvent::at);
        events
    }

    /// The heartbeat share of a trace — the statistic reported in
    /// Table I.
    pub fn heartbeat_share(trace: &[TrafficEvent]) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        trace.iter().filter(|e| e.is_heartbeat()).count() as f64 / trace.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1234)
    }

    #[test]
    fn schedule_without_jitter_is_exact() {
        let mut s = HeartbeatSchedule::new(DeviceId::new(0), AppProfile::wechat(), 0.0);
        let mut ids = MessageIdGen::new();
        let mut r = rng();
        for k in 1..=5u64 {
            let hb = s.next_heartbeat(&mut ids, &mut r);
            assert_eq!(hb.created_at, SimTime::from_secs(270 * k));
            assert_eq!(hb.seq as u64, k - 1);
            assert_eq!(
                hb.expires_at,
                hb.created_at + AppProfile::wechat().expiration
            );
        }
    }

    #[test]
    fn jittered_schedule_stays_in_band() {
        let mut s = HeartbeatSchedule::new(DeviceId::new(0), AppProfile::wechat(), 0.05);
        let mut ids = MessageIdGen::new();
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            let hb = s.next_heartbeat(&mut ids, &mut r);
            let gap = (hb.created_at - last).as_secs_f64();
            assert!((256.0..=284.0).contains(&gap), "gap {gap} outside ±5%");
            last = hb.created_at;
        }
    }

    #[test]
    fn heartbeats_until_is_inclusive() {
        let mut s = HeartbeatSchedule::new(DeviceId::new(0), AppProfile::wechat(), 0.0);
        let mut ids = MessageIdGen::new();
        let hbs = s.heartbeats_until(SimTime::from_secs(810), &mut ids, &mut rng());
        assert_eq!(hbs.len(), 3); // 270, 540, 810
    }

    #[test]
    fn trace_share_converges_to_table1() {
        for app in AppProfile::paper_apps() {
            let expected = app.heartbeat_share;
            let mut g = TrafficGenerator::new(DeviceId::new(0), app.clone());
            let mut r = rng();
            // Four simulated weeks: session bursts make the data count
            // high-variance, so convergence needs a longer horizon.
            let trace = g.trace_until(SimTime::from_secs(28 * 24 * 3600), &mut r);
            let share = TrafficGenerator::heartbeat_share(&trace);
            assert!(
                (share - expected).abs() < 0.03,
                "{}: share {share:.3}, Table I says {expected}",
                app.name
            );
        }
    }

    #[test]
    fn trace_is_time_sorted() {
        let mut g = TrafficGenerator::new(DeviceId::new(0), AppProfile::qq());
        let trace = g.trace_until(SimTime::from_secs(24 * 3600), &mut rng());
        for w in trace.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn empty_trace_share_is_zero() {
        assert_eq!(TrafficGenerator::heartbeat_share(&[]), 0.0);
    }
}
