//! Facade crate re-exporting the D2D heartbeat relaying framework workspace.
pub use hbr_apps as apps;
pub use hbr_baseline as baseline;
pub use hbr_bench as bench;
pub use hbr_cellular as cellular;
pub use hbr_core as core;
pub use hbr_d2d as d2d;
pub use hbr_energy as energy;
pub use hbr_mobility as mobility;
pub use hbr_sim as sim;
