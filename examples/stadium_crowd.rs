//! Stadium crowd: the signaling-storm scenario the paper's introduction
//! motivates.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stadium_crowd
//! ```
//!
//! Forty smartphones pack a 40 m × 40 m stand; eight volunteer relays
//! (recruited via the operator's reward scheme) collect heartbeats from
//! the rest. The example runs the identical crowd twice — once under the
//! unmodified cellular system, once under the D2D framework — and shows
//! the base station's control-channel relief.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{
    DeviceSpec, Mode, Role, Scenario, ScenarioConfig, ScenarioReport,
};
use d2d_heartbeat::mobility::model::Bounds;
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::{SimDuration, SimRng};

fn build(mode: Mode, seed: u64) -> ScenarioReport {
    let mut config = ScenarioConfig::new(SimDuration::from_secs(2 * 3600), seed);
    config.mode = mode;
    // Fans receive pushes (goal alerts, messages) roughly twice an hour.
    config.push_interval = Some(SimDuration::from_secs(1800));
    let mut rng = SimRng::seed_from(seed);
    let bounds = Bounds::square(40.0);

    let crowd = 40usize;
    let relays = 8usize;
    for i in 0..crowd {
        let x = rng.range(2.0..38.0);
        let y = rng.range(2.0..38.0);
        let role = if i < relays { Role::Relay } else { Role::Ue };
        // Most spectators stand still; a few wander the concourse.
        let mobility = if i % 10 == 9 {
            Mobility::random_waypoint(Position::new(x, y), bounds, 0.5, 1.2, 60.0)
        } else {
            Mobility::stationary(Position::new(x, y))
        };
        let apps = match i % 3 {
            0 => vec![AppProfile::wechat()],
            1 => vec![AppProfile::whatsapp()],
            _ => vec![AppProfile::wechat(), AppProfile::qq()],
        };
        config.add_device(DeviceSpec {
            role,
            apps,
            mobility,
            battery_mah: None,
        });
    }
    Scenario::new(config).run()
}

fn main() {
    println!("Stadium crowd: 40 phones, 8 volunteer relays, 2 simulated hours\n");

    let baseline = build(Mode::OriginalCellular, 7);
    let framework = build(Mode::D2dFramework, 7);

    println!("                          original      D2D framework");
    println!(
        "layer-3 messages       {:>10}       {:>10}  ({:.0}% saved)",
        baseline.total_l3,
        framework.total_l3,
        (1.0 - framework.total_l3 as f64 / baseline.total_l3 as f64) * 100.0
    );
    println!(
        "RRC connections        {:>10}       {:>10}",
        baseline.total_rrc, framework.total_rrc
    );
    println!(
        "system energy (µAh)    {:>10.0}       {:>10.0}  ({:.0}% saved)",
        baseline.total_energy_uah,
        framework.total_energy_uah,
        (1.0 - framework.total_energy_uah / baseline.total_energy_uah) * 100.0
    );
    println!(
        "heartbeats delivered   {:>10}       {:>10}",
        baseline.delivered, framework.delivered
    );
    println!(
        "sessions ever offline  {:>10.0}s      {:>10.0}s",
        baseline.offline_secs, framework.offline_secs
    );
    println!(
        "pushes delivered       {:>10}       {:>10}  (missed: {} / {})",
        baseline.pushes_delivered,
        framework.pushes_delivered,
        baseline.pushes_missed,
        framework.pushes_missed
    );

    println!("\nper-relay ledger (forwards → operator credits):");
    for dev in framework.devices.iter().filter(|d| d.role == Role::Relay) {
        println!(
            "  {}: {:>4} heartbeats collected, {:>4} credits, {:>8.0} µAh spent",
            dev.device, dev.forwards, dev.rewards, dev.energy_uah
        );
    }

    let ue_fallbacks: u64 = framework
        .devices
        .iter()
        .filter(|d| d.role == Role::Ue)
        .map(|d| d.fallbacks)
        .sum();
    println!("\nUE cellular fallbacks: {ue_fallbacks} (mobility + capacity rejections)");
}
