//! Quickstart: reproduce the paper's headline numbers in a few lines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! One relay and one UE sit a metre apart; the UE forwards its WeChat
//! heartbeats over Wi-Fi Direct, the relay aggregates them with its own
//! and ships one RRC connection per period. We print the energy and
//! signaling ledger against the unmodified per-device cellular system.

use d2d_heartbeat::core::experiment::{ControlledExperiment, ExperimentConfig};

fn main() {
    println!("D2D heartbeat relaying — quickstart\n");

    for transmissions in [1u32, 7] {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count: 1,
            transmissions,
            distance_m: 1.0,
            ..ExperimentConfig::default()
        })
        .run();

        println!("after {transmissions} forwarded heartbeat(s):");
        println!(
            "  UE energy     {:>8.0} µAh   (original system: {:>8.0} µAh → {:.0}% saved)",
            run.ue_energy(),
            run.original_device_energy(),
            run.ue_saving() * 100.0
        );
        println!(
            "  system energy {:>8.0} µAh   (original system: {:>8.0} µAh → {:.0}% saved)",
            run.system_energy(),
            run.original_system_energy(),
            run.system_saving() * 100.0
        );
        println!(
            "  layer-3 msgs  {:>8}       (original system: {:>8} → {:.0}% saved)",
            run.framework_l3(),
            run.original_l3(),
            run.signaling_saving() * 100.0
        );
        println!(
            "  RRC connections: relay {} vs original {}\n",
            run.relay_rrc_connections, run.original_rrc_connections
        );
    }

    println!(
        "Paper (ICDCS'17): >50% signaling reduction, up to 36% system / 55% UE energy saving."
    );
}
