//! Relay economy: is volunteering as a relay worth it?
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example relay_economy
//! ```
//!
//! §III-A argues relays accept extra battery drain in exchange for
//! operator credits (the Karma Go model). This example quantifies the
//! exchange rate: for growing numbers of served UEs, how much extra
//! energy does the relay burn, how much does the whole neighbourhood
//! save, and how many credits does the relay earn? It also exercises the
//! group-owner-intent decay and the feedback fallback under a relay
//! whose battery actually runs out.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::experiment::{ControlledExperiment, ExperimentConfig};
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::d2d::GoIntent;
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::SimDuration;

fn main() {
    println!("Relay economy — what does serving UEs cost and earn?\n");

    println!("served UEs | relay extra µAh | UEs saved µAh | credits | exchange rate");
    println!("-----------+-----------------+---------------+---------+--------------");
    for ues in [1usize, 2, 4, 7] {
        let run = ControlledExperiment::new(ExperimentConfig {
            ue_count: ues,
            transmissions: 7,
            ..ExperimentConfig::default()
        })
        .run();
        let credits = run.forwarded;
        let wasted = run.relay_wasted_energy();
        let saved = run.ue_saved_energy();
        println!(
            "{:>10} | {:>15.0} | {:>13.0} | {:>7} | {:>7.0} µAh saved/credit",
            ues,
            wasted,
            saved,
            credits,
            saved / credits as f64
        );
    }

    println!("\ngroup-owner intent decay as the relay fills (M = 7):");
    for k in 0..=7usize {
        let intent = GoIntent::for_relay_fill(k, 7);
        println!(
            "  {k}/7 collected → goIntent {:>2}  {}",
            intent.value(),
            "#".repeat(intent.value() as usize)
        );
    }

    // A relay that dies on the job: the framework must degrade gracefully.
    println!("\nfailure drill: relay battery dies mid-shift (2.0 mAh pack):");
    let mut config = ScenarioConfig::new(SimDuration::from_secs(3 * 3600), 42);
    config.mode = Mode::D2dFramework;
    config.add_device(DeviceSpec {
        role: Role::Relay,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::stationary(Position::new(0.0, 0.0)),
        battery_mah: Some(2.0),
    });
    for x in [1.0, 2.0] {
        config.add_device(DeviceSpec {
            role: Role::Ue,
            apps: vec![AppProfile::wechat()],
            mobility: Mobility::stationary(Position::new(x, 0.0)),
            battery_mah: None,
        });
    }
    let report = Scenario::new(config).run();
    let relay = &report.devices[0];
    println!(
        "  relay depleted: {} (collected {} heartbeats before dying)",
        relay.battery_depleted, relay.forwards
    );
    for ue in &report.devices[1..] {
        println!(
            "  {}: {} forwards, {} cellular fallbacks, offline {:.0}s",
            ue.device, ue.forwards, ue.fallbacks, ue.offline_secs
        );
    }
    println!(
        "  heartbeats delivered {} / duplicates {} / expired {}",
        report.delivered, report.duplicates, report.rejected_expired
    );
    println!("\nTakeaway: UEs ride the feedback timeout back to cellular; presence holds.");
}
