//! Commuter: one UE, two relay "neighbourhoods", a walk between them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example commuter
//! ```
//!
//! The paper's framework assumes opportunistic proximity; real users move
//! between pockets of proximity. A UE spends the morning near its home
//! relay, walks twenty minutes to the office (out of range of both), and
//! works the afternoon near the office relay. The example shows the
//! expected lifecycle: forward → detach + cellular fallback while in
//! transit → re-match to the new relay — with presence intact throughout,
//! and an execution trace to read the story from.

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::core::world::{DeviceSpec, Mode, Role, Scenario, ScenarioConfig};
use d2d_heartbeat::mobility::{Mobility, Position};
use d2d_heartbeat::sim::SimDuration;

fn main() {
    println!("Commuter: home relay at x=0, office relay at x=800 m\n");

    let mut config = ScenarioConfig::new(SimDuration::from_secs(6 * 3600), 99);
    config.mode = Mode::D2dFramework;
    config.trace_capacity = 64;

    for x in [0.0, 800.0] {
        config.add_device(DeviceSpec {
            role: Role::Relay,
            apps: vec![AppProfile::wechat()],
            mobility: Mobility::stationary(Position::new(x, 0.0)),
            battery_mah: None,
        });
    }
    // The commuter: 2 h at home (2 m from the home relay), a ~22 min walk
    // at 0.6 m/s, then parked 2 m from the office relay.
    config.add_device(DeviceSpec {
        role: Role::Ue,
        apps: vec![AppProfile::wechat()],
        mobility: Mobility::waypoint_path(
            Position::new(2.0, 0.0),
            vec![
                (Position::new(2.0, 0.0), 0.1, 2.0 * 3600.0), // linger at home
                (Position::new(798.0, 0.0), 0.6, 0.0),        // the commute
            ],
        ),
        battery_mah: None,
    });

    let report = Scenario::new(config).run();
    let home = &report.devices[0];
    let office = &report.devices[1];
    let ue = &report.devices[2];

    println!("home relay   : {} heartbeats collected", home.forwards);
    println!("office relay : {} heartbeats collected", office.forwards);
    println!(
        "commuter     : {} forwards, {} cellular sends (fallbacks {}), offline {:.0}s",
        ue.forwards, ue.rrc_connections, ue.fallbacks, ue.offline_secs
    );

    println!("\nexecution trace (last {} events):", report.trace.len());
    for entry in &report.trace {
        println!("  {entry}");
    }

    assert!(home.forwards > 0, "morning heartbeats ride the home relay");
    assert!(
        office.forwards > 0,
        "afternoon heartbeats ride the office relay"
    );
    assert!(
        ue.rrc_connections > 0,
        "the commute itself goes over cellular"
    );
    assert_eq!(report.offline_secs, 0.0, "presence survives the commute");
    println!("\nAll lifecycle assertions hold: forward → fallback in transit → re-match.");
}
