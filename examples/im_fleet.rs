//! IM fleet: compare every heartbeat strategy on realistic app mixes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example im_fleet
//! ```
//!
//! A day in the life of one phone running each of the paper's four IM
//! apps, evaluated under all five strategies from the related-work
//! landscape. This is the view an app developer integrating the
//! framework's API (§IV-B) would care about: what does each approach do
//! to my users' battery, the operator's control channel, and presence?

use d2d_heartbeat::apps::AppProfile;
use d2d_heartbeat::baseline::{
    D2dForwarding, ExtendedPeriod, FastDormancy, Original, Piggyback, Strategy, Workload,
};
use d2d_heartbeat::sim::SimDuration;

fn main() {
    println!("IM fleet: 24 h mixed workload per app, all strategies\n");

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(Original),
        Box::new(ExtendedPeriod { factor: 2 }),
        Box::new(Piggyback {
            window: SimDuration::from_secs(120),
        }),
        Box::new(FastDormancy),
        Box::new(D2dForwarding::default()),
    ];

    for app in AppProfile::paper_apps() {
        let workload = Workload::mixed(app.clone(), 24 * 3600, 11);
        println!(
            "{} (heartbeat every {}s, {}B, expiration {}s)",
            app.name,
            app.heartbeat_period.as_secs(),
            app.heartbeat_size,
            app.expiration.as_secs()
        );
        println!(
            "  {:<16} {:>12} {:>9} {:>9} {:>11} {:>10}",
            "strategy", "energy µAh", "L3 msgs", "RRC", "max gap s", "offline s"
        );
        for strategy in &strategies {
            let out = strategy.run(&workload);
            println!(
                "  {:<16} {:>12.0} {:>9} {:>9} {:>11.0} {:>10.0}",
                out.name,
                out.device_energy_uah,
                out.l3_messages,
                out.rrc_connections,
                out.max_presence_gap_secs,
                out.offline_secs
            );
        }
        println!();
    }

    println!("Reading guide: d2d-forwarding should dominate on L3 while staying");
    println!("at zero offline seconds; fast-dormancy wins raw energy but floods");
    println!("the control channel; extended periods flirt with expiration.");
}
