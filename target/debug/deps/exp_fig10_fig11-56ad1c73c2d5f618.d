/root/repo/target/debug/deps/exp_fig10_fig11-56ad1c73c2d5f618.d: crates/bench/src/bin/exp_fig10_fig11.rs

/root/repo/target/debug/deps/exp_fig10_fig11-56ad1c73c2d5f618: crates/bench/src/bin/exp_fig10_fig11.rs

crates/bench/src/bin/exp_fig10_fig11.rs:
