/root/repo/target/debug/deps/ablation_expiry-e500e6fb0f840f3d.d: crates/bench/src/bin/ablation_expiry.rs

/root/repo/target/debug/deps/ablation_expiry-e500e6fb0f840f3d: crates/bench/src/bin/ablation_expiry.rs

crates/bench/src/bin/ablation_expiry.rs:
