/root/repo/target/debug/deps/exp_fig8_fig9-eca7282504513db3.d: crates/bench/src/bin/exp_fig8_fig9.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig8_fig9-eca7282504513db3.rmeta: crates/bench/src/bin/exp_fig8_fig9.rs Cargo.toml

crates/bench/src/bin/exp_fig8_fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
