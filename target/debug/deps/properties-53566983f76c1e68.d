/root/repo/target/debug/deps/properties-53566983f76c1e68.d: crates/energy/tests/properties.rs

/root/repo/target/debug/deps/properties-53566983f76c1e68: crates/energy/tests/properties.rs

crates/energy/tests/properties.rs:
