/root/repo/target/debug/deps/exp_occupancy-3ce5d061bb3d9b8a.d: crates/bench/src/bin/exp_occupancy.rs

/root/repo/target/debug/deps/exp_occupancy-3ce5d061bb3d9b8a: crates/bench/src/bin/exp_occupancy.rs

crates/bench/src/bin/exp_occupancy.rs:
