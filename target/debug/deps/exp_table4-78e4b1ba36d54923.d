/root/repo/target/debug/deps/exp_table4-78e4b1ba36d54923.d: crates/bench/src/bin/exp_table4.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table4-78e4b1ba36d54923.rmeta: crates/bench/src/bin/exp_table4.rs Cargo.toml

crates/bench/src/bin/exp_table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
