/root/repo/target/debug/deps/exp_motivation-a2de8fae12280faa.d: crates/bench/src/bin/exp_motivation.rs

/root/repo/target/debug/deps/exp_motivation-a2de8fae12280faa: crates/bench/src/bin/exp_motivation.rs

crates/bench/src/bin/exp_motivation.rs:
