/root/repo/target/debug/deps/properties-2ae991b74c565942.d: crates/cellular/tests/properties.rs

/root/repo/target/debug/deps/properties-2ae991b74c565942: crates/cellular/tests/properties.rs

crates/cellular/tests/properties.rs:
