/root/repo/target/debug/deps/exp_strategies-5939b9d3c446a211.d: crates/bench/src/bin/exp_strategies.rs

/root/repo/target/debug/deps/exp_strategies-5939b9d3c446a211: crates/bench/src/bin/exp_strategies.rs

crates/bench/src/bin/exp_strategies.rs:
