/root/repo/target/debug/deps/hbr_cellular-d72ac579db4766f5.d: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_cellular-d72ac579db4766f5.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs Cargo.toml

crates/cellular/src/lib.rs:
crates/cellular/src/bs.rs:
crates/cellular/src/config.rs:
crates/cellular/src/l3.rs:
crates/cellular/src/radio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
