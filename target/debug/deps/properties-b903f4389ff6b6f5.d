/root/repo/target/debug/deps/properties-b903f4389ff6b6f5.d: crates/mobility/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b903f4389ff6b6f5.rmeta: crates/mobility/tests/properties.rs Cargo.toml

crates/mobility/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
