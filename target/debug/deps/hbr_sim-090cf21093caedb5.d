/root/repo/target/debug/deps/hbr_sim-090cf21093caedb5.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libhbr_sim-090cf21093caedb5.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libhbr_sim-090cf21093caedb5.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
