/root/repo/target/debug/deps/exp_motivation-fdbeca9997bad165.d: crates/bench/src/bin/exp_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_motivation-fdbeca9997bad165.rmeta: crates/bench/src/bin/exp_motivation.rs Cargo.toml

crates/bench/src/bin/exp_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
