/root/repo/target/debug/deps/end_to_end-44dce0e27f8ddcd5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-44dce0e27f8ddcd5: tests/end_to_end.rs

tests/end_to_end.rs:
