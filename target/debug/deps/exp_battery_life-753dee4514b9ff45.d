/root/repo/target/debug/deps/exp_battery_life-753dee4514b9ff45.d: crates/bench/src/bin/exp_battery_life.rs Cargo.toml

/root/repo/target/debug/deps/libexp_battery_life-753dee4514b9ff45.rmeta: crates/bench/src/bin/exp_battery_life.rs Cargo.toml

crates/bench/src/bin/exp_battery_life.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
