/root/repo/target/debug/deps/world_properties-b8ad404095487f17.d: tests/world_properties.rs Cargo.toml

/root/repo/target/debug/deps/libworld_properties-b8ad404095487f17.rmeta: tests/world_properties.rs Cargo.toml

tests/world_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
