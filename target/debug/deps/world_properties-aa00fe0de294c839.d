/root/repo/target/debug/deps/world_properties-aa00fe0de294c839.d: tests/world_properties.rs

/root/repo/target/debug/deps/world_properties-aa00fe0de294c839: tests/world_properties.rs

tests/world_properties.rs:
