/root/repo/target/debug/deps/hbr_energy-5ee8fd11c061d629.d: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

/root/repo/target/debug/deps/hbr_energy-5ee8fd11c061d629: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs

crates/energy/src/lib.rs:
crates/energy/src/battery.rs:
crates/energy/src/meter.rs:
crates/energy/src/monitor.rs:
crates/energy/src/phase.rs:
crates/energy/src/profile.rs:
crates/energy/src/units.rs:
