/root/repo/target/debug/deps/exp_motivation-62f1baa58768e583.d: crates/bench/src/bin/exp_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_motivation-62f1baa58768e583.rmeta: crates/bench/src/bin/exp_motivation.rs Cargo.toml

crates/bench/src/bin/exp_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
