/root/repo/target/debug/deps/exp_fig6_fig7-aff6a05e4ce98f69.d: crates/bench/src/bin/exp_fig6_fig7.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig6_fig7-aff6a05e4ce98f69.rmeta: crates/bench/src/bin/exp_fig6_fig7.rs Cargo.toml

crates/bench/src/bin/exp_fig6_fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
