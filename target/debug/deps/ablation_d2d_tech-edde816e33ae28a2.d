/root/repo/target/debug/deps/ablation_d2d_tech-edde816e33ae28a2.d: crates/bench/src/bin/ablation_d2d_tech.rs Cargo.toml

/root/repo/target/debug/deps/libablation_d2d_tech-edde816e33ae28a2.rmeta: crates/bench/src/bin/ablation_d2d_tech.rs Cargo.toml

crates/bench/src/bin/ablation_d2d_tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
