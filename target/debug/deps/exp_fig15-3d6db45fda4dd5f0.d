/root/repo/target/debug/deps/exp_fig15-3d6db45fda4dd5f0.d: crates/bench/src/bin/exp_fig15.rs

/root/repo/target/debug/deps/exp_fig15-3d6db45fda4dd5f0: crates/bench/src/bin/exp_fig15.rs

crates/bench/src/bin/exp_fig15.rs:
