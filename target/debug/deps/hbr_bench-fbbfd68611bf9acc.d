/root/repo/target/debug/deps/hbr_bench-fbbfd68611bf9acc.d: crates/bench/src/lib.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_bench-fbbfd68611bf9acc.rmeta: crates/bench/src/lib.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
