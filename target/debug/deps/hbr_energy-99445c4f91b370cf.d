/root/repo/target/debug/deps/hbr_energy-99445c4f91b370cf.d: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_energy-99445c4f91b370cf.rmeta: crates/energy/src/lib.rs crates/energy/src/battery.rs crates/energy/src/meter.rs crates/energy/src/monitor.rs crates/energy/src/phase.rs crates/energy/src/profile.rs crates/energy/src/units.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/battery.rs:
crates/energy/src/meter.rs:
crates/energy/src/monitor.rs:
crates/energy/src/phase.rs:
crates/energy/src/profile.rs:
crates/energy/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
