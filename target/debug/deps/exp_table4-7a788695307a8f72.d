/root/repo/target/debug/deps/exp_table4-7a788695307a8f72.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/debug/deps/exp_table4-7a788695307a8f72: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
