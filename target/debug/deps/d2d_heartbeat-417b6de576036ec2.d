/root/repo/target/debug/deps/d2d_heartbeat-417b6de576036ec2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libd2d_heartbeat-417b6de576036ec2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
