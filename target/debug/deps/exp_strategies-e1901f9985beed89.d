/root/repo/target/debug/deps/exp_strategies-e1901f9985beed89.d: crates/bench/src/bin/exp_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libexp_strategies-e1901f9985beed89.rmeta: crates/bench/src/bin/exp_strategies.rs Cargo.toml

crates/bench/src/bin/exp_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
