/root/repo/target/debug/deps/exp_fig13-862cba209ef2b893.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-862cba209ef2b893: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
