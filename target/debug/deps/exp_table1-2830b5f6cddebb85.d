/root/repo/target/debug/deps/exp_table1-2830b5f6cddebb85.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-2830b5f6cddebb85: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
