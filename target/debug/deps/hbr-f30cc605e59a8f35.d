/root/repo/target/debug/deps/hbr-f30cc605e59a8f35.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/hbr-f30cc605e59a8f35: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
