/root/repo/target/debug/deps/properties-63eb9c548bed7a35.d: crates/mobility/tests/properties.rs

/root/repo/target/debug/deps/properties-63eb9c548bed7a35: crates/mobility/tests/properties.rs

crates/mobility/tests/properties.rs:
