/root/repo/target/debug/deps/hbr_apps-3158dbd9ccbfd0b1.d: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_apps-3158dbd9ccbfd0b1.rmeta: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/generator.rs:
crates/apps/src/message.rs:
crates/apps/src/profile.rs:
crates/apps/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
