/root/repo/target/debug/deps/hbr_baseline-b066184765d116b4.d: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_baseline-b066184765d116b4.rmeta: crates/baseline/src/lib.rs crates/baseline/src/strategy.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
