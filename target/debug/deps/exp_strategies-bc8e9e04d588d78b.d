/root/repo/target/debug/deps/exp_strategies-bc8e9e04d588d78b.d: crates/bench/src/bin/exp_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libexp_strategies-bc8e9e04d588d78b.rmeta: crates/bench/src/bin/exp_strategies.rs Cargo.toml

crates/bench/src/bin/exp_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
