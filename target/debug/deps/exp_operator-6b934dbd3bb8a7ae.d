/root/repo/target/debug/deps/exp_operator-6b934dbd3bb8a7ae.d: crates/bench/src/bin/exp_operator.rs

/root/repo/target/debug/deps/exp_operator-6b934dbd3bb8a7ae: crates/bench/src/bin/exp_operator.rs

crates/bench/src/bin/exp_operator.rs:
