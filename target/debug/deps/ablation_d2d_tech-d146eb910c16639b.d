/root/repo/target/debug/deps/ablation_d2d_tech-d146eb910c16639b.d: crates/bench/src/bin/ablation_d2d_tech.rs

/root/repo/target/debug/deps/ablation_d2d_tech-d146eb910c16639b: crates/bench/src/bin/ablation_d2d_tech.rs

crates/bench/src/bin/ablation_d2d_tech.rs:
