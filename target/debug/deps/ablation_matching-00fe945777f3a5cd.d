/root/repo/target/debug/deps/ablation_matching-00fe945777f3a5cd.d: crates/bench/src/bin/ablation_matching.rs Cargo.toml

/root/repo/target/debug/deps/libablation_matching-00fe945777f3a5cd.rmeta: crates/bench/src/bin/ablation_matching.rs Cargo.toml

crates/bench/src/bin/ablation_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
