/root/repo/target/debug/deps/ablation_scheduler-a75b220bc9588eff.d: crates/bench/src/bin/ablation_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libablation_scheduler-a75b220bc9588eff.rmeta: crates/bench/src/bin/ablation_scheduler.rs Cargo.toml

crates/bench/src/bin/ablation_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
