/root/repo/target/debug/deps/exp_operator-6cbebbc573f52598.d: crates/bench/src/bin/exp_operator.rs Cargo.toml

/root/repo/target/debug/deps/libexp_operator-6cbebbc573f52598.rmeta: crates/bench/src/bin/exp_operator.rs Cargo.toml

crates/bench/src/bin/exp_operator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
