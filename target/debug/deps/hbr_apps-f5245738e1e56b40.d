/root/repo/target/debug/deps/hbr_apps-f5245738e1e56b40.d: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

/root/repo/target/debug/deps/libhbr_apps-f5245738e1e56b40.rlib: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

/root/repo/target/debug/deps/libhbr_apps-f5245738e1e56b40.rmeta: crates/apps/src/lib.rs crates/apps/src/generator.rs crates/apps/src/message.rs crates/apps/src/profile.rs crates/apps/src/server.rs

crates/apps/src/lib.rs:
crates/apps/src/generator.rs:
crates/apps/src/message.rs:
crates/apps/src/profile.rs:
crates/apps/src/server.rs:
