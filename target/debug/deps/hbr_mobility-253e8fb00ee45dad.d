/root/repo/target/debug/deps/hbr_mobility-253e8fb00ee45dad.d: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_mobility-253e8fb00ee45dad.rmeta: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs Cargo.toml

crates/mobility/src/lib.rs:
crates/mobility/src/field.rs:
crates/mobility/src/grid.rs:
crates/mobility/src/model.rs:
crates/mobility/src/position.rs:
crates/mobility/src/rssi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
