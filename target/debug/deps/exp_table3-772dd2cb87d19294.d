/root/repo/target/debug/deps/exp_table3-772dd2cb87d19294.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-772dd2cb87d19294: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
