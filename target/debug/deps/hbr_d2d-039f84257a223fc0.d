/root/repo/target/debug/deps/hbr_d2d-039f84257a223fc0.d: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_d2d-039f84257a223fc0.rmeta: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs Cargo.toml

crates/d2d/src/lib.rs:
crates/d2d/src/group.rs:
crates/d2d/src/group_net.rs:
crates/d2d/src/link.rs:
crates/d2d/src/tech.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
