/root/repo/target/debug/deps/ablation_idle-3268a6f5f4fca279.d: crates/bench/src/bin/ablation_idle.rs

/root/repo/target/debug/deps/ablation_idle-3268a6f5f4fca279: crates/bench/src/bin/ablation_idle.rs

crates/bench/src/bin/ablation_idle.rs:
