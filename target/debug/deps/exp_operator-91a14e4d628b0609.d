/root/repo/target/debug/deps/exp_operator-91a14e4d628b0609.d: crates/bench/src/bin/exp_operator.rs Cargo.toml

/root/repo/target/debug/deps/libexp_operator-91a14e4d628b0609.rmeta: crates/bench/src/bin/exp_operator.rs Cargo.toml

crates/bench/src/bin/exp_operator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
