/root/repo/target/debug/deps/hbr_d2d-3a174edd92a01c84.d: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

/root/repo/target/debug/deps/libhbr_d2d-3a174edd92a01c84.rlib: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

/root/repo/target/debug/deps/libhbr_d2d-3a174edd92a01c84.rmeta: crates/d2d/src/lib.rs crates/d2d/src/group.rs crates/d2d/src/group_net.rs crates/d2d/src/link.rs crates/d2d/src/tech.rs

crates/d2d/src/lib.rs:
crates/d2d/src/group.rs:
crates/d2d/src/group_net.rs:
crates/d2d/src/link.rs:
crates/d2d/src/tech.rs:
