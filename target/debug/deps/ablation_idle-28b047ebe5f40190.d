/root/repo/target/debug/deps/ablation_idle-28b047ebe5f40190.d: crates/bench/src/bin/ablation_idle.rs Cargo.toml

/root/repo/target/debug/deps/libablation_idle-28b047ebe5f40190.rmeta: crates/bench/src/bin/ablation_idle.rs Cargo.toml

crates/bench/src/bin/ablation_idle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
