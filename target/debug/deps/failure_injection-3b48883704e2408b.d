/root/repo/target/debug/deps/failure_injection-3b48883704e2408b.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-3b48883704e2408b: tests/failure_injection.rs

tests/failure_injection.rs:
