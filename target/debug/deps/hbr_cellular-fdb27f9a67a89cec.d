/root/repo/target/debug/deps/hbr_cellular-fdb27f9a67a89cec.d: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

/root/repo/target/debug/deps/libhbr_cellular-fdb27f9a67a89cec.rlib: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

/root/repo/target/debug/deps/libhbr_cellular-fdb27f9a67a89cec.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs

crates/cellular/src/lib.rs:
crates/cellular/src/bs.rs:
crates/cellular/src/config.rs:
crates/cellular/src/l3.rs:
crates/cellular/src/radio.rs:
