/root/repo/target/debug/deps/ablation_expiry-91820848ea9d7635.d: crates/bench/src/bin/ablation_expiry.rs Cargo.toml

/root/repo/target/debug/deps/libablation_expiry-91820848ea9d7635.rmeta: crates/bench/src/bin/ablation_expiry.rs Cargo.toml

crates/bench/src/bin/ablation_expiry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
