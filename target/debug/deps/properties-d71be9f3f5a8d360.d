/root/repo/target/debug/deps/properties-d71be9f3f5a8d360.d: crates/baseline/tests/properties.rs

/root/repo/target/debug/deps/properties-d71be9f3f5a8d360: crates/baseline/tests/properties.rs

crates/baseline/tests/properties.rs:
