/root/repo/target/debug/deps/hbr_cellular-6c0f92fd8fac0ba2.d: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_cellular-6c0f92fd8fac0ba2.rmeta: crates/cellular/src/lib.rs crates/cellular/src/bs.rs crates/cellular/src/config.rs crates/cellular/src/l3.rs crates/cellular/src/radio.rs Cargo.toml

crates/cellular/src/lib.rs:
crates/cellular/src/bs.rs:
crates/cellular/src/config.rs:
crates/cellular/src/l3.rs:
crates/cellular/src/radio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
