/root/repo/target/debug/deps/hbr_core-48e084dca233c806.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libhbr_core-48e084dca233c806.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/detector.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/fleet.rs crates/core/src/incentive.rs crates/core/src/monitor.rs crates/core/src/scheduler.rs crates/core/src/world.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/detector.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/fleet.rs:
crates/core/src/incentive.rs:
crates/core/src/monitor.rs:
crates/core/src/scheduler.rs:
crates/core/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
