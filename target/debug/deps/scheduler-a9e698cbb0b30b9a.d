/root/repo/target/debug/deps/scheduler-a9e698cbb0b30b9a.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler-a9e698cbb0b30b9a.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
