/root/repo/target/debug/deps/exp_occupancy-c76d24c0af3f3d68.d: crates/bench/src/bin/exp_occupancy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_occupancy-c76d24c0af3f3d68.rmeta: crates/bench/src/bin/exp_occupancy.rs Cargo.toml

crates/bench/src/bin/exp_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
