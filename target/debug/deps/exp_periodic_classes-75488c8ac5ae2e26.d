/root/repo/target/debug/deps/exp_periodic_classes-75488c8ac5ae2e26.d: crates/bench/src/bin/exp_periodic_classes.rs Cargo.toml

/root/repo/target/debug/deps/libexp_periodic_classes-75488c8ac5ae2e26.rmeta: crates/bench/src/bin/exp_periodic_classes.rs Cargo.toml

crates/bench/src/bin/exp_periodic_classes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
