/root/repo/target/debug/deps/exp_fig8_fig9-f89a41ebce40e845.d: crates/bench/src/bin/exp_fig8_fig9.rs

/root/repo/target/debug/deps/exp_fig8_fig9-f89a41ebce40e845: crates/bench/src/bin/exp_fig8_fig9.rs

crates/bench/src/bin/exp_fig8_fig9.rs:
