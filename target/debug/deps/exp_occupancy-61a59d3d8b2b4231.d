/root/repo/target/debug/deps/exp_occupancy-61a59d3d8b2b4231.d: crates/bench/src/bin/exp_occupancy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_occupancy-61a59d3d8b2b4231.rmeta: crates/bench/src/bin/exp_occupancy.rs Cargo.toml

crates/bench/src/bin/exp_occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
