/root/repo/target/debug/deps/ablation_scheduler-d5507e3fa15d5917.d: crates/bench/src/bin/ablation_scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libablation_scheduler-d5507e3fa15d5917.rmeta: crates/bench/src/bin/ablation_scheduler.rs Cargo.toml

crates/bench/src/bin/ablation_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
