/root/repo/target/debug/deps/properties-df35d9a295f7ab91.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-df35d9a295f7ab91: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
