/root/repo/target/debug/deps/hbr_mobility-6a73116ddae6ad19.d: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

/root/repo/target/debug/deps/hbr_mobility-6a73116ddae6ad19: crates/mobility/src/lib.rs crates/mobility/src/field.rs crates/mobility/src/grid.rs crates/mobility/src/model.rs crates/mobility/src/position.rs crates/mobility/src/rssi.rs

crates/mobility/src/lib.rs:
crates/mobility/src/field.rs:
crates/mobility/src/grid.rs:
crates/mobility/src/model.rs:
crates/mobility/src/position.rs:
crates/mobility/src/rssi.rs:
