/root/repo/target/debug/deps/properties-a1932fd45d605f59.d: crates/baseline/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a1932fd45d605f59.rmeta: crates/baseline/tests/properties.rs Cargo.toml

crates/baseline/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
