/root/repo/target/debug/deps/exp_fig15-b771e6c85a011cc6.d: crates/bench/src/bin/exp_fig15.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig15-b771e6c85a011cc6.rmeta: crates/bench/src/bin/exp_fig15.rs Cargo.toml

crates/bench/src/bin/exp_fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
