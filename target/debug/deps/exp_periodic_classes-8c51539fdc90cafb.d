/root/repo/target/debug/deps/exp_periodic_classes-8c51539fdc90cafb.d: crates/bench/src/bin/exp_periodic_classes.rs Cargo.toml

/root/repo/target/debug/deps/libexp_periodic_classes-8c51539fdc90cafb.rmeta: crates/bench/src/bin/exp_periodic_classes.rs Cargo.toml

crates/bench/src/bin/exp_periodic_classes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
