/root/repo/target/debug/deps/d2d_heartbeat-0d1c51917ba11c08.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libd2d_heartbeat-0d1c51917ba11c08.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
